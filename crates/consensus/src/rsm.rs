//! Repeated consensus: a replicated log in the Multi-Paxos style, gated by
//! the embedded communication-efficient Ω detector.
//!
//! The point of this module is the paper's *communication-efficient
//! consensus* claim: once Ω stabilizes on a leader `ℓ` after GST, `ℓ` runs
//! the ballot (phase-1) handshake **once** for all future slots, and every
//! subsequent command commits in a single `Accept`/`Accepted` round trip plus
//! a `Decide` notification — Θ(n) messages per decision, all sent by or
//! addressed to `ℓ`. Experiment E7 measures exactly this steady state.
//!
//! Mechanics:
//!
//! * One [`Ballot`] covers every slot from `from_slot` on; acceptors promise
//!   it once and reveal everything they accepted at or above that slot.
//! * A newly `Led` leader re-proposes inherited entries, plugs the gaps left
//!   by its predecessor with [`Entry::Noop`], then drains its pending command
//!   queue into fresh slots.
//! * Chosen slots are broadcast as `Decide` and retransmitted until each peer
//!   acknowledges (fair-lossy links), and every process emits
//!   [`RsmEvent::Committed`] in strict slot order.
//!
//! # Throughput path: batching and pipelining
//!
//! The steady-state fast path scales past one-command-per-round-trip with
//! two knobs in [`BatchParams`](omega::BatchParams)
//! (`ConsensusParams::batch`):
//!
//! * **Batching** — up to `max_batch` queued commands coalesce into one
//!   [`Entry::Batch`], decided atomically in a single slot (one accept
//!   round trip, one WAL record, one `Decide` for the whole batch);
//! * **Pipelining** — up to `pipeline_depth` slots may be awaiting their
//!   quorums concurrently; commands arriving while the pipeline is full
//!   queue in `pending` and coalesce into the next batch.
//!
//! All new `Accepted` WAL records minted by one pump of the pipeline are
//! persisted as a *single group* ([`StorageHandle::append_records`]) — one
//! fsync-equivalent flush per pump, not per slot — so durability does not
//! serialize the pipeline. Neither knob touches safety: every slot is still
//! chosen by the ordinary ballot/quorum rules, a batch is just one entry
//! whose payload happens to hold several commands, and the write-ahead rule
//! (records durable before the handler returns, hence before any `Accept`
//! leaves) is preserved verbatim. Experiment E19 measures the resulting
//! decided-commands/sec and latency percentiles.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use lls_obs::{NoopProbe, Probe, ProbeEvent};
use lls_primitives::{
    Ctx, Effects, Env, Instant, ProcessId, Sm, StorageError, StorageHandle, TimerCmd, TimerId, Wire,
};
use omega::{CommEffOmega, OmegaMsg};
use serde::{Deserialize, Serialize};

use crate::ballot::Ballot;
use crate::durable::RsmRecord;
use crate::msg::{Entry, RsmMsg};
use crate::single::{ConsensusParams, OMEGA_TIMER_BASE, RETRY_TIMER};

/// Observable events of a [`ReplicatedLog`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsmEvent<V> {
    /// The embedded Ω detector changed its output.
    Leader(ProcessId),
    /// Slot `slot` committed (emitted in strict slot order at each process).
    /// `cmd` is `None` for no-op filler slots.
    Committed {
        /// The slot index.
        slot: u64,
        /// The committed command, if not a no-op.
        cmd: Option<V>,
    },
}

#[derive(Debug, Clone)]
enum LeaderState<V> {
    Follower,
    Preparing {
        b: Ballot,
        from_slot: u64,
        promised_by: Vec<bool>,
        gathered: BTreeMap<u64, (Ballot, Entry<V>)>,
    },
    Led {
        b: Ballot,
        next_slot: u64,
    },
}

#[derive(Debug, Clone)]
struct Inflight<V> {
    entry: Entry<V>,
    acks: Vec<bool>,
}

/// A replicated log: repeated consensus with a stable-leader fast path.
///
/// # Example
///
/// ```
/// use consensus::{ReplicatedLog, ConsensusParams, RsmEvent};
/// use lls_primitives::{Duration, Instant, ProcessId};
/// use netsim::{SimBuilder, Topology};
///
/// let n = 3;
/// let mut sim = SimBuilder::new(n)
///     .topology(Topology::all_timely(n, Duration::from_ticks(2)))
///     .request_at(Instant::from_ticks(500), ProcessId(0), 7u64)
///     .request_at(Instant::from_ticks(600), ProcessId(0), 8u64)
///     .build_with(|env| ReplicatedLog::new(env, ConsensusParams::default()));
/// sim.run_until(Instant::from_ticks(5_000));
/// let committed: Vec<u64> = sim.node(ProcessId(1)).committed_commands().cloned().collect();
/// assert_eq!(committed, vec![7, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedLog<V, P: Probe = NoopProbe> {
    env: Env,
    params: ConsensusParams,
    omega: CommEffOmega<P>,
    // Acceptor state.
    promised: Ballot,
    accepted: BTreeMap<u64, (Ballot, Entry<V>)>,
    // Learner state.
    chosen: BTreeMap<u64, Entry<V>>,
    emitted_upto: u64,
    // Leader state.
    state: LeaderState<V>,
    highest_seen: Ballot,
    pending: VecDeque<V>,
    inflight: BTreeMap<u64, Inflight<V>>,
    decide_trackers: BTreeMap<u64, Vec<bool>>,
    // Durability (see `crate::durable` for the safety arguments).
    storage: Option<StorageHandle>,
    wedged: bool,
    // External-leadership mode: the embedded Ω is inert and leadership is
    // injected via `set_leader` (one shared Ω per node drives many groups).
    external: bool,
    believed: Option<ProcessId>,
    /// Observability sink; `NoopProbe` by default (zero cost).
    probe: P,
}

impl<V> ReplicatedLog<V>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
{
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new(env: &Env, params: ConsensusParams) -> Self {
        ReplicatedLog::new_with_probe(env, params, NoopProbe)
    }

    /// Creates a replica backed by a durable log, recovering the promised
    /// ballot, accepted entries, chosen prefix and Ω counter a previous
    /// incarnation persisted.
    ///
    /// Recovery runs synchronously before any stimulus (the "recovering
    /// rejoin mode"). Recovered chosen slots are restored *without*
    /// re-emitting their `Committed` outputs — the pre-crash incarnation
    /// already emitted them; applications rebuilding state after a restart
    /// read [`Self::chosen_log`] / [`Self::committed_commands`] instead. The
    /// recovered Ω counter is bumped once so the restarted replica rejoins
    /// as a follower. See [`crate::durable`] for the per-field safety
    /// arguments.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
    ) -> Result<Self, StorageError> {
        ReplicatedLog::with_storage_and_probe(env, params, storage, NoopProbe)
    }
}

impl<V, P> ReplicatedLog<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
    P: Probe,
{
    /// Like [`ReplicatedLog::new`], with an observability probe (shared
    /// with the embedded Ω detector, so one sink sees both layers).
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        ReplicatedLog {
            env: *env,
            params,
            omega: CommEffOmega::new_with_probe(env, params.omega, probe.clone()),
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            chosen: BTreeMap::new(),
            emitted_upto: 0,
            state: LeaderState::Follower,
            highest_seen: Ballot::ZERO,
            pending: VecDeque::new(),
            inflight: BTreeMap::new(),
            decide_trackers: BTreeMap::new(),
            storage: None,
            wedged: false,
            external: false,
            believed: None,
            probe,
        }
    }

    /// Like [`ReplicatedLog::new`], but in *external-leadership* mode: the
    /// embedded Ω detector stays inert (no heartbeats, no timers, Ω
    /// messages dropped) and leadership is injected with
    /// [`ReplicatedLog::set_leader`] instead. This is how a node hosting
    /// many co-located shard groups shares **one** Ω across all of them —
    /// steady-state election traffic stays independent of the group count.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_externally_led(env: &Env, params: ConsensusParams) -> Self
    where
        P: Default,
    {
        let mut sm = ReplicatedLog::new_with_probe(env, params, P::default());
        sm.external = true;
        sm
    }

    /// Like [`ReplicatedLog::new_externally_led`], with an observability
    /// probe.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn new_externally_led_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        let mut sm = ReplicatedLog::new_with_probe(env, params, probe);
        sm.external = true;
        sm
    }

    /// Like [`ReplicatedLog::with_storage_and_probe`], but in
    /// external-leadership mode (see
    /// [`ReplicatedLog::new_externally_led`]): the group recovers its own
    /// WAL segment exactly as usual, then waits for leadership from the
    /// shared detector.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_externally_led(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::with_storage_and_probe(env, params, storage, probe)?;
        sm.external = true;
        Ok(sm)
    }

    /// Like [`ReplicatedLog::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid.
    pub fn with_storage_and_probe(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = ReplicatedLog::new_with_probe(env, params, probe);
        let records: Vec<RsmRecord<V>> = storage.load_records()?;
        sm.probe.emit(ProbeEvent::WalRecover {
            node: env.id(),
            records: records.len() as u64,
        });
        let recovering = !records.is_empty();
        let mut omega_counter = 0u64;
        for rec in records {
            match rec {
                RsmRecord::OmegaCounter(c) => omega_counter = omega_counter.max(c),
                RsmRecord::Promised(b) => sm.promised = sm.promised.max(b),
                RsmRecord::Accepted { slot, b, entry } => {
                    sm.promised = sm.promised.max(b);
                    match sm.accepted.get(&slot) {
                        Some((prev, _)) if *prev > b => {}
                        _ => {
                            sm.accepted.insert(slot, (b, entry));
                        }
                    }
                }
                RsmRecord::Chosen { slot, entry } => {
                    sm.chosen.entry(slot).or_insert(entry);
                }
            }
        }
        sm.highest_seen = sm.promised;
        // Quietly advance past the contiguous recovered prefix: those
        // Committed events were already emitted by the previous incarnation.
        while sm.chosen.contains_key(&sm.emitted_upto) {
            sm.emitted_upto += 1;
        }
        let boot_counter = if recovering {
            omega_counter.saturating_add(1)
        } else {
            0
        };
        storage.append_record(&RsmRecord::<V>::OmegaCounter(boot_counter))?;
        sm.omega.restore_own_counter(boot_counter);
        sm.storage = Some(storage);
        Ok(sm)
    }

    /// Appends `rec` to the durable log, if one is attached; wedges the
    /// machine on failure (a replica that cannot persist must fall silent).
    fn persist(&mut self, rec: &RsmRecord<V>) -> bool {
        if self.wedged {
            return false;
        }
        match &self.storage {
            None => true,
            Some(store) => {
                if store.append_record(rec).is_ok() {
                    self.probe.emit(ProbeEvent::WalAppend {
                        node: self.env.id(),
                    });
                    true
                } else {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.env.id(),
                    });
                    self.wedged = true;
                    false
                }
            }
        }
    }

    /// Appends `recs` to the durable log as one group commit — a single
    /// fsync-equivalent flush on file-backed WALs, however many slots the
    /// pipeline pump minted — if storage is attached; wedges the machine on
    /// failure. An empty group is a no-op.
    fn persist_group(&mut self, recs: &[RsmRecord<V>]) -> bool {
        if self.wedged {
            return false;
        }
        if recs.is_empty() {
            return true;
        }
        match &self.storage {
            None => true,
            Some(store) => {
                if store.append_records(recs).is_ok() {
                    // One probe event per record keeps the wal_append counter
                    // meaning "records persisted", not "flushes issued".
                    for _ in recs {
                        self.probe.emit(ProbeEvent::WalAppend {
                            node: self.env.id(),
                        });
                    }
                    true
                } else {
                    self.probe.emit(ProbeEvent::WalWedge {
                        node: self.env.id(),
                    });
                    self.wedged = true;
                    false
                }
            }
        }
    }

    /// The embedded Ω detector (for instrumentation).
    pub fn omega(&self) -> &CommEffOmega<P> {
        &self.omega
    }

    /// `true` if this log runs in external-leadership mode (embedded Ω
    /// inert, leadership injected via [`ReplicatedLog::set_leader`]).
    pub fn is_externally_led(&self) -> bool {
        self.external
    }

    /// Injects the current leader from an external detector (the shared
    /// per-node Ω of a sharded deployment). Emits [`RsmEvent::Leader`] and
    /// runs the same prepare/abdicate transition the embedded Ω output
    /// would: becoming leader starts phase 1 once, losing leadership drops
    /// in-flight proposals. Repeated injections of the same leader are
    /// no-ops. Ignored unless the log is in external-leadership mode.
    pub fn set_leader(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, leader: ProcessId) {
        if !self.external || self.wedged || self.believed == Some(leader) {
            return;
        }
        self.believed = Some(leader);
        ctx.output(RsmEvent::Leader(leader));
        if leader == self.me() {
            if matches!(self.state, LeaderState::Follower) {
                self.start_prepare(ctx);
            }
        } else {
            self.abdicate(ctx.now());
        }
    }

    /// Whether this replica currently believes it should lead: the external
    /// detector's word in external mode, the embedded Ω's otherwise.
    fn believes_leadership(&self) -> bool {
        if self.external {
            self.believed == Some(self.me())
        } else {
            self.omega.is_leader()
        }
    }

    /// Returns `true` if this replica currently leads with an established
    /// ballot (steady-state fast path active).
    pub fn is_established_leader(&self) -> bool {
        matches!(self.state, LeaderState::Led { .. })
    }

    /// Number of contiguously committed slots.
    pub fn committed_len(&self) -> u64 {
        self.emitted_upto
    }

    /// The chosen entry of `slot`, if this replica learned it.
    pub fn chosen(&self, slot: u64) -> Option<&Entry<V>> {
        self.chosen.get(&slot)
    }

    /// All contiguously committed client commands in slot order (no-ops
    /// skipped; batched slots contribute each of their commands in batch
    /// order).
    pub fn committed_commands(&self) -> impl Iterator<Item = &V> {
        self.chosen
            .range(0..self.emitted_upto)
            .flat_map(|(_, e)| e.commands().iter())
    }

    /// Commands queued locally but not yet committed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of slots proposed but not yet chosen (the occupied pipeline
    /// window; only ever non-zero at an established leader).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// The full chosen map (slot → single command), for the log-consistency
    /// checker. Like no-ops, batched slots map to `None` — a batch is not
    /// *one* command; use [`Self::chosen_entries`] for the lossless view.
    pub fn chosen_log(&self) -> BTreeMap<u64, Option<V>> {
        self.chosen
            .iter()
            .map(|(s, e)| (*s, e.command().cloned()))
            .collect()
    }

    /// The full chosen map (slot → entry), lossless: batched slots keep
    /// their whole command vectors. The consistency check for batched runs
    /// compares these maps across replicas.
    pub fn chosen_entries(&self) -> BTreeMap<u64, Entry<V>> {
        self.chosen.clone()
    }

    fn me(&self) -> ProcessId {
        self.env.id()
    }

    fn majority(&self) -> usize {
        self.env.membership().majority()
    }

    fn drive_omega(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        step: impl FnOnce(&mut CommEffOmega<P>, &mut Ctx<'_, OmegaMsg, ProcessId>),
    ) {
        let mut fx: Effects<OmegaMsg, ProcessId> = Effects::new();
        let counter_before = self.omega.own_counter();
        {
            let mut octx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(&mut self.omega, &mut octx);
        }
        // Write-ahead: the bumped counter must be durable before any message
        // revealing it can leave (effects are drained after we return).
        let counter_after = self.omega.own_counter();
        if counter_after != counter_before && !self.persist(&RsmRecord::OmegaCounter(counter_after))
        {
            return;
        }
        for s in fx.sends {
            ctx.send(s.to, RsmMsg::Omega(s.msg));
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    ctx.set_timer(timer.offset(OMEGA_TIMER_BASE), after);
                }
                TimerCmd::Cancel { timer } => {
                    ctx.cancel_timer(timer.offset(OMEGA_TIMER_BASE));
                }
            }
        }
        for leader in fx.outputs {
            ctx.output(RsmEvent::Leader(leader));
            if leader == self.me() {
                if matches!(self.state, LeaderState::Follower) {
                    self.start_prepare(ctx);
                }
            } else {
                self.abdicate(ctx.now());
            }
        }
    }

    fn abdicate(&mut self, now: Instant) {
        if let LeaderState::Preparing { b, .. } | LeaderState::Led { b, .. } = &self.state {
            self.probe.emit(ProbeEvent::PhaseEnter {
                node: self.me(),
                at: now,
                label: "follower",
                number: b.round(),
            });
        }
        self.state = LeaderState::Follower;
        self.inflight.clear();
    }

    fn start_prepare(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let b = self.highest_seen.max(self.promised).next_for(self.me());
        if !self.persist(&RsmRecord::Promised(b)) {
            return;
        }
        self.highest_seen = b;
        let from_slot = self.emitted_upto;
        // Self-promise, revealing our own accepted suffix.
        self.promised = b;
        let mut promised_by = vec![false; self.env.n()];
        promised_by[self.me().as_usize()] = true;
        let gathered: BTreeMap<u64, (Ballot, Entry<V>)> = self
            .accepted
            .range(from_slot..)
            .map(|(s, (ab, e))| (*s, (*ab, e.clone())))
            .collect();
        self.state = LeaderState::Preparing {
            b,
            from_slot,
            promised_by,
            gathered,
        };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.me(),
            at: ctx.now(),
            label: "prepare",
            number: b.round(),
        });
        ctx.broadcast(RsmMsg::Prepare { b, from_slot });
        self.try_assume_leadership(ctx);
    }

    /// Preparing → Led once a majority promised: re-propose inherited
    /// entries, plug gaps with no-ops, then drain the pending queue.
    fn try_assume_leadership(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let LeaderState::Preparing {
            b,
            from_slot,
            promised_by,
            gathered,
        } = &self.state
        else {
            return;
        };
        if promised_by.iter().filter(|p| **p).count() < self.majority() {
            return;
        }
        let (b, from_slot) = (*b, *from_slot);
        let gathered = gathered.clone();
        let horizon = gathered
            .keys()
            .next_back()
            .map(|s| s + 1)
            .unwrap_or(from_slot)
            .max(self.chosen.keys().next_back().map(|s| s + 1).unwrap_or(0));
        self.state = LeaderState::Led {
            b,
            next_slot: horizon,
        };
        self.probe.emit(ProbeEvent::PhaseEnter {
            node: self.me(),
            at: ctx.now(),
            label: "led",
            number: b.round(),
        });
        let mut announce: Vec<(u64, Entry<V>)> = Vec::new();
        let mut proposals: Vec<(u64, Entry<V>)> = Vec::new();
        for slot in from_slot..horizon {
            if let Some(entry) = self.chosen.get(&slot).cloned() {
                announce.push((slot, entry));
            } else if let Some((_, entry)) = gathered.get(&slot).cloned() {
                proposals.push((slot, entry));
            } else {
                proposals.push((slot, Entry::Noop));
            }
        }
        // Group commit: one flush covers every inherited/no-op re-proposal.
        let records: Vec<RsmRecord<V>> = proposals
            .iter()
            .map(|(slot, entry)| RsmRecord::Accepted {
                slot: *slot,
                b,
                entry: entry.clone(),
            })
            .collect();
        if !self.persist_group(&records) {
            return;
        }
        for (slot, entry) in announce {
            // Already chosen here: (re)announce so laggards catch up.
            self.track_decide(slot);
            self.broadcast_decide(ctx, slot, entry);
        }
        for (slot, entry) in proposals {
            self.accept_persisted(ctx, slot, entry);
        }
        self.pump(ctx);
    }

    /// Fills free pipeline slots from the pending queue: coalesces up to
    /// `max_batch` queued commands per slot (a singleton stays [`Entry::Cmd`],
    /// the pre-batching wire shape), persists every new `Accepted` record as
    /// a single WAL group, then self-accepts and broadcasts each slot. A
    /// no-op unless this replica is an established leader with both free
    /// pipeline capacity and queued commands.
    fn pump(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        let LeaderState::Led { b, next_slot } = self.state else {
            return;
        };
        let max_batch = self.params.batch.max_batch.max(1);
        let depth = self.params.batch.pipeline_depth.max(1);
        let mut planned: Vec<(u64, Entry<V>)> = Vec::new();
        let mut slot = next_slot;
        while !self.pending.is_empty() && self.inflight.len() + planned.len() < depth {
            let take = self.pending.len().min(max_batch);
            let mut cmds: Vec<V> = self.pending.drain(..take).collect();
            let entry = if cmds.len() == 1 {
                Entry::Cmd(cmds.pop().expect("len checked"))
            } else {
                Entry::Batch(cmds)
            };
            planned.push((slot, entry));
            slot += 1;
        }
        if planned.is_empty() {
            return;
        }
        // Write-ahead, once: all records of this pump become durable with a
        // single flush before any Accept can leave.
        let records: Vec<RsmRecord<V>> = planned
            .iter()
            .map(|(s, e)| RsmRecord::Accepted {
                slot: *s,
                b,
                entry: e.clone(),
            })
            .collect();
        if !self.persist_group(&records) {
            return;
        }
        if let LeaderState::Led { next_slot, .. } = &mut self.state {
            *next_slot = slot;
        }
        for (s, entry) in planned {
            self.accept_persisted(ctx, s, entry);
        }
    }

    /// Self-accepts `entry` at `slot`, broadcasts the `Accept`, and checks
    /// for an (n = 1 or retransmission-fed) instant quorum. The matching
    /// `Accepted` WAL record must already be durable — callers persist
    /// (individually or as a group) *before* this runs, preserving the
    /// write-ahead rule.
    fn accept_persisted(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        slot: u64,
        entry: Entry<V>,
    ) {
        let LeaderState::Led { b, .. } = self.state else {
            return;
        };
        self.accepted.insert(slot, (b, entry.clone()));
        let mut acks = vec![false; self.env.n()];
        acks[self.me().as_usize()] = true;
        self.inflight.insert(
            slot,
            Inflight {
                entry: entry.clone(),
                acks,
            },
        );
        ctx.broadcast(RsmMsg::Accept { b, slot, entry });
        self.try_choose(ctx, slot);
    }

    fn try_choose(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, slot: u64) {
        let Some(inf) = self.inflight.get(&slot) else {
            return;
        };
        if inf.acks.iter().filter(|a| **a).count() < self.majority() {
            return;
        }
        let entry = inf.entry.clone();
        self.inflight.remove(&slot);
        self.learn(ctx, slot, entry.clone());
        if self.wedged {
            return;
        }
        self.track_decide(slot);
        self.broadcast_decide(ctx, slot, entry);
    }

    fn track_decide(&mut self, slot: u64) {
        let mut acks = vec![false; self.env.n()];
        acks[self.me().as_usize()] = true;
        self.decide_trackers.insert(slot, acks);
    }

    fn broadcast_decide(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        slot: u64,
        entry: Entry<V>,
    ) {
        ctx.broadcast(RsmMsg::Decide { slot, entry });
    }

    fn learn(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>, slot: u64, entry: Entry<V>) {
        if !self.chosen.contains_key(&slot) {
            // Write-ahead: the choice must be durable before the Committed
            // output (and any Decide broadcast) can be observed.
            if !self.persist(&RsmRecord::Chosen {
                slot,
                entry: entry.clone(),
            }) {
                return;
            }
            self.chosen.insert(slot, entry);
            self.probe.emit(ProbeEvent::Decide {
                node: self.me(),
                at: ctx.now(),
                slot,
            });
        }
        while let Some(e) = self.chosen.get(&self.emitted_upto) {
            let slot = self.emitted_upto;
            // One Committed event *per command*: a batched slot unfolds into
            // its commands in batch order (same slot index repeated), so
            // downstream appliers never need to know batching exists.
            match e.clone() {
                Entry::Noop => ctx.output(RsmEvent::Committed { slot, cmd: None }),
                Entry::Cmd(v) => ctx.output(RsmEvent::Committed { slot, cmd: Some(v) }),
                Entry::Batch(vs) => {
                    self.probe.emit(ProbeEvent::BatchCommit {
                        node: self.me(),
                        at: ctx.now(),
                        slot,
                        cmds: vs.len() as u64,
                    });
                    for v in vs {
                        ctx.output(RsmEvent::Committed { slot, cmd: Some(v) });
                    }
                }
            }
            self.emitted_upto += 1;
        }
    }

    fn on_retry(&mut self, ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>) {
        // Retransmit decided slots to peers that have not acknowledged.
        let mut done = Vec::new();
        let trackers: Vec<(u64, Vec<bool>)> = self
            .decide_trackers
            .iter()
            .map(|(s, a)| (*s, a.clone()))
            .collect();
        for (slot, acks) in trackers {
            if acks.iter().all(|a| *a) {
                done.push(slot);
                continue;
            }
            let Some(entry) = self.chosen.get(&slot).cloned() else {
                continue;
            };
            for q in self.env.membership().others(self.me()) {
                if !acks[q.as_usize()] {
                    ctx.send(
                        q,
                        RsmMsg::Decide {
                            slot,
                            entry: entry.clone(),
                        },
                    );
                }
            }
        }
        for slot in done {
            self.decide_trackers.remove(&slot);
        }
        if !self.believes_leadership() {
            if !matches!(self.state, LeaderState::Follower) {
                self.abdicate(ctx.now());
            }
            return;
        }
        match &self.state {
            LeaderState::Follower => self.start_prepare(ctx),
            LeaderState::Preparing {
                b,
                from_slot,
                promised_by,
                ..
            } => {
                let (b, from_slot) = (*b, *from_slot);
                let missing: Vec<ProcessId> = self
                    .env
                    .membership()
                    .others(self.me())
                    .filter(|q| !promised_by[q.as_usize()])
                    .collect();
                for q in missing {
                    ctx.send(q, RsmMsg::Prepare { b, from_slot });
                }
            }
            LeaderState::Led { b, .. } => {
                let b = *b;
                let inflight: Vec<(u64, Entry<V>, Vec<bool>)> = self
                    .inflight
                    .iter()
                    .map(|(s, i)| (*s, i.entry.clone(), i.acks.clone()))
                    .collect();
                for (slot, entry, acks) in inflight {
                    for q in self.env.membership().others(self.me()) {
                        if !acks[q.as_usize()] {
                            ctx.send(
                                q,
                                RsmMsg::Accept {
                                    b,
                                    slot,
                                    entry: entry.clone(),
                                },
                            );
                        }
                    }
                }
                // Belt and braces: if capacity freed without an Accepted
                // arriving (e.g. acks were satisfied by retransmissions),
                // keep the pipeline full.
                self.pump(ctx);
            }
        }
    }

    fn on_rsm_msg(
        &mut self,
        ctx: &mut Ctx<'_, RsmMsg<V>, RsmEvent<V>>,
        from: ProcessId,
        msg: RsmMsg<V>,
    ) {
        match msg {
            RsmMsg::Omega(_) => unreachable!("routed by caller"),
            RsmMsg::Prepare { b, from_slot } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    // Write-ahead: the promise must be durable before the
                    // Promise reply can leave.
                    if !self.persist(&RsmRecord::Promised(b)) {
                        return;
                    }
                    self.promised = b;
                    let accepted: Vec<(u64, Ballot, Entry<V>)> = self
                        .accepted
                        .range(from_slot..)
                        .map(|(s, (ab, e))| (*s, *ab, e.clone()))
                        .collect();
                    ctx.send(
                        from,
                        RsmMsg::Promise {
                            b,
                            accepted,
                            low_slot: self.emitted_upto,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            RsmMsg::Promise {
                b,
                accepted,
                low_slot,
            } => {
                // Help a lagging promiser catch up on already-chosen slots.
                // (The promiser may also be *ahead* of us: empty range.)
                let catchup: Vec<(u64, Entry<V>)> = self
                    .chosen
                    .range(low_slot..self.emitted_upto.max(low_slot))
                    .map(|(s, e)| (*s, e.clone()))
                    .collect();
                for (slot, entry) in catchup {
                    ctx.send(from, RsmMsg::Decide { slot, entry });
                }
                if let LeaderState::Preparing {
                    b: cur,
                    promised_by,
                    gathered,
                    ..
                } = &mut self.state
                {
                    if *cur == b {
                        promised_by[from.as_usize()] = true;
                        for (slot, ab, entry) in accepted {
                            match gathered.get(&slot) {
                                Some((prev, _)) if *prev >= ab => {}
                                _ => {
                                    gathered.insert(slot, (ab, entry));
                                }
                            }
                        }
                        self.try_assume_leadership(ctx);
                    }
                }
            }
            RsmMsg::Accept { b, slot, entry } => {
                self.highest_seen = self.highest_seen.max(b);
                if b >= self.promised {
                    // Write-ahead: the vote must be durable before the
                    // Accepted reply can leave.
                    if !self.persist(&RsmRecord::Accepted {
                        slot,
                        b,
                        entry: entry.clone(),
                    }) {
                        return;
                    }
                    self.promised = b;
                    self.accepted.insert(slot, (b, entry));
                    ctx.send(from, RsmMsg::Accepted { b, slot });
                } else {
                    ctx.send(
                        from,
                        RsmMsg::Nack {
                            b,
                            higher: self.promised,
                        },
                    );
                }
            }
            RsmMsg::Accepted { b, slot } => {
                if let LeaderState::Led { b: cur, .. } = self.state {
                    if cur == b {
                        if let Some(inf) = self.inflight.get_mut(&slot) {
                            inf.acks[from.as_usize()] = true;
                            self.try_choose(ctx, slot);
                            // A chosen slot frees pipeline capacity: refill
                            // it from the pending queue.
                            self.pump(ctx);
                        }
                    }
                }
            }
            RsmMsg::Nack { b, higher } => {
                self.highest_seen = self.highest_seen.max(higher);
                let ours = match &self.state {
                    LeaderState::Preparing { b: cur, .. } | LeaderState::Led { b: cur, .. } => {
                        *cur == b
                    }
                    LeaderState::Follower => false,
                };
                if ours {
                    self.abdicate(ctx.now());
                }
            }
            RsmMsg::Decide { slot, entry } => {
                self.learn(ctx, slot, entry);
                ctx.send(from, RsmMsg::DecideAck { slot });
            }
            RsmMsg::DecideAck { slot } => {
                if let Some(acks) = self.decide_trackers.get_mut(&slot) {
                    acks[from.as_usize()] = true;
                    if acks.iter().all(|a| *a) {
                        self.decide_trackers.remove(&slot);
                    }
                }
            }
        }
    }
}

impl<V, P> Sm for ReplicatedLog<V, P>
where
    V: Clone + Eq + fmt::Debug + Send + Wire + 'static,
    P: Probe,
{
    type Msg = RsmMsg<V>;
    type Output = RsmEvent<V>;
    type Request = V;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        if self.wedged {
            return;
        }
        ctx.set_timer(RETRY_TIMER, self.params.retry);
        // In external-leadership mode the embedded Ω never runs: the shared
        // per-node detector injects leadership via `set_leader`.
        if !self.external {
            self.drive_omega(ctx, |omega, octx| omega.on_start(octx));
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        if self.wedged {
            return;
        }
        match msg {
            RsmMsg::Omega(m) => {
                // Ω traffic is not ours in external mode — the shared
                // per-node detector owns it.
                if !self.external {
                    self.drive_omega(ctx, |omega, octx| omega.on_message(octx, from, m));
                }
            }
            other => self.on_rsm_msg(ctx, from, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        if self.wedged {
            return;
        }
        if timer.0 >= OMEGA_TIMER_BASE {
            if self.external {
                return;
            }
            let inner = TimerId(timer.0 - OMEGA_TIMER_BASE);
            self.drive_omega(ctx, |omega, octx| omega.on_timer(octx, inner));
        } else if timer == RETRY_TIMER {
            self.on_retry(ctx);
            ctx.set_timer(RETRY_TIMER, self.params.retry);
        } else {
            debug_assert!(false, "unexpected timer {timer}");
        }
    }

    /// Queues a client command; an established leader with free pipeline
    /// capacity proposes immediately (coalescing any queued commands into a
    /// batch of up to `batch.max_batch`), otherwise the command waits — for
    /// leadership, or for a pipeline slot to free up (clients of a real
    /// deployment would resubmit to the actual leader).
    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: V) {
        if self.wedged {
            return;
        }
        self.pending.push_back(req);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::Instant;

    type Log = ReplicatedLog<u64>;

    struct Harness {
        env: Env,
        sm: Log,
        fx: Effects<RsmMsg<u64>, RsmEvent<u64>>,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            Harness::with_params(me, n, ConsensusParams::default())
        }

        fn with_params(me: u32, n: usize, params: ConsensusParams) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = ReplicatedLog::new(&env, params);
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: RsmMsg<u64>) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn request(&mut self, v: u64) -> Effects<RsmMsg<u64>, RsmEvent<u64>> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_request(&mut ctx, v);
            self.fx.take()
        }
    }

    fn b(round: u64, leader: u32) -> Ballot {
        Ballot::new(round, ProcessId(leader))
    }

    /// Drives p0 (initial Ω leader) to the Led state in a 3-replica group.
    fn led_leader() -> Harness {
        led_leader_with(ConsensusParams::default())
    }

    /// Like [`led_leader`], with explicit parameters (batching knobs).
    fn led_leader_with(params: ConsensusParams) -> Harness {
        let mut h = Harness::with_params(0, 3, params);
        h.start();
        h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(h.sm.is_established_leader());
        h
    }

    /// Parameters with batching and a shallow pipeline, for throughput-path
    /// tests.
    fn batched_params(max_batch: usize, pipeline_depth: usize) -> ConsensusParams {
        ConsensusParams {
            batch: omega::BatchParams {
                max_batch,
                pipeline_depth,
            },
            ..ConsensusParams::default()
        }
    }

    #[test]
    fn externally_led_log_is_silent_until_leadership_is_injected() {
        let env = Env::new(ProcessId(0), 3);
        let mut sm: Log = ReplicatedLog::new_externally_led(&env, ConsensusParams::default());
        assert!(sm.is_externally_led());
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        let out = fx.take();
        assert!(
            out.sends.is_empty(),
            "no Ω heartbeats, no prepares: {:?}",
            out.sends
        );
        // Only the retry timer is armed — no Ω timers.
        assert!(out
            .timers
            .iter()
            .all(|t| matches!(t, TimerCmd::Set { timer, .. } if *timer == RETRY_TIMER)));

        // Injecting our own id starts phase 1 exactly like an Ω output.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(0));
        let out = fx.take();
        assert!(out.outputs.contains(&RsmEvent::Leader(ProcessId(0))));
        assert_eq!(
            out.sends
                .iter()
                .filter(|s| matches!(s.msg, RsmMsg::Prepare { .. }))
                .count(),
            2
        );
        // Re-injecting the same leader is a no-op.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(0));
        assert!(fx.take().outputs.is_empty());

        // Losing leadership abdicates.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.set_leader(&mut ctx, ProcessId(2));
        let out = fx.take();
        assert!(out.outputs.contains(&RsmEvent::Leader(ProcessId(2))));
        assert!(!sm.is_established_leader());
    }

    #[test]
    fn externally_led_log_drops_omega_messages_and_timers() {
        let env = Env::new(ProcessId(1), 3);
        let mut sm: Log = ReplicatedLog::new_externally_led(&env, ConsensusParams::default());
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        let counter_before = sm.omega().own_counter();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Omega(omega::OmegaMsg::Alive { counter: 9 }),
        );
        let out = fx.take();
        assert!(out.sends.is_empty() && out.outputs.is_empty());
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm.on_timer(&mut ctx, TimerId(OMEGA_TIMER_BASE));
        let out = fx.take();
        assert!(out.sends.is_empty() && out.outputs.is_empty());
        assert_eq!(sm.omega().own_counter(), counter_before);
    }

    #[test]
    fn leader_establishes_ballot_with_one_prepare() {
        let mut h = Harness::new(0, 3);
        let fx = h.start();
        let prepares = fx
            .sends
            .iter()
            .filter(|s| matches!(s.msg, RsmMsg::Prepare { from_slot: 0, .. }))
            .count();
        assert_eq!(prepares, 2);
        let _ = led_leader();
    }

    #[test]
    fn steady_state_commits_in_one_round_trip() {
        let mut h = led_leader();
        let fx = h.request(7);
        // Phase 1 is NOT re-run: only Accepts go out.
        assert!(fx
            .sends
            .iter()
            .all(|s| matches!(s.msg, RsmMsg::Accept { slot: 0, .. })));
        assert_eq!(fx.sends.len(), 2);
        // One Accepted (plus self) = majority: commit + decide broadcast.
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert!(fx.outputs.contains(&RsmEvent::Committed {
            slot: 0,
            cmd: Some(7)
        }));
        assert_eq!(
            fx.sends
                .iter()
                .filter(|s| matches!(s.msg, RsmMsg::Decide { slot: 0, .. }))
                .count(),
            2
        );
        assert_eq!(h.sm.committed_len(), 1);
    }

    #[test]
    fn commits_are_emitted_in_slot_order_despite_reordering() {
        let mut h = Harness::new(2, 3);
        h.start();
        // Decide for slot 1 arrives before slot 0 (links are not FIFO).
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 1,
                entry: Entry::Cmd(11),
            },
        );
        assert!(fx
            .outputs
            .iter()
            .all(|o| !matches!(o, RsmEvent::Committed { .. })));
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 0,
                entry: Entry::Cmd(10),
            },
        );
        let committed: Vec<_> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![(0, Some(10)), (1, Some(11))]);
    }

    #[test]
    fn new_leader_inherits_accepted_entries_and_fills_gaps() {
        let mut h = Harness::new(0, 5);
        h.start();
        // Two promises arrive; one reveals an accepted entry at slot 1 only
        // (slot 0 is a gap the new leader must fill with a no-op).
        h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![(1, b(0, 4), Entry::Cmd(99))],
                low_slot: 0,
            },
        );
        let fx = h.deliver(
            2,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(h.sm.is_established_leader());
        let accepts: Vec<(u64, Entry<u64>)> = fx
            .sends
            .iter()
            .filter_map(|s| match &s.msg {
                RsmMsg::Accept { slot, entry, .. } => Some((*slot, entry.clone())),
                _ => None,
            })
            .collect();
        assert!(
            accepts.contains(&(0, Entry::Noop)),
            "gap must be filled: {accepts:?}"
        );
        assert!(
            accepts.contains(&(1, Entry::Cmd(99))),
            "inherited entry must be re-proposed"
        );
    }

    #[test]
    fn acceptor_reveals_suffix_on_prepare() {
        let mut h = Harness::new(1, 3);
        h.start();
        h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 0,
                entry: Entry::Cmd(5),
            },
        );
        h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 3,
                entry: Entry::Cmd(8),
            },
        );
        let fx = h.deliver(
            2,
            RsmMsg::Prepare {
                b: b(2, 2),
                from_slot: 2,
            },
        );
        let promise = fx
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                RsmMsg::Promise { accepted, .. } => Some(accepted.clone()),
                _ => None,
            })
            .expect("must promise the higher ballot");
        // Only slots ≥ from_slot are revealed.
        assert_eq!(promise, vec![(3, b(1, 0), Entry::Cmd(8))]);
    }

    #[test]
    fn follower_queues_requests_until_leadership() {
        let mut h = Harness::new(1, 3);
        h.start();
        let fx = h.request(42);
        assert!(fx.sends.is_empty());
        assert_eq!(h.sm.pending_len(), 1);
    }

    #[test]
    fn stale_ballot_accept_is_nacked() {
        let mut h = Harness::new(1, 3);
        h.start();
        h.deliver(
            2,
            RsmMsg::Prepare {
                b: b(5, 2),
                from_slot: 0,
            },
        );
        let fx = h.deliver(
            0,
            RsmMsg::Accept {
                b: b(1, 0),
                slot: 0,
                entry: Entry::Cmd(1),
            },
        );
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Nack { higher, .. } if higher == b(5, 2))));
    }

    #[test]
    fn nack_abdicates_leadership() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            2,
            RsmMsg::Nack {
                b: b(1, 0),
                higher: b(4, 2),
            },
        );
        assert!(!h.sm.is_established_leader());
        assert_eq!(
            h.sm.inflight.len(),
            0,
            "inflight must be dropped on abdication"
        );
    }

    #[test]
    fn promise_triggers_catchup_decides_for_lagging_peer() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert_eq!(h.sm.committed_len(), 1);
        // A new prepare from us after re-election would carry catch-up; here
        // simulate a late promise from p2 with low_slot 0.
        let fx = h.deliver(
            2,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 0,
            },
        );
        assert!(fx
            .sends
            .iter()
            .any(|s| s.to == ProcessId(2) && matches!(s.msg, RsmMsg::Decide { slot: 0, .. })));
    }

    #[test]
    fn promise_from_a_peer_ahead_of_us_is_harmless() {
        // Regression: the catch-up range must not invert when the promiser
        // has committed further than the (new) leader.
        let mut h = Harness::new(0, 3);
        h.start();
        let fx = h.deliver(
            1,
            RsmMsg::Promise {
                b: b(1, 0),
                accepted: vec![],
                low_slot: 10, // p1 is way ahead
            },
        );
        assert!(h.sm.is_established_leader());
        assert!(!fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Decide { .. })));
    }

    #[test]
    fn decide_ack_completes_tracker() {
        let mut h = led_leader();
        h.request(7);
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert!(h.sm.decide_trackers.contains_key(&0));
        h.deliver(1, RsmMsg::DecideAck { slot: 0 });
        h.deliver(2, RsmMsg::DecideAck { slot: 0 });
        assert!(!h.sm.decide_trackers.contains_key(&0));
    }

    #[test]
    fn pipeline_depth_caps_inflight_slots() {
        let mut h = led_leader_with(batched_params(1, 2));
        for v in 0..5 {
            h.request(v);
        }
        assert_eq!(h.sm.inflight_len(), 2, "pipeline must cap at depth");
        assert_eq!(h.sm.pending_len(), 3, "overflow queues locally");
        // Choosing slot 0 frees capacity; the pump refills to depth.
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        assert_eq!(h.sm.inflight_len(), 2);
        assert_eq!(h.sm.pending_len(), 2);
        assert!(fx
            .sends
            .iter()
            .any(|s| matches!(s.msg, RsmMsg::Accept { slot: 2, .. })));
    }

    #[test]
    fn queued_commands_coalesce_into_one_batch_slot() {
        // Depth 1: the first command occupies the pipeline, the next three
        // queue up and must ride out together in a single batched slot.
        let mut h = led_leader_with(batched_params(8, 1));
        h.request(10);
        for v in [11, 12, 13] {
            let fx = h.request(v);
            assert!(fx.sends.is_empty(), "pipeline full: nothing may leave");
        }
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        let batched: Vec<Entry<u64>> = fx
            .sends
            .iter()
            .filter_map(|s| match &s.msg {
                RsmMsg::Accept { slot: 1, entry, .. } => Some(entry.clone()),
                _ => None,
            })
            .collect();
        assert!(
            batched.iter().all(|e| *e == Entry::Batch(vec![11, 12, 13])),
            "queued commands must coalesce: {batched:?}"
        );
        assert_eq!(batched.len(), 2, "one Accept per peer");
        assert_eq!(h.sm.pending_len(), 0);
    }

    #[test]
    fn batched_slot_commits_one_event_per_command_in_order() {
        let mut h = led_leader_with(batched_params(8, 1));
        h.request(10);
        for v in [11, 12, 13] {
            h.request(v);
        }
        h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 0,
            },
        );
        let fx = h.deliver(
            1,
            RsmMsg::Accepted {
                b: b(1, 0),
                slot: 1,
            },
        );
        let committed: Vec<(u64, Option<u64>)> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(
            committed,
            vec![(1, Some(11)), (1, Some(12)), (1, Some(13))],
            "a batch unfolds into per-command commits at its slot"
        );
        assert_eq!(
            h.sm.committed_commands().copied().collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
        assert_eq!(h.sm.committed_len(), 2, "two slots, four commands");
    }

    #[test]
    fn singleton_batch_stays_a_plain_cmd_on_the_wire() {
        // max_batch > 1 with exactly one queued command must not change the
        // wire shape: peers running older assumptions see Entry::Cmd.
        let mut h = led_leader_with(batched_params(8, 4));
        let fx = h.request(7);
        assert!(fx.sends.iter().all(|s| matches!(
            &s.msg,
            RsmMsg::Accept {
                slot: 0,
                entry: Entry::Cmd(7),
                ..
            }
        )));
    }

    #[test]
    fn learner_unfolds_a_batched_decide_from_the_leader() {
        // A non-leader replica receiving Decide{Batch} emits the same
        // per-command commit stream as the leader did.
        let mut h = Harness::new(2, 3);
        h.start();
        let fx = h.deliver(
            0,
            RsmMsg::Decide {
                slot: 0,
                entry: Entry::Batch(vec![5, 6]),
            },
        );
        let committed: Vec<(u64, Option<u64>)> = fx
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, cmd } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![(0, Some(5)), (0, Some(6))]);
        assert_eq!(
            h.sm.chosen_entries().get(&0),
            Some(&Entry::Batch(vec![5, 6])),
            "the lossless view keeps the batch intact"
        );
        assert_eq!(
            h.sm.chosen_log().get(&0),
            Some(&None),
            "the single-command view maps batches to None"
        );
    }

    #[test]
    fn batched_slots_survive_a_crash_restart() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        {
            let mut sm: Log =
                ReplicatedLog::with_storage(&env, batched_params(8, 4), store.clone()).unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Decide {
                    slot: 0,
                    entry: Entry::Batch(vec![1, 2, 3]),
                },
            );
            fx.take();
            // Crash.
        }
        let sm2: Log = ReplicatedLog::with_storage(&env, batched_params(8, 4), store).unwrap();
        assert_eq!(
            sm2.chosen(0),
            Some(&Entry::Batch(vec![1, 2, 3])),
            "a chosen batch must survive the crash whole"
        );
        assert_eq!(
            sm2.committed_commands().copied().collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn restart_from_wal_preserves_log_and_rejoins_quietly() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let mut fx: Effects<RsmMsg<u64>, RsmEvent<u64>> = Effects::new();
        {
            let mut sm: Log =
                ReplicatedLog::with_storage(&env, ConsensusParams::default(), store.clone())
                    .unwrap();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Prepare {
                    b: b(2, 0),
                    from_slot: 0,
                },
            );
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Accept {
                    b: b(2, 0),
                    slot: 1,
                    entry: Entry::Cmd(8),
                },
            );
            fx.take();
            let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
            sm.on_message(
                &mut ctx,
                ProcessId(0),
                RsmMsg::Decide {
                    slot: 0,
                    entry: Entry::Cmd(5),
                },
            );
            let out = fx.take();
            assert!(out.outputs.contains(&RsmEvent::Committed {
                slot: 0,
                cmd: Some(5)
            }));
            // Crash: the in-memory replica is dropped, only the WAL survives.
        }
        let mut sm2: Log =
            ReplicatedLog::with_storage(&env, ConsensusParams::default(), store).unwrap();
        assert_eq!(sm2.promised, b(2, 0), "promise must survive the crash");
        assert_eq!(
            sm2.chosen(0),
            Some(&Entry::Cmd(5)),
            "chosen slot must survive the crash"
        );
        assert_eq!(
            sm2.committed_len(),
            1,
            "recovered prefix is advanced past without re-emitting"
        );
        assert_eq!(
            sm2.omega().own_counter(),
            1,
            "incarnation bump: recovered counter 0 + 1"
        );
        // A higher-ballot Prepare reveals the pre-crash accepted suffix.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(
            &mut ctx,
            ProcessId(2),
            RsmMsg::Prepare {
                b: b(4, 2),
                from_slot: 0,
            },
        );
        let out = fx.take();
        let revealed = out
            .sends
            .iter()
            .find_map(|s| match &s.msg {
                RsmMsg::Promise { accepted, .. } => Some(accepted.clone()),
                _ => None,
            })
            .expect("restarted acceptor must promise the higher ballot");
        assert!(
            revealed.contains(&(1, b(2, 0), Entry::Cmd(8))),
            "pre-crash accepted entry must be revealed: {revealed:?}"
        );
        // A later Decide for slot 1 commits only slot 1 — slot 0 is not
        // re-emitted after recovery.
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        sm2.on_message(
            &mut ctx,
            ProcessId(0),
            RsmMsg::Decide {
                slot: 1,
                entry: Entry::Cmd(8),
            },
        );
        let out = fx.take();
        let committed: Vec<u64> = out
            .outputs
            .iter()
            .filter_map(|o| match o {
                RsmEvent::Committed { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![1]);
    }
}
