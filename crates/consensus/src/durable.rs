//! Durable records for crash–restart survival, with per-field safety
//! arguments.
//!
//! A process that can be killed and restarted is only safe if everything it
//! *told the rest of the system* survives the restart. For the protocols in
//! this crate, that is exactly four kinds of state, each appended to the
//! process's [`StorageHandle`](lls_primitives::StorageHandle) *before* the
//! message that exposes it can leave the process (the runtimes drain effects
//! only after a handler returns, so an append inside the handler is durable
//! first — the write-ahead rule):
//!
//! | field | record | why it must survive |
//! |---|---|---|
//! | Ω own counter | `OmegaCounter` | Peers adopt the largest counter heard from us and accusations only count when they match it (the counter *is* the phase). Regressing it would let a demoted candidate re-claim leadership it lost — breaking eventual agreement — and desynchronise the accusation phase forever. |
//! | promised ballot | `Promised` | A `Promise(b)` tells a proposer "no ballot `< b` can succeed through me". Forgetting it would let a restarted acceptor promise/accept an older ballot, producing two quorums for different values — the classic Paxos split brain. |
//! | accepted ballot/value | `Accepted` | A `Accepted(b)` vote may already be part of a quorum that chose the value. A restarted acceptor must reveal it in future promises, or a later proposer could choose a conflicting value. |
//! | decided value / chosen slot | `Decided` / `Chosen` | Decisions are irrevocable and are announced to peers (and to the local application). A restarted process must not re-decide differently, and must not re-emit its decision output (integrity: decide at most once). |
//!
//! # Recovery ("recovering rejoin mode")
//!
//! Recovery is performed synchronously inside `with_storage` constructors,
//! **before** `on_start` delivers the first stimulus — the machine is never
//! observable in a half-recovered state, so a restart cannot answer a
//! `Prepare`/`Accept` from pre-crash amnesia. Recovered decisions are
//! restored *without* re-emitting their outputs (the trace checkers require
//! each process to decide at most once); and the recovered Ω counter is
//! bumped by one (the incarnation bump), so the restarted process rejoins
//! as a follower and defers to whoever was elected while it was down.
//!
//! If an append fails at runtime, the machine *wedges*: it stops reacting to
//! all stimuli. A process whose durable storage is broken cannot safely keep
//! promises, so it must behave like a crashed process — which the protocols
//! already tolerate.
//!
//! # Compaction (the "durable prefix" envelope)
//!
//! Snapshots and WAL compaction
//! ([`ReplicatedLog::compact`](crate::ReplicatedLog::compact)) *remove*
//! records, so they need their own safety argument on top of the table
//! above. The invariant is an ordering: **the snapshot is durable first**
//! (CRC-checked, tmp-then-rename, directory fsync), then the WAL is
//! rewritten to its *live* records — the latest `OmegaCounter`, the latest
//! `Promised`, and every `Accepted`/`Chosen` at slots ≥ the snapshot
//! watermark — and only then is in-memory state pruned. A crash between any
//! two steps therefore recovers a *superset* of the required state (the
//! "durable prefix" envelope): old snapshot + full WAL, new snapshot + full
//! WAL, or new snapshot + compacted WAL, each of which replays to the same
//! observable state. Nothing an acceptor ever *told the rest of the system*
//! is dropped: the promise and the accepted suffix stay in the rewritten
//! WAL verbatim, and the chosen prefix below the watermark is summarized by
//! the snapshot, whose watermark floors the replica (`low_slot` in
//! `Promise`) so no peer is ever answered from compacted amnesia. A new
//! leader treats the maximum promised `low_slot` as its proposal *floor*:
//! any slot chosen below it had a quorum that intersects the promising
//! quorum, so the choice is either revealed in a promise or lies below some
//! reported `low_slot` — never silently contradicted by a fresh proposal.

use lls_primitives::wire::{Wire, WireError, WireReader};

use crate::ballot::Ballot;
use crate::msg::Entry;

/// One durable record of a single-shot [`Consensus`](crate::Consensus)
/// process. See the module docs for the per-field safety argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptorRecord<V> {
    /// The embedded Ω detector's own accusation counter reached this value.
    OmegaCounter(u64),
    /// The acceptor promised this ballot.
    Promised(Ballot),
    /// The acceptor accepted this (ballot, value) pair.
    Accepted(Ballot, V),
    /// This process decided this value.
    Decided(V),
}

impl<V: Wire> Wire for AcceptorRecord<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AcceptorRecord::OmegaCounter(c) => {
                out.push(0);
                c.encode(out);
            }
            AcceptorRecord::Promised(b) => {
                out.push(1);
                b.encode(out);
            }
            AcceptorRecord::Accepted(b, v) => {
                out.push(2);
                b.encode(out);
                v.encode(out);
            }
            AcceptorRecord::Decided(v) => {
                out.push(3);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(AcceptorRecord::OmegaCounter(u64::decode(r)?)),
            1 => Ok(AcceptorRecord::Promised(Ballot::decode(r)?)),
            2 => Ok(AcceptorRecord::Accepted(Ballot::decode(r)?, V::decode(r)?)),
            3 => Ok(AcceptorRecord::Decided(V::decode(r)?)),
            tag => Err(WireError::BadTag {
                type_name: "AcceptorRecord",
                tag,
            }),
        }
    }
}

/// One durable record of a [`ReplicatedLog`](crate::ReplicatedLog) replica.
/// Same safety arguments as [`AcceptorRecord`], per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmRecord<V> {
    /// The embedded Ω detector's own accusation counter reached this value.
    OmegaCounter(u64),
    /// The acceptor promised this ballot (covering all slots).
    Promised(Ballot),
    /// The acceptor accepted `entry` at `slot` under ballot `b`.
    Accepted {
        /// The slot written.
        slot: u64,
        /// The ballot under which it was written.
        b: Ballot,
        /// The accepted entry.
        entry: Entry<V>,
    },
    /// This replica learned that `slot` chose `entry`.
    Chosen {
        /// The decided slot.
        slot: u64,
        /// The chosen entry.
        entry: Entry<V>,
    },
}

impl<V: Wire> Wire for RsmRecord<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RsmRecord::OmegaCounter(c) => {
                out.push(0);
                c.encode(out);
            }
            RsmRecord::Promised(b) => {
                out.push(1);
                b.encode(out);
            }
            RsmRecord::Accepted { slot, b, entry } => {
                out.push(2);
                slot.encode(out);
                b.encode(out);
                entry.encode(out);
            }
            RsmRecord::Chosen { slot, entry } => {
                out.push(3);
                slot.encode(out);
                entry.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(RsmRecord::OmegaCounter(u64::decode(r)?)),
            1 => Ok(RsmRecord::Promised(Ballot::decode(r)?)),
            2 => Ok(RsmRecord::Accepted {
                slot: u64::decode(r)?,
                b: Ballot::decode(r)?,
                entry: Entry::decode(r)?,
            }),
            3 => Ok(RsmRecord::Chosen {
                slot: u64::decode(r)?,
                entry: Entry::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "RsmRecord",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::ProcessId;

    #[test]
    fn acceptor_records_round_trip() {
        let b = Ballot::new(3, ProcessId(1));
        let records: Vec<AcceptorRecord<u64>> = vec![
            AcceptorRecord::OmegaCounter(7),
            AcceptorRecord::Promised(b),
            AcceptorRecord::Accepted(b, 42),
            AcceptorRecord::Decided(42),
        ];
        for rec in records {
            let bytes = rec.to_bytes();
            assert_eq!(AcceptorRecord::<u64>::from_bytes(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn rsm_records_round_trip() {
        let b = Ballot::new(2, ProcessId(0));
        let records: Vec<RsmRecord<u64>> = vec![
            RsmRecord::OmegaCounter(1),
            RsmRecord::Promised(b),
            RsmRecord::Accepted {
                slot: 5,
                b,
                entry: Entry::Cmd(9),
            },
            RsmRecord::Chosen {
                slot: 5,
                entry: Entry::Noop,
            },
        ];
        for rec in records {
            let bytes = rec.to_bytes();
            assert_eq!(RsmRecord::<u64>::from_bytes(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        assert!(matches!(
            AcceptorRecord::<u64>::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
    }
}
