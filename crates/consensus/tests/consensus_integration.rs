//! End-to-end consensus runs on the simulator: safety in every run,
//! liveness in system `S_maj`, communication-efficient steady state.

use std::collections::BTreeMap;

use consensus::checker::{check_consensus_safety, check_log_consistency, DecisionRecord};
use consensus::{Consensus, ConsensusEvent, ConsensusParams, ReplicatedLog};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Simulator, SystemSParams, Topology};

fn system_s(n: usize, source: u32) -> Topology {
    Topology::system_s(n, ProcessId(source), SystemSParams::default())
}

fn decisions(sim: &Simulator<Consensus<u64>>) -> Vec<DecisionRecord<u64>> {
    sim.outputs()
        .iter()
        .filter_map(|e| match &e.output {
            ConsensusEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect()
}

fn run_single(
    n: usize,
    seed: u64,
    topo: Topology,
    horizon: u64,
    crashes: &[(u32, u64)],
) -> Simulator<Consensus<u64>> {
    let mut builder = SimBuilder::new(n).seed(seed).topology(topo);
    for &(p, t) in crashes {
        builder = builder.crash_at(ProcessId(p), Instant::from_ticks(t));
    }
    let mut sim = builder.build_with(|env| {
        Consensus::new(
            env,
            ConsensusParams::default(),
            Some(100 + env.id().0 as u64),
        )
    });
    sim.run_until(Instant::from_ticks(horizon));
    sim
}

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|p| 100 + p).collect()
}

#[test]
fn all_correct_processes_decide_the_same_proposed_value() {
    for seed in 0..6u64 {
        let n = 5;
        let sim = run_single(n, seed, system_s(n, (seed % 5) as u32), 80_000, &[]);
        let ds = decisions(&sim);
        assert_eq!(ds.len(), n, "every process must decide (seed {seed})");
        check_consensus_safety(&ds, &proposals(n)).unwrap();
    }
}

#[test]
fn safety_holds_with_minority_crashes_and_liveness_resumes() {
    let n = 5;
    // Crash two non-source processes mid-run; majority (3) survives.
    let sim = run_single(n, 7, system_s(n, 2), 100_000, &[(0, 3_000), (4, 9_000)]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    // All three survivors decide.
    let deciders: Vec<ProcessId> = ds.iter().map(|d| d.process).collect();
    for p in [1u32, 2, 3] {
        assert!(
            deciders.contains(&ProcessId(p)),
            "survivor p{p} failed to decide; deciders: {deciders:?}"
        );
    }
}

#[test]
fn decision_is_stable_across_leader_crash() {
    let n = 5;
    // Let the run decide early, then crash the likely leader; the decision
    // must not change and survivors that already decided stay decided.
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(1), ProcessId(3)],
        SystemSParams {
            gst: 100,
            ..SystemSParams::default()
        },
    );
    let mut sim = SimBuilder::new(n).seed(3).topology(topo).build_with(|env| {
        Consensus::new(
            env,
            ConsensusParams::default(),
            Some(100 + env.id().0 as u64),
        )
    });
    sim.run_until(Instant::from_ticks(30_000));
    let early = decisions(&sim);
    assert!(!early.is_empty(), "nobody decided in 30k ticks");
    let leader = sim.node(early[0].process).omega().leader();
    sim.crash_now(leader);
    sim.run_until(Instant::from_ticks(90_000));
    let late = decisions(&sim);
    check_consensus_safety(&late, &proposals(n)).unwrap();
    assert!(late.len() >= early.len());
}

#[test]
fn no_decision_without_majority_but_no_unsafety_either() {
    let n = 4;
    // Crash 3 of 4 immediately: no quorum can ever form after the crashes.
    // Any decisions reached before/after must still be safe; typically none.
    let sim = run_single(n, 11, system_s(n, 3), 40_000, &[(0, 10), (1, 10), (2, 10)]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    // The survivor alone cannot decide after the crashes: at most the
    // pre-crash instant could decide, and with a 10-tick window it cannot.
    assert!(
        ds.iter()
            .all(|d| d.process == ProcessId(3) || d.at <= Instant::from_ticks(10)),
        "quorum-less decisions: {ds:?}"
    );
    assert!(
        ds.is_empty(),
        "no quorum should form in 10 ticks, got {ds:?}"
    );
}

#[test]
fn decision_survives_decider_crashing_immediately_after_deciding() {
    // Regression (found by experiment E6, seed 4): p0 decides and broadcasts
    // `Decide`, then crashes; one peer's copy is lost. Without leader-driven
    // retransmission of the decision, that peer never learns. The decided Ω
    // leader must keep retransmitting to unacknowledged peers.
    let n = 7;
    let source = 4;
    let sim = run_single(
        n,
        4,
        system_s(n, source),
        300_000,
        &[(0, 40), (1, 80), (2, 120)],
    );
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    for p in [3u32, 4, 5, 6] {
        assert!(
            ds.iter().any(|d| d.process == ProcessId(p)),
            "correct p{p} never decided; deciders: {:?}",
            ds.iter().map(|d| d.process).collect::<Vec<_>>()
        );
    }
}

#[test]
fn heavy_loss_delays_but_does_not_break_consensus() {
    let n = 5;
    let topo = Topology::system_s(
        n,
        ProcessId(0),
        SystemSParams {
            mesh_loss: 0.6,
            gst: 2_000,
            pre_gst_loss: 0.9,
            ..SystemSParams::default()
        },
    );
    let sim = run_single(n, 19, topo, 150_000, &[]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    assert_eq!(ds.len(), n, "all must decide despite 60% loss");
}

#[test]
fn replicated_log_commits_a_stream_in_order_everywhere() {
    let n = 5;
    let mut builder = SimBuilder::new(n).seed(23).topology(system_s(n, 0));
    // Submit 20 commands to p0 spaced through the run (p0 is the source and
    // the overwhelmingly likely stable leader).
    for k in 0..20u64 {
        builder = builder.request_at(
            Instant::from_ticks(10_000 + 500 * k),
            ProcessId(0),
            1_000 + k,
        );
    }
    let mut sim = builder.build_with(|env| ReplicatedLog::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(120_000));

    // Every replica's chosen log agrees slot-by-slot.
    let logs: Vec<BTreeMap<u64, Option<u64>>> = (0..n as u32)
        .map(|p| sim.node(ProcessId(p)).chosen_log())
        .collect();
    check_log_consistency(&logs).unwrap();

    // The leader's committed command stream is exactly the submission order.
    let committed: Vec<u64> = sim
        .node(ProcessId(0))
        .committed_commands()
        .cloned()
        .collect();
    assert_eq!(committed, (0..20u64).map(|k| 1_000 + k).collect::<Vec<_>>());

    // And every replica converges to the same committed stream.
    for p in 1..n as u32 {
        let stream: Vec<u64> = sim
            .node(ProcessId(p))
            .committed_commands()
            .cloned()
            .collect();
        assert_eq!(stream, committed, "replica p{p} diverged");
    }
}

#[test]
fn replicated_log_survives_leader_crash_without_losing_commits() {
    let n = 5;
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(2)],
        SystemSParams {
            gst: 100,
            ..SystemSParams::default()
        },
    );
    let mut sim = SimBuilder::new(n)
        .seed(31)
        .topology(topo)
        .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
    // Commit a few commands under the first leader.
    sim.run_until(Instant::from_ticks(5_000));
    let leader = sim.node(ProcessId(1)).omega().leader();
    for k in 0..5u64 {
        sim.schedule_request(Instant::from_ticks(5_100 + 100 * k), leader, k);
    }
    sim.run_until(Instant::from_ticks(20_000));
    let before: Vec<u64> = sim.node(leader).committed_commands().cloned().collect();
    assert_eq!(before, vec![0, 1, 2, 3, 4]);

    // Crash the leader; the survivors elect a new one and keep committing.
    sim.crash_now(leader);
    sim.run_until(Instant::from_ticks(60_000));
    let new_leader = (0..n as u32)
        .map(ProcessId)
        .filter(|&p| p != leader)
        .find(|&p| sim.node(p).omega().leader() == p)
        .expect("a survivor must lead");
    for k in 5..8u64 {
        sim.schedule_request(
            Instant::from_ticks(60_000 + 200 * (k - 5) + 1),
            new_leader,
            k,
        );
    }
    sim.run_until(Instant::from_ticks(120_000));

    let logs: Vec<BTreeMap<u64, Option<u64>>> = (0..n as u32)
        .filter(|&p| ProcessId(p) != leader)
        .map(|p| sim.node(ProcessId(p)).chosen_log())
        .collect();
    check_log_consistency(&logs).unwrap();
    let stream: Vec<u64> = sim.node(new_leader).committed_commands().cloned().collect();
    // All pre-crash commits survive, in order, and the new ones follow
    // (no-op fillers are skipped by committed_commands).
    assert_eq!(stream, vec![0, 1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn steady_state_costs_are_linear_per_decision() {
    // The communication-efficiency claim for consensus: once the leader is
    // established, a command costs ~3(n-1) messages (Accept out, Accepted
    // in, Decide out) plus acks — Θ(n), with no Prepare traffic at all.
    let n = 5;
    let mut sim = SimBuilder::new(n)
        .seed(41)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .classify(consensus::classify_rsm_msg)
        .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(10_000));
    let prepares_before = sim
        .stats()
        .kind_counts()
        .get("PREPARE")
        .copied()
        .unwrap_or(0);
    let base_total = sim.stats().total_sent();

    let commands = 50u64;
    for k in 0..commands {
        sim.schedule_request(Instant::from_ticks(10_001 + 100 * k), ProcessId(0), k);
    }
    sim.run_until(Instant::from_ticks(10_000 + 100 * commands + 5_000));

    let prepares_after = sim
        .stats()
        .kind_counts()
        .get("PREPARE")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        prepares_before, prepares_after,
        "steady state must not re-run phase 1"
    );
    // Total protocol messages per command (excluding the constant Ω
    // heartbeat background): Accept/Accepted/Decide/DecideAck = 4(n-1).
    let alive_rate = sim.stats().kind_counts()["ALIVE"]; // background
    let total = sim.stats().total_sent() - base_total;
    let per_command = (total.saturating_sub(alive_rate)) as f64 / commands as f64;
    assert!(
        per_command <= (4 * (n - 1)) as f64 + 2.0,
        "steady-state cost too high: {per_command:.1} msgs/cmd"
    );
    assert_eq!(sim.node(ProcessId(0)).committed_len(), commands);
}
