//! Properties of bounded recovery: compaction must be invisible to both
//! the state machine (replay equivalence) and the protocol (an acceptor's
//! promises survive crashes even when the log behind them was compacted).

use consensus::{Ballot, ConsensusParams, Entry, ReplicatedLog, RsmEvent, RsmMsg};
use lls_primitives::wire::Wire;
use lls_primitives::{Ctx, Effects, Env, Instant, ProcessId, Sm, SnapshotHandle, StorageHandle};
use proptest::prelude::*;

type Log = ReplicatedLog<u64>;
type Fx = Effects<RsmMsg<u64>, RsmEvent<u64>>;

fn b(round: u64, leader: u32) -> Ballot {
    Ballot::new(round, ProcessId(leader))
}

fn deliver(env: &Env, sm: &mut Log, from: u32, msg: RsmMsg<u64>) -> Fx {
    let mut fx = Effects::new();
    let mut ctx = Ctx::new(env, Instant::ZERO, &mut fx);
    sm.on_message(&mut ctx, ProcessId(from), msg);
    fx
}

fn decide(env: &Env, sm: &mut Log, slot: u64, value: u64) {
    deliver(
        env,
        sm,
        0,
        RsmMsg::Decide {
            slot,
            entry: Entry::Cmd(value),
        },
    );
}

/// The full materialized command sequence of a recovered log: the commands
/// summarized by its snapshot (we encode exactly the compacted prefix into
/// the snapshot body) followed by the replayed WAL tail.
fn materialized(sm: &Log) -> Vec<u64> {
    let mut all = match sm.recovered_snapshot() {
        Some(snap) => Vec::<u64>::from_bytes(&snap.data).expect("snapshot body decodes"),
        None => Vec::new(),
    };
    all.extend(sm.committed_commands_from(sm.watermark()).copied());
    all
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Replaying `snapshot + truncated WAL` equals replaying the full WAL,
    /// for arbitrary decide counts, compaction cadences, and kill points.
    /// The compacted replica's WAL never holds more live bytes than the
    /// uncompacted twin's.
    #[test]
    fn snapshot_plus_truncated_wal_equals_full_wal_replay(
        decides in 1u64..60,
        cadence in 1u64..12,
        kill_after in 0u64..60,
    ) {
        let env = Env::new(ProcessId(1), 3);
        let store_a = StorageHandle::in_memory();
        let snaps_a = SnapshotHandle::in_memory();
        let store_b = StorageHandle::in_memory();
        let kill = kill_after.min(decides);
        {
            let mut a: Log = ReplicatedLog::with_storage_and_snapshots(
                &env, ConsensusParams::default(), store_a.clone(), snaps_a.clone(),
            ).unwrap();
            let mut full: Log = ReplicatedLog::with_storage(
                &env, ConsensusParams::default(), store_b.clone(),
            ).unwrap();
            // The "application state": every command applied so far, in
            // order — what a real state machine materializes and what the
            // snapshot body must therefore summarize (the log itself no
            // longer holds commands below earlier watermarks).
            let mut applied: Vec<u64> = Vec::new();
            for slot in 0..kill {
                decide(&env, &mut a, slot, slot * 10 + 1);
                decide(&env, &mut full, slot, slot * 10 + 1);
                applied.push(slot * 10 + 1);
                if (slot + 1) % cadence == 0 {
                    let watermark = a.committed_len();
                    let body = applied[..watermark as usize].to_vec();
                    a.compact(watermark, body.to_bytes()).unwrap();
                }
            }
            // Crash both at the kill point (drop without further writes).
        }
        let a2: Log = ReplicatedLog::with_storage_and_snapshots(
            &env, ConsensusParams::default(), store_a, snaps_a,
        ).unwrap();
        let full2: Log = ReplicatedLog::with_storage(
            &env, ConsensusParams::default(), store_b,
        ).unwrap();
        let from_full: Vec<u64> = full2.committed_commands().copied().collect();
        prop_assert_eq!(materialized(&a2), from_full, "replay equivalence");
        prop_assert_eq!(a2.committed_len(), full2.committed_len());
        prop_assert!(
            a2.wal_stats().live_bytes <= full2.wal_stats().live_bytes,
            "compaction never inflates the WAL: {} > {}",
            a2.wal_stats().live_bytes,
            full2.wal_stats().live_bytes
        );
    }

    /// A restarted acceptor whose log tail was compacted still honours its
    /// pre-crash promise: stale Prepares win no Promise, stale Accepts are
    /// nacked, and the accepted suffix above the watermark is revealed to
    /// a genuinely higher ballot together with the compaction horizon.
    #[test]
    fn restarted_acceptor_honours_pre_crash_promises_with_compacted_tail(
        prefix in 1u64..20,
        promised_round in 2u64..10,
        stale_round in 1u64..10,
    ) {
        let env = Env::new(ProcessId(1), 3);
        let store = StorageHandle::in_memory();
        let snaps = SnapshotHandle::in_memory();
        let promised = b(promised_round, 0);
        {
            let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
                &env, ConsensusParams::default(), store.clone(), snaps.clone(),
            ).unwrap();
            for slot in 0..prefix {
                decide(&env, &mut sm, slot, slot);
            }
            deliver(&env, &mut sm, 0, RsmMsg::Prepare { b: promised, from_slot: 0 });
            // An accepted-but-undecided entry above the prefix, then compact.
            deliver(&env, &mut sm, 0, RsmMsg::Accept {
                b: promised, slot: prefix + 1, entry: Entry::Cmd(777),
            });
            sm.compact(prefix, vec![]).unwrap();
            // Crash.
        }
        let mut sm: Log = ReplicatedLog::with_storage_and_snapshots(
            &env, ConsensusParams::default(), store, snaps,
        ).unwrap();
        prop_assert_eq!(sm.watermark(), prefix);

        let stale = b(stale_round, 2);
        if stale < promised {
            let fx = deliver(&env, &mut sm, 2, RsmMsg::Prepare { b: stale, from_slot: 0 });
            prop_assert!(
                !fx.sends.iter().any(|s| matches!(s.msg, RsmMsg::Promise { .. })),
                "a stale Prepare must not win a promise after recovery"
            );
            let fx = deliver(&env, &mut sm, 2, RsmMsg::Accept {
                b: stale, slot: prefix + 2, entry: Entry::Cmd(666),
            });
            prop_assert!(
                fx.sends.iter().any(|s| matches!(s.msg, RsmMsg::Nack { .. })),
                "a stale Accept must be nacked after recovery"
            );
            prop_assert_eq!(sm.chosen(prefix + 2), None);
        }

        // A genuinely higher ballot learns everything live: the compaction
        // horizon and the accepted suffix above it.
        let higher = b(promised_round + stale_round + 1, 2);
        let fx = deliver(&env, &mut sm, 2, RsmMsg::Prepare { b: higher, from_slot: 0 });
        let (low_slot, accepted) = fx.sends.iter().find_map(|s| match &s.msg {
            RsmMsg::Promise { low_slot, accepted, .. } => Some((*low_slot, accepted.clone())),
            _ => None,
        }).expect("higher ballot wins a promise");
        prop_assert_eq!(low_slot, prefix, "low_slot reports the watermark");
        prop_assert!(
            accepted.contains(&(prefix + 1, promised, Entry::Cmd(777))),
            "the pre-crash accepted suffix survives compaction + crash: {:?}",
            accepted
        );
    }
}
