//! Property tests for the consensus building blocks: ballot arithmetic and
//! the acceptor-side ordering rules the safety argument rests on.

use consensus::checker::{check_agreement, check_integrity, DecisionRecord};
use consensus::Ballot;
use lls_primitives::{Instant, ProcessId};
use proptest::prelude::*;

fn ballot() -> impl Strategy<Value = Ballot> {
    (0u64..1_000, 0u32..16).prop_map(|(r, p)| Ballot::new(r, ProcessId(p)))
}

proptest! {
    /// `next_for` always produces a strictly greater ballot owned by the
    /// caller — the property that gives every proposer a disjoint,
    /// unbounded ballot supply.
    #[test]
    fn next_for_is_strictly_greater_and_owned(b in ballot(), me in 0u32..16) {
        let n = b.next_for(ProcessId(me));
        prop_assert!(n > b);
        prop_assert_eq!(n.leader(), ProcessId(me));
    }

    /// `next_for` is minimal: no ballot owned by `me` fits strictly between
    /// `b` and `b.next_for(me)`.
    #[test]
    fn next_for_is_minimal(b in ballot(), me in 0u32..16) {
        let n = b.next_for(ProcessId(me));
        // Any smaller candidate owned by me is ≤ b.
        let candidates = [
            Ballot::new(n.round().saturating_sub(1), ProcessId(me)),
            Ballot::new(n.round(), ProcessId(me)),
        ];
        for c in candidates {
            if c < n {
                prop_assert!(c <= b, "{c} sits between {b} and {n}");
            }
        }
    }

    /// Ballot order is total and antisymmetric (sanity for quorum logic).
    #[test]
    fn ballot_order_is_total(a in ballot(), b in ballot()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a == b {
            prop_assert_eq!(a.round(), b.round());
            prop_assert_eq!(a.leader(), b.leader());
        }
    }

    /// Two distinct proposers never mint the same ballot from any base.
    #[test]
    fn proposers_never_collide(b in ballot(), p in 0u32..16, q in 0u32..16) {
        prop_assume!(p != q);
        prop_assert_ne!(b.next_for(ProcessId(p)), b.next_for(ProcessId(q)));
    }

    /// The agreement checker accepts exactly the unanimous decision vectors.
    #[test]
    fn agreement_checker_characterization(
        values in proptest::collection::vec(0u64..4, 1..6),
    ) {
        let ds: Vec<DecisionRecord<u64>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DecisionRecord {
                at: Instant::from_ticks(i as u64),
                process: ProcessId(i as u32),
                value: v,
            })
            .collect();
        let unanimous = values.windows(2).all(|w| w[0] == w[1]);
        prop_assert_eq!(check_agreement(&ds).is_ok(), unanimous);
        // Distinct processes: integrity always holds here.
        prop_assert!(check_integrity(&ds).is_ok());
    }
}

/// Rank-table properties live in the `omega` crate; this cross-checks the
/// composition: a ballot built from a rank winner is owned by that winner.
#[test]
fn ballot_from_rank_winner_is_owned_by_winner() {
    use omega::RankTable;
    let mut t = RankTable::new(4);
    t.record_suspicion(ProcessId(0));
    let winner = t.best();
    let b = Ballot::ZERO.next_for(winner);
    assert_eq!(b.leader(), winner);
    assert!(b > Ballot::ZERO);
}
