//! The rotating-coordinator baseline end-to-end: safe always, live in
//! `S_maj`, and measurably more round-churny than the Ω-gated design.

use consensus::checker::{check_consensus_safety, DecisionRecord};
use consensus::{ConsensusParams, RotEvent, RotatingConsensus};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Simulator, SystemSParams, Topology};

fn decisions(sim: &Simulator<RotatingConsensus<u64>>) -> Vec<DecisionRecord<u64>> {
    sim.outputs()
        .iter()
        .filter_map(|e| match &e.output {
            RotEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect()
}

fn run(
    n: usize,
    seed: u64,
    topo: Topology,
    horizon: u64,
    crashes: &[(u32, u64)],
) -> Simulator<RotatingConsensus<u64>> {
    let mut builder = SimBuilder::new(n).seed(seed).topology(topo);
    for &(p, t) in crashes {
        builder = builder.crash_at(ProcessId(p), Instant::from_ticks(t));
    }
    let mut sim = builder.build_with(|env| {
        RotatingConsensus::new(env, ConsensusParams::default(), 100 + env.id().0 as u64)
    });
    sim.run_until(Instant::from_ticks(horizon));
    sim
}

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|p| 100 + p).collect()
}

#[test]
fn decides_on_timely_links_in_round_zero() {
    let n = 5;
    let sim = run(
        n,
        1,
        Topology::all_timely(n, Duration::from_ticks(2)),
        20_000,
        &[],
    );
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    assert_eq!(ds.len(), n);
    // With perfect links nobody should ever leave round 0.
    for p in (0..n as u32).map(ProcessId) {
        assert_eq!(sim.node(p).rounds_entered(), 1, "{p} churned rounds");
    }
}

#[test]
fn decides_in_system_s_despite_loss() {
    for seed in 0..4u64 {
        let n = 5;
        let topo = Topology::system_s(n, ProcessId((seed % 5) as u32), SystemSParams::default());
        let sim = run(n, seed, topo, 150_000, &[]);
        let ds = decisions(&sim);
        check_consensus_safety(&ds, &proposals(n)).unwrap();
        assert_eq!(ds.len(), n, "seed {seed}: all must decide");
    }
}

#[test]
fn survives_coordinator_crashes_while_majority_lives() {
    let n = 5;
    // Crash p0 and p1 — the coordinators of rounds 0 and 1 — immediately.
    let topo = Topology::system_s(n, ProcessId(3), SystemSParams::default());
    let sim = run(n, 9, topo, 200_000, &[(0, 10), (1, 10)]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    for p in [2u32, 3, 4] {
        assert!(
            ds.iter().any(|d| d.process == ProcessId(p)),
            "survivor p{p} did not decide"
        );
    }
    // The survivors necessarily churned past the dead coordinators.
    assert!(sim.node(ProcessId(2)).rounds_entered() > 1);
}

#[test]
fn no_majority_means_no_decision_but_no_unsafety() {
    let n = 4;
    let topo = Topology::system_s(n, ProcessId(3), SystemSParams::default());
    let sim = run(n, 2, topo, 60_000, &[(0, 5), (1, 5), (2, 5)]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    assert!(ds.is_empty(), "no quorum should form: {ds:?}");
}

#[test]
fn round_churn_is_the_price_of_rotation() {
    // Under a late GST the rotating design burns through rounds while the
    // coordinators are unreachable — the instability Ω-gating removes.
    let n = 5;
    let topo = Topology::system_s(
        n,
        ProcessId(2),
        SystemSParams {
            gst: 5_000,
            pre_gst_loss: 0.9,
            mesh_loss: 0.5,
            ..SystemSParams::default()
        },
    );
    let sim = run(n, 7, topo, 200_000, &[]);
    let ds = decisions(&sim);
    check_consensus_safety(&ds, &proposals(n)).unwrap();
    assert_eq!(ds.len(), n);
    let max_rounds = (0..n as u32)
        .map(|p| sim.node(ProcessId(p)).rounds_entered())
        .max()
        .unwrap();
    assert!(
        max_rounds > 2,
        "expected round churn under a hostile prefix, got {max_rounds}"
    );
}
