//! Property-based tests: consensus safety in *every* run (even without a
//! correct majority or a ♦-source) and liveness in admissible runs.

use std::collections::BTreeMap;

use consensus::checker::{check_consensus_safety, check_log_consistency, DecisionRecord};
use consensus::{Consensus, ConsensusEvent, ConsensusParams, ReplicatedLog};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Adversary {
    n: usize,
    source: u32,
    seed: u64,
    gst: u64,
    mesh_loss: f64,
    crashes: Vec<(u32, u64)>,
}

/// Arbitrary adversaries — *including* ones that crash a majority or the
/// source. Safety must hold regardless; liveness is only asserted for
/// admissible ones.
fn adversary() -> impl Strategy<Value = Adversary> {
    (3usize..=6, any::<u64>(), 0u64..4_000, 0.0f64..0.6)
        .prop_flat_map(|(n, seed, gst, mesh_loss)| {
            (
                Just(n),
                0..n as u32,
                Just(seed),
                Just(gst),
                Just(mesh_loss),
                proptest::collection::vec((0..n as u32, 0u64..30_000), 0..n),
            )
        })
        .prop_map(|(n, source, seed, gst, mesh_loss, crashes)| Adversary {
            n,
            source,
            seed,
            gst,
            mesh_loss,
            crashes,
        })
}

fn run(adv: &Adversary, horizon: u64) -> netsim::Simulator<Consensus<u64>> {
    let topo = Topology::system_s(
        adv.n,
        ProcessId(adv.source),
        SystemSParams {
            gst: adv.gst,
            mesh_loss: adv.mesh_loss,
            ..SystemSParams::default()
        },
    );
    let mut builder = SimBuilder::new(adv.n).seed(adv.seed).topology(topo);
    let mut crashed = vec![false; adv.n];
    for &(p, t) in &adv.crashes {
        if !crashed[p as usize] {
            crashed[p as usize] = true;
            builder = builder.crash_at(ProcessId(p), Instant::from_ticks(t));
        }
    }
    let mut sim = builder.build_with(|env| {
        Consensus::new(
            env,
            ConsensusParams::default(),
            Some(100 + env.id().0 as u64),
        )
    });
    sim.run_until(Instant::from_ticks(horizon));
    sim
}

fn decisions(sim: &netsim::Simulator<Consensus<u64>>) -> Vec<DecisionRecord<u64>> {
    sim.outputs()
        .iter()
        .filter_map(|e| match &e.output {
            ConsensusEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Safety is unconditional: agreement, integrity and validity hold in
    /// every run, however hostile.
    #[test]
    fn safety_holds_under_arbitrary_adversaries(adv in adversary()) {
        let sim = run(&adv, 60_000);
        let ds = decisions(&sim);
        let proposals: Vec<u64> = (0..adv.n as u64).map(|p| 100 + p).collect();
        if let Err(e) = check_consensus_safety(&ds, &proposals) {
            prop_assert!(false, "{e} under {adv:?}");
        }
    }

    /// Liveness holds in admissible runs: source correct, majority correct.
    #[test]
    fn liveness_holds_in_admissible_runs(mut adv in adversary()) {
        // Make the adversary admissible: spare the source, keep a majority.
        adv.crashes.retain(|&(p, _)| p != adv.source);
        let allowed = (adv.n - 1) / 2; // crashes strictly below half
        adv.crashes.truncate(allowed);
        let sim = run(&adv, 120_000);
        let ds = decisions(&sim);
        let mut crashed = vec![false; adv.n];
        for &(p, _) in &adv.crashes {
            crashed[p as usize] = true;
        }
        for p in 0..adv.n as u32 {
            if !crashed[p as usize] {
                prop_assert!(
                    ds.iter().any(|d| d.process == ProcessId(p)),
                    "correct p{p} did not decide under {adv:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Replicated-log slot agreement under random command interleavings and
    /// loss: no two replicas ever commit different entries at a slot.
    #[test]
    fn log_consistency_under_random_workloads(
        seed in any::<u64>(),
        mesh_loss in 0.0f64..0.5,
        cmds in 1usize..30,
    ) {
        let n = 5;
        let topo = Topology::system_s(
            n,
            ProcessId(0),
            SystemSParams { mesh_loss, gst: 500, ..SystemSParams::default() },
        );
        // Ω only promises *some* correct process leads — not the source — so
        // submit every command to every replica: whichever replica is the
        // stable leader commits its copy of the whole stream.
        let mut builder = SimBuilder::new(n).seed(seed).topology(topo);
        for k in 0..cmds as u64 {
            for p in 0..n as u32 {
                builder = builder.request_at(
                    Instant::from_ticks(8_000 + 300 * k),
                    ProcessId(p),
                    k,
                );
            }
        }
        let mut sim = builder
            .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
        sim.run_until(Instant::from_ticks(8_000 + 300 * cmds as u64 + 80_000));
        let logs: Vec<BTreeMap<u64, Option<u64>>> = (0..n as u32)
            .map(|p| sim.node(ProcessId(p)).chosen_log())
            .collect();
        if let Err(e) = check_log_consistency(&logs) {
            prop_assert!(false, "{e} (seed={seed}, loss={mesh_loss}, cmds={cmds})");
        }
        // Liveness: every command is committed somewhere in the shared log
        // (duplicates across leader changes are allowed; loss is not).
        let union: std::collections::BTreeSet<u64> = logs
            .iter()
            .flat_map(|log| log.values().flatten().copied())
            .collect();
        for k in 0..cmds as u64 {
            prop_assert!(
                union.contains(&k),
                "command {k} lost (seed={seed}, loss={mesh_loss}, cmds={cmds}; union={union:?})"
            );
        }
    }
}
