//! Quality-of-service metrics for Ω runs, in the spirit of the classic
//! failure-detector QoS framework (Chen, Toueg, Aguilera: *On the quality of
//! service of failure detectors*).
//!
//! The Ω specification only says "eventually"; deployments care about *how
//! fast* and *how noisy*. Given a leader trace, the crash schedule and the
//! run horizon, [`qos`] computes:
//!
//! * **stabilization time** — when the final agreement began;
//! * **instability** — leader changes, total and per process;
//! * **crash detection time** — for every crashed process, how long some
//!   correct process kept trusting it after the crash (the Ω analogue of
//!   the detection-time metric);
//! * **wrongful demotions** — times a correct process stopped trusting the
//!   eventual leader only to return to it (the Ω analogue of mistake rate).

use lls_primitives::{Duration, Instant, ProcessId};
use serde::{Deserialize, Serialize};

use crate::spec::{stabilization, LeaderRecord};

/// Detection metrics for one crashed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashDetection {
    /// The crashed process.
    pub victim: ProcessId,
    /// When it crashed.
    pub crash_at: Instant,
    /// The last time any correct process switched *to or stayed with* the
    /// victim — i.e. when the system was finally clear of it — if it was
    /// ever trusted after the crash.
    pub cleared_at: Option<Instant>,
    /// `cleared_at - crash_at`; zero if nobody trusted the victim after the
    /// crash.
    pub detection: Duration,
}

/// The full QoS report of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosReport {
    /// When agreement on the final correct leader began, if it did.
    pub stabilization_at: Option<Instant>,
    /// Total leader changes across all correct processes (excluding each
    /// process's initial output).
    pub total_changes: usize,
    /// Leader changes per process id (faulty processes included, for
    /// completeness).
    pub per_process_changes: Vec<usize>,
    /// Crash-detection metrics, one entry per crashed process.
    pub detections: Vec<CrashDetection>,
    /// Wrongful demotions: events where a correct process switched *away*
    /// from the eventual leader after having trusted it (each one is a
    /// "mistake" in QoS terms).
    pub wrongful_demotions: usize,
}

/// Computes the QoS report for a finished run.
///
/// `n` is the system size, `trace` the leader outputs, `correct` the
/// processes that never crashed, and `crashes` the `(victim, time)` schedule.
///
/// # Example
///
/// ```
/// use lls_primitives::{Duration, Instant, ProcessId};
/// use omega::qos::qos;
/// use omega::spec::LeaderRecord;
///
/// let t = |k| Instant::from_ticks(k);
/// let p = |k| ProcessId(k);
/// // p0 crashes at t=50; p1 keeps trusting it until t=80, then self-elects.
/// let trace = vec![
///     LeaderRecord { at: t(0), process: p(1), leader: p(0) },
///     LeaderRecord { at: t(80), process: p(1), leader: p(1) },
/// ];
/// let report = qos(2, &trace, &[p(1)], &[(p(0), t(50))]);
/// assert_eq!(report.detections[0].detection, Duration::from_ticks(30));
/// assert_eq!(report.stabilization_at, Some(t(80)));
/// ```
pub fn qos(
    n: usize,
    trace: &[LeaderRecord],
    correct: &[ProcessId],
    crashes: &[(ProcessId, Instant)],
) -> QosReport {
    let stab = stabilization(trace, correct);
    let mut per_process_changes = vec![0usize; n];
    let mut seen_first = vec![false; n];
    for r in trace {
        let i = r.process.as_usize();
        if i < n {
            if seen_first[i] {
                per_process_changes[i] += 1;
            } else {
                seen_first[i] = true;
            }
        }
    }
    let total_changes = correct
        .iter()
        .map(|p| per_process_changes[p.as_usize()])
        .sum();

    let detections = crashes
        .iter()
        .map(|&(victim, crash_at)| {
            // For each correct process, find when it *last stopped* trusting
            // the victim after the crash. A process trusts the victim at
            // time t if its latest output at or before t names the victim.
            let mut cleared_at: Option<Instant> = None;
            for &p in correct {
                let mut trusted_at_crash = false;
                let mut last: Option<ProcessId> = None;
                let mut switched_away: Option<Instant> = None;
                for r in trace.iter().filter(|r| r.process == p) {
                    if r.at <= crash_at {
                        last = Some(r.leader);
                    } else {
                        if last == Some(victim) && r.leader != victim {
                            switched_away = Some(r.at);
                        }
                        last = Some(r.leader);
                        if last == Some(victim) {
                            // Re-trusted the dead process: clear the switch.
                            switched_away = None;
                        }
                    }
                    if r.at <= crash_at && r.leader == victim {
                        trusted_at_crash = true;
                    }
                }
                let p_cleared = match (trusted_at_crash || last == Some(victim), switched_away) {
                    (_, Some(t)) => Some(t),
                    (false, None) => None, // never trusted it after crash
                    (true, None) => None,  // still trusts it (no clearance!)
                };
                if let Some(t) = p_cleared {
                    cleared_at = Some(cleared_at.map_or(t, |c| c.max(t)));
                }
            }
            CrashDetection {
                victim,
                crash_at,
                cleared_at,
                detection: cleared_at.map_or(Duration::ZERO, |c| c.saturating_since(crash_at)),
            }
        })
        .collect();

    // Wrongful demotions of the eventual leader.
    let wrongful_demotions = match stab {
        Some(s) => {
            let mut count = 0;
            for &p in correct {
                let mut prev: Option<ProcessId> = None;
                for r in trace.iter().filter(|r| r.process == p) {
                    if prev == Some(s.leader) && r.leader != s.leader {
                        count += 1;
                    }
                    prev = Some(r.leader);
                }
            }
            count
        }
        None => 0,
    };

    QosReport {
        stabilization_at: stab.map(|s| s.at),
        total_changes,
        per_process_changes,
        detections,
        wrongful_demotions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u64) -> Instant {
        Instant::from_ticks(k)
    }
    fn p(k: u32) -> ProcessId {
        ProcessId(k)
    }
    fn rec(at: u64, process: u32, leader: u32) -> LeaderRecord {
        LeaderRecord {
            at: t(at),
            process: p(process),
            leader: p(leader),
        }
    }

    #[test]
    fn change_counting_excludes_initial_outputs() {
        let trace = vec![rec(0, 0, 0), rec(10, 0, 1), rec(0, 1, 0), rec(20, 1, 1)];
        let report = qos(2, &trace, &[p(0), p(1)], &[]);
        assert_eq!(report.per_process_changes, vec![1, 1]);
        assert_eq!(report.total_changes, 2);
        assert_eq!(report.stabilization_at, Some(t(20)));
    }

    #[test]
    fn detection_time_is_last_clearance_after_crash() {
        // p2 crashes at 50. p0 clears at 70, p1 clears at 90 → detection 40.
        let trace = vec![rec(0, 0, 2), rec(0, 1, 2), rec(70, 0, 0), rec(90, 1, 0)];
        let report = qos(3, &trace, &[p(0), p(1)], &[(p(2), t(50))]);
        let d = &report.detections[0];
        assert_eq!(d.victim, p(2));
        assert_eq!(d.cleared_at, Some(t(90)));
        assert_eq!(d.detection, Duration::from_ticks(40));
    }

    #[test]
    fn retrusting_a_dead_process_extends_detection() {
        // p0 leaves the victim at 60 but returns at 70, leaving finally at 95.
        let trace = vec![rec(0, 0, 2), rec(60, 0, 0), rec(70, 0, 2), rec(95, 0, 0)];
        let report = qos(3, &trace, &[p(0)], &[(p(2), t(50))]);
        assert_eq!(report.detections[0].cleared_at, Some(t(95)));
        assert_eq!(report.detections[0].detection, Duration::from_ticks(45));
    }

    #[test]
    fn never_trusting_the_victim_means_zero_detection() {
        let trace = vec![rec(0, 0, 0), rec(0, 1, 0)];
        let report = qos(3, &trace, &[p(0), p(1)], &[(p(2), t(50))]);
        assert_eq!(report.detections[0].cleared_at, None);
        assert_eq!(report.detections[0].detection, Duration::ZERO);
    }

    #[test]
    fn wrongful_demotions_count_departures_from_final_leader() {
        // Final leader is p1; p0 trusts it, leaves, returns, stays.
        let trace = vec![rec(0, 0, 1), rec(10, 0, 2), rec(20, 0, 1), rec(0, 1, 1)];
        let report = qos(3, &trace, &[p(0), p(1)], &[]);
        assert_eq!(report.wrongful_demotions, 1);
        assert_eq!(report.stabilization_at, Some(t(20)));
    }

    #[test]
    fn no_stabilization_reports_none() {
        let trace = vec![rec(0, 0, 0), rec(0, 1, 1)];
        let report = qos(2, &trace, &[p(0), p(1)], &[]);
        assert_eq!(report.stabilization_at, None);
        assert_eq!(report.wrongful_demotions, 0);
    }
}
