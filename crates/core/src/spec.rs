//! Trace checkers for the paper's two theorems.
//!
//! Both theorems are "eventually forever" properties, which a finite run can
//! only certify up to its horizon: the checkers find the *stabilization
//! point* — the last time the property was violated — and the caller decides
//! whether that point falls early enough before the horizon to count as
//! converged (experiments use a comfortable margin, e.g. the last 20 % of a
//! long run).
//!
//! * **Ω** ([`stabilization`]): from some time on, every correct process
//!   trusts the same correct process.
//! * **Communication efficiency**: from some time on, only one process sends
//!   messages — checked against the runtime's send log (see
//!   `netsim::Stats::quiescence_time`), not against traces here, because only
//!   the runtime sees sends.

use lls_primitives::{Instant, ProcessId};
use serde::{Deserialize, Serialize};

/// One Ω output: at time `at`, `process` started trusting `leader`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaderRecord {
    /// When the change happened.
    pub at: Instant,
    /// The process whose output changed.
    pub process: ProcessId,
    /// The newly trusted process.
    pub leader: ProcessId,
}

/// The verdict of the Ω checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stabilization {
    /// The common final leader.
    pub leader: ProcessId,
    /// The time of the last leader change at any correct process — from here
    /// on, the Ω property held for the rest of the run.
    pub at: Instant,
}

/// Checks the Ω property over a finite trace: did all `correct` processes end
/// the run trusting the same *correct* process?
///
/// Returns the stabilization point if so, `None` if the final outputs
/// disagree, the common leader is faulty, or some correct process never
/// produced an output.
///
/// # Example
///
/// ```
/// use lls_primitives::{Instant, ProcessId};
/// use omega::spec::{stabilization, LeaderRecord};
///
/// let t = |k| Instant::from_ticks(k);
/// let p = |k| ProcessId(k);
/// let trace = vec![
///     LeaderRecord { at: t(0), process: p(0), leader: p(0) },
///     LeaderRecord { at: t(0), process: p(1), leader: p(0) },
///     LeaderRecord { at: t(40), process: p(0), leader: p(1) },
///     LeaderRecord { at: t(55), process: p(1), leader: p(1) },
/// ];
/// let s = stabilization(&trace, &[p(0), p(1)]).expect("converged");
/// assert_eq!(s.leader, p(1));
/// assert_eq!(s.at, t(55));
/// ```
pub fn stabilization(trace: &[LeaderRecord], correct: &[ProcessId]) -> Option<Stabilization> {
    let mut final_leader: Vec<Option<(Instant, ProcessId)>> = Vec::new();
    for &p in correct {
        let last = trace
            .iter()
            .filter(|r| r.process == p)
            .map(|r| (r.at, r.leader))
            .next_back()?;
        final_leader.push(Some(last));
    }
    let (_, leader) = final_leader.first()?.as_ref().copied()?;
    if !correct.contains(&leader) {
        return None;
    }
    let mut stable_at = Instant::ZERO;
    for entry in &final_leader {
        let (at, l) = entry.expect("filled above");
        if l != leader {
            return None;
        }
        stable_at = stable_at.max(at);
    }
    Some(Stabilization {
        leader,
        at: stable_at,
    })
}

/// Returns `true` iff the trace satisfies Ω by the end of the run *and*
/// stabilized no later than `deadline` (giving the "forever" part a
/// meaningful observation window).
pub fn omega_holds_by(trace: &[LeaderRecord], correct: &[ProcessId], deadline: Instant) -> bool {
    stabilization(trace, correct).is_some_and(|s| s.at <= deadline)
}

/// Number of leader changes observed at `p` (excluding the initial output).
pub fn leader_changes(trace: &[LeaderRecord], p: ProcessId) -> usize {
    trace
        .iter()
        .filter(|r| r.process == p)
        .count()
        .saturating_sub(1)
}

/// Splits a run's duration into the *last* `tail_percent` percent and returns
/// the cut point — the conventional deadline passed to [`omega_holds_by`].
///
/// # Panics
///
/// Panics if `tail_percent` is not in `(0, 100)`.
pub fn tail_cut(horizon: Instant, tail_percent: u64) -> Instant {
    assert!(
        tail_percent > 0 && tail_percent < 100,
        "tail_percent must be in (0, 100), got {tail_percent}"
    );
    Instant::from_ticks(horizon.ticks() / 100 * (100 - tail_percent))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u64) -> Instant {
        Instant::from_ticks(k)
    }
    fn p(k: u32) -> ProcessId {
        ProcessId(k)
    }
    fn rec(at: u64, process: u32, leader: u32) -> LeaderRecord {
        LeaderRecord {
            at: t(at),
            process: p(process),
            leader: p(leader),
        }
    }

    #[test]
    fn agreement_on_correct_leader_stabilizes() {
        let trace = vec![
            rec(0, 0, 0),
            rec(0, 1, 0),
            rec(10, 1, 1),
            rec(20, 0, 1),
            rec(30, 1, 1),
        ];
        let s = stabilization(&trace, &[p(0), p(1)]).unwrap();
        assert_eq!(s.leader, p(1));
        assert_eq!(s.at, t(30));
    }

    #[test]
    fn disagreement_fails() {
        let trace = vec![rec(0, 0, 0), rec(0, 1, 1)];
        assert!(stabilization(&trace, &[p(0), p(1)]).is_none());
    }

    #[test]
    fn faulty_final_leader_fails() {
        // Both trust p2, but p2 is not in the correct set.
        let trace = vec![rec(0, 0, 2), rec(0, 1, 2)];
        assert!(stabilization(&trace, &[p(0), p(1)]).is_none());
    }

    #[test]
    fn silent_correct_process_fails() {
        let trace = vec![rec(0, 0, 0)];
        assert!(stabilization(&trace, &[p(0), p(1)]).is_none());
    }

    #[test]
    fn faulty_processes_are_ignored() {
        // p1 (faulty) disagrees; only p0 and p2 must agree.
        let trace = vec![rec(0, 0, 2), rec(5, 1, 1), rec(9, 2, 2)];
        let s = stabilization(&trace, &[p(0), p(2)]).unwrap();
        assert_eq!(s.leader, p(2));
        assert_eq!(s.at, t(9));
    }

    #[test]
    fn omega_holds_by_enforces_deadline() {
        let trace = vec![rec(0, 0, 0), rec(0, 1, 0), rec(90, 1, 0)];
        assert!(omega_holds_by(&trace, &[p(0), p(1)], t(95)));
        assert!(!omega_holds_by(&trace, &[p(0), p(1)], t(80)));
    }

    #[test]
    fn leader_change_counting() {
        let trace = vec![rec(0, 0, 0), rec(10, 0, 1), rec(20, 0, 0), rec(5, 1, 0)];
        assert_eq!(leader_changes(&trace, p(0)), 2);
        assert_eq!(leader_changes(&trace, p(1)), 0);
        assert_eq!(leader_changes(&trace, p(2)), 0);
    }

    #[test]
    fn tail_cut_math() {
        assert_eq!(tail_cut(t(1000), 20), t(800));
        assert_eq!(tail_cut(t(1000), 50), t(500));
    }

    #[test]
    #[should_panic(expected = "tail_percent")]
    fn tail_cut_rejects_degenerate() {
        let _ = tail_cut(t(100), 100);
    }
}
