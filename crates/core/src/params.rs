//! Tuning parameters shared by the Ω algorithms.

use lls_primitives::Duration;
use serde::{Deserialize, Serialize};

/// How a process grows its timeout on a candidate after a premature
/// suspicion.
///
/// The paper's mechanism requires only that timeouts grow without bound over
/// suspicions, so that a ♦-timely leader is suspected finitely often; the
/// exact policy is an implementation degree of freedom, exercised by the
/// ablation experiment E9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeoutPolicy {
    /// `timeout += step` on every suspicion (the pseudocode idiom
    /// "Timeout\[leader\] := Timeout\[leader\] + 1", generalized).
    Additive {
        /// Increment per suspicion.
        step: Duration,
    },
    /// `timeout := timeout * num / den` (with `num > den`), rounded up.
    Multiplicative {
        /// Numerator of the growth factor.
        num: u32,
        /// Denominator of the growth factor.
        den: u32,
    },
    /// Never grow (deliberately wrong: violates the paper's requirement;
    /// used as an ablation arm to show why adaptation matters).
    Frozen,
}

impl TimeoutPolicy {
    /// Applies the policy to `current`.
    pub fn bump(&self, current: Duration) -> Duration {
        match *self {
            TimeoutPolicy::Additive { step } => current.saturating_add(step),
            TimeoutPolicy::Multiplicative { num, den } => {
                let t = current.ticks().max(1);
                let grown = t.saturating_mul(num as u64).div_ceil(den as u64);
                Duration::from_ticks(grown.max(t + 1))
            }
            TimeoutPolicy::Frozen => current,
        }
    }
}

/// Throughput parameters of a leader-driven replicated log: how many client
/// commands one decided slot may carry, and how many slots may be in flight
/// (proposed but not yet chosen) at once under a stable leader.
///
/// Neither knob touches safety: a batch is one atomic log entry chosen by
/// the ordinary ballot/quorum rules, and pipelined slots are just several
/// such entries awaiting their quorums concurrently — exactly the state a
/// slow single-slot leader passes through anyway. The paper's claims are
/// per-slot; batching only changes how many commands ride in each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchParams {
    /// Maximum client commands coalesced into one log entry. 1 disables
    /// batching (every command gets its own slot, the pre-batching wire
    /// shape).
    pub max_batch: usize,
    /// Maximum slots proposed but not yet chosen at once. Commands arriving
    /// while the pipeline is full queue up and coalesce into batches.
    pub pipeline_depth: usize,
}

impl BatchParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: both knobs
    /// must be at least 1 (a zero batch or zero-depth pipeline can never
    /// propose anything).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".to_owned());
        }
        if self.pipeline_depth == 0 {
            return Err("pipeline_depth must be at least 1".to_owned());
        }
        Ok(())
    }
}

impl Default for BatchParams {
    /// Batching off (`max_batch = 1`), pipeline deep enough (32) that the
    /// pre-batching "propose immediately" behaviour is preserved for any
    /// realistic in-flight window.
    fn default() -> Self {
        BatchParams {
            max_batch: 1,
            pipeline_depth: 32,
        }
    }
}

/// Parameters of an Ω instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OmegaParams {
    /// Heartbeat period η: how often a self-believed leader sends `ALIVE`.
    pub eta: Duration,
    /// Initial timeout on every candidate leader.
    pub initial_timeout: Duration,
    /// Timeout growth policy.
    pub timeout_policy: TimeoutPolicy,
    /// Deduplicate accusations per counter value (phase). Disabling this is
    /// an ablation arm (E9): duplicated or stale accusations then inflate
    /// counters and churn leadership.
    pub dedup_accusations: bool,
}

impl OmegaParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: η must be
    /// positive and the initial timeout at least η (otherwise a leader is
    /// suspected before it can possibly have heartbeat).
    pub fn validate(&self) -> Result<(), String> {
        if self.eta.ticks() == 0 {
            return Err("eta must be positive".to_owned());
        }
        if self.initial_timeout < self.eta {
            return Err(format!(
                "initial_timeout ({}) must be at least eta ({})",
                self.initial_timeout, self.eta
            ));
        }
        Ok(())
    }
}

impl Default for OmegaParams {
    /// η = 10 ticks, initial timeout 30 ticks, additive growth of η/2,
    /// deduplication on.
    fn default() -> Self {
        OmegaParams {
            eta: Duration::from_ticks(10),
            initial_timeout: Duration::from_ticks(30),
            timeout_policy: TimeoutPolicy::Additive {
                step: Duration::from_ticks(5),
            },
            dedup_accusations: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_bump_adds_step() {
        let p = TimeoutPolicy::Additive {
            step: Duration::from_ticks(5),
        };
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(15));
    }

    #[test]
    fn multiplicative_bump_strictly_grows() {
        let p = TimeoutPolicy::Multiplicative { num: 3, den: 2 };
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(15));
        // Even at 1 tick, growth is strict.
        assert!(p.bump(Duration::from_ticks(1)) > Duration::from_ticks(1));
    }

    #[test]
    fn frozen_never_grows() {
        let p = TimeoutPolicy::Frozen;
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(10));
    }

    #[test]
    fn default_params_validate() {
        assert!(OmegaParams::default().validate().is_ok());
    }

    #[test]
    fn default_batch_params_disable_batching() {
        let b = BatchParams::default();
        assert!(b.validate().is_ok());
        assert_eq!(b.max_batch, 1, "batching must be opt-in");
    }

    #[test]
    fn zero_batch_knobs_are_rejected() {
        let b = BatchParams {
            max_batch: 0,
            ..BatchParams::default()
        };
        assert!(b.validate().unwrap_err().contains("max_batch"));
        let b = BatchParams {
            pipeline_depth: 0,
            ..BatchParams::default()
        };
        assert!(b.validate().unwrap_err().contains("pipeline_depth"));
    }

    #[test]
    fn bad_params_are_rejected() {
        let p = OmegaParams {
            eta: Duration::ZERO,
            ..OmegaParams::default()
        };
        assert!(p.validate().is_err());
        let p = OmegaParams {
            initial_timeout: Duration::from_ticks(1),
            ..OmegaParams::default()
        };
        assert!(p.validate().unwrap_err().contains("initial_timeout"));
    }
}
