//! Tuning parameters shared by the Ω algorithms.

use lls_primitives::Duration;
use serde::{Deserialize, Serialize};

/// How a process grows its timeout on a candidate after a premature
/// suspicion.
///
/// The paper's mechanism requires only that timeouts grow without bound over
/// suspicions, so that a ♦-timely leader is suspected finitely often; the
/// exact policy is an implementation degree of freedom, exercised by the
/// ablation experiment E9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeoutPolicy {
    /// `timeout += step` on every suspicion (the pseudocode idiom
    /// "Timeout\[leader\] := Timeout\[leader\] + 1", generalized).
    Additive {
        /// Increment per suspicion.
        step: Duration,
    },
    /// `timeout := timeout * num / den` (with `num > den`), rounded up.
    Multiplicative {
        /// Numerator of the growth factor.
        num: u32,
        /// Denominator of the growth factor.
        den: u32,
    },
    /// Never grow (deliberately wrong: violates the paper's requirement;
    /// used as an ablation arm to show why adaptation matters).
    Frozen,
}

impl TimeoutPolicy {
    /// Applies the policy to `current`.
    pub fn bump(&self, current: Duration) -> Duration {
        match *self {
            TimeoutPolicy::Additive { step } => current.saturating_add(step),
            TimeoutPolicy::Multiplicative { num, den } => {
                let t = current.ticks().max(1);
                let grown = t.saturating_mul(num as u64).div_ceil(den as u64);
                Duration::from_ticks(grown.max(t + 1))
            }
            TimeoutPolicy::Frozen => current,
        }
    }
}

/// Parameters of an Ω instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OmegaParams {
    /// Heartbeat period η: how often a self-believed leader sends `ALIVE`.
    pub eta: Duration,
    /// Initial timeout on every candidate leader.
    pub initial_timeout: Duration,
    /// Timeout growth policy.
    pub timeout_policy: TimeoutPolicy,
    /// Deduplicate accusations per counter value (phase). Disabling this is
    /// an ablation arm (E9): duplicated or stale accusations then inflate
    /// counters and churn leadership.
    pub dedup_accusations: bool,
}

impl OmegaParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: η must be
    /// positive and the initial timeout at least η (otherwise a leader is
    /// suspected before it can possibly have heartbeat).
    pub fn validate(&self) -> Result<(), String> {
        if self.eta.ticks() == 0 {
            return Err("eta must be positive".to_owned());
        }
        if self.initial_timeout < self.eta {
            return Err(format!(
                "initial_timeout ({}) must be at least eta ({})",
                self.initial_timeout, self.eta
            ));
        }
        Ok(())
    }
}

impl Default for OmegaParams {
    /// η = 10 ticks, initial timeout 30 ticks, additive growth of η/2,
    /// deduplication on.
    fn default() -> Self {
        OmegaParams {
            eta: Duration::from_ticks(10),
            initial_timeout: Duration::from_ticks(30),
            timeout_policy: TimeoutPolicy::Additive {
                step: Duration::from_ticks(5),
            },
            dedup_accusations: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_bump_adds_step() {
        let p = TimeoutPolicy::Additive {
            step: Duration::from_ticks(5),
        };
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(15));
    }

    #[test]
    fn multiplicative_bump_strictly_grows() {
        let p = TimeoutPolicy::Multiplicative { num: 3, den: 2 };
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(15));
        // Even at 1 tick, growth is strict.
        assert!(p.bump(Duration::from_ticks(1)) > Duration::from_ticks(1));
    }

    #[test]
    fn frozen_never_grows() {
        let p = TimeoutPolicy::Frozen;
        assert_eq!(p.bump(Duration::from_ticks(10)), Duration::from_ticks(10));
    }

    #[test]
    fn default_params_validate() {
        assert!(OmegaParams::default().validate().is_ok());
    }

    #[test]
    fn bad_params_are_rejected() {
        let p = OmegaParams {
            eta: Duration::ZERO,
            ..OmegaParams::default()
        };
        assert!(p.validate().is_err());
        let p = OmegaParams {
            initial_timeout: Duration::from_ticks(1),
            ..OmegaParams::default()
        };
        assert!(p.validate().unwrap_err().contains("initial_timeout"));
    }
}
