//! The communication-efficient Ω algorithm (the paper's main contribution).
//!
//! # Mechanism
//!
//! Every process `p` keeps a [`RankTable`]: for each candidate `q`, an
//! *authoritative* accusation counter (the largest value heard from `q`
//! itself) plus a *provisional* surcharge of unanswered local suspicions.
//! `p` trusts the candidate with the minimum *(counter, id)* — initially
//! `p0`, since all counters start at zero.
//!
//! * **Leader behaviour.** While `p` trusts itself it broadcasts
//!   `ALIVE(counter)` every η. Upon receiving `ACCUSE(k)` with `k` equal to
//!   its current counter, it increments the counter (once per phase `k`; the
//!   phase check makes retransmitted or stale accusations idempotent) and
//!   re-evaluates whether it still deserves leadership.
//! * **Follower behaviour.** While `p` trusts `q ≠ p` it arms one timer with
//!   `q`'s current timeout. On expiry, `p` grows `q`'s timeout (so premature
//!   suspicions of a ♦-timely leader die out), records a provisional
//!   suspicion against `q`, sends `ACCUSE(auth(q))` *to `q` alone*, and
//!   re-evaluates its choice. On `ALIVE(c)` from `q`, `p` adopts `c`, clears
//!   `q`'s surcharge and re-arms the timer.
//!
//! Followers send nothing except accusations, and every correct process's
//! accusations are eventually silenced (its final leader stops missing
//! deadlines), so eventually *only the leader sends* — communication
//! efficiency. Conversely a crashed or chronically untimely leader
//! accumulates counter growth until the minimum *(counter, id)* moves to a
//! candidate that stays timely; the ♦-source guarantees at least one such
//! candidate exists, so the minimum stabilizes and all correct processes
//! lock onto the same leader — Ω.
//!
//! # Reconstruction note
//!
//! The exact PODC'04 pseudocode was not available to this reproduction (see
//! `DESIGN.md`); this module reconstructs the algorithm from the mechanism
//! the paper describes: min-(counter, id) leadership, leader-only ALIVE
//! traffic, accusations addressed to the leader, per-phase idempotent
//! counting, and unboundedly growing timeouts. Both theorems are enforced on
//! every run by the [`crate::spec`] checkers across the test suite and the
//! experiment harness.

use lls_primitives::{Ctx, Duration, Env, ProcessId, Sm, TimerId};

use crate::msg::OmegaMsg;
use crate::params::OmegaParams;
use crate::rank::RankTable;

/// Timer used by the always-on heartbeat task.
pub const HEARTBEAT_TIMER: TimerId = TimerId(0);
/// Timer used to monitor the current (non-self) leader.
pub const LEADER_CHECK_TIMER: TimerId = TimerId(1);

/// The communication-efficient Ω state machine.
///
/// See the module-level documentation at the top of
/// `crates/core/src/comm_efficient.rs` for the full mechanism, and the
/// [crate docs](crate) for a runnable example.
#[derive(Debug, Clone)]
pub struct CommEffOmega {
    me: ProcessId,
    params: OmegaParams,
    table: RankTable,
    timeouts: Vec<Duration>,
    leader: ProcessId,
    /// Diagnostics: how many accusations this process has sent.
    accusations_sent: u64,
    /// Diagnostics: how many valid accusations this process has absorbed.
    accusations_received: u64,
}

impl CommEffOmega {
    /// Creates the state machine for the process described by `env`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn new(env: &Env, params: OmegaParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid OmegaParams: {e}");
        }
        let n = env.n();
        CommEffOmega {
            me: env.id(),
            params,
            table: RankTable::new(n),
            timeouts: vec![params.initial_timeout; n],
            leader: ProcessId(0),
            accusations_sent: 0,
            accusations_received: 0,
        }
    }

    /// The process this instance currently trusts (the Ω output).
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// Returns `true` if this process currently trusts itself.
    pub fn is_leader(&self) -> bool {
        self.leader == self.me
    }

    /// This process's own accusation counter.
    pub fn own_counter(&self) -> u64 {
        self.table.auth(self.me)
    }

    /// The effective rank table (for instrumentation).
    pub fn table(&self) -> &RankTable {
        &self.table
    }

    /// Current timeout on candidate `q`.
    pub fn timeout_of(&self, q: ProcessId) -> Duration {
        self.timeouts[q.as_usize()]
    }

    /// Accusations sent so far (diagnostics).
    pub fn accusations_sent(&self) -> u64 {
        self.accusations_sent
    }

    /// Valid accusations absorbed so far (diagnostics).
    pub fn accusations_received(&self) -> u64 {
        self.accusations_received
    }

    /// Parameters in force.
    pub fn params(&self) -> &OmegaParams {
        &self.params
    }

    /// Re-evaluates the minimum-(counter, id) choice; on a change, emits the
    /// new leader as output and (re)arms or cancels the monitoring timer.
    fn recompute_leader(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>) {
        let best = self.table.best();
        if best != self.leader {
            self.leader = best;
            ctx.output(best);
            if best == self.me {
                ctx.cancel_timer(LEADER_CHECK_TIMER);
            } else {
                ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[best.as_usize()]);
            }
        }
    }
}

impl Sm for CommEffOmega {
    type Msg = OmegaMsg;
    type Output = ProcessId;
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>) {
        // Publish the initial choice so traces start with a defined value.
        ctx.output(self.leader);
        ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
        if self.leader != self.me {
            ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[self.leader.as_usize()]);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, OmegaMsg, ProcessId>,
        from: ProcessId,
        msg: OmegaMsg,
    ) {
        match msg {
            OmegaMsg::Alive { counter } => {
                self.table.record_alive(from, counter);
                if from == self.leader {
                    // Fresh evidence about the incumbent: re-arm its deadline.
                    ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[from.as_usize()]);
                }
                self.recompute_leader(ctx);
            }
            OmegaMsg::Accuse { counter } => {
                let valid = !self.params.dedup_accusations || counter == self.table.auth(self.me);
                if valid {
                    self.accusations_received += 1;
                    self.table.bump_auth(self.me);
                    self.recompute_leader(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>, timer: TimerId) {
        match timer {
            HEARTBEAT_TIMER => {
                if self.leader == self.me {
                    ctx.broadcast(OmegaMsg::Alive {
                        counter: self.table.auth(self.me),
                    });
                }
                ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
            }
            LEADER_CHECK_TIMER => {
                let suspect = self.leader;
                debug_assert_ne!(suspect, self.me, "self-leader must not monitor itself");
                // Grow the timeout first: if the suspicion is premature, the
                // next one comes later, so suspicions of a ♦-timely leader
                // are finite.
                let t = &mut self.timeouts[suspect.as_usize()];
                *t = self.params.timeout_policy.bump(*t);
                self.table.record_suspicion(suspect);
                self.accusations_sent += 1;
                ctx.send(
                    suspect,
                    OmegaMsg::Accuse {
                        counter: self.table.auth(suspect),
                    },
                );
                self.recompute_leader(ctx);
                if self.leader == suspect {
                    // Still the best candidate despite the suspicion: keep
                    // monitoring it under the grown timeout.
                    ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[suspect.as_usize()]);
                }
            }
            other => debug_assert!(false, "unexpected timer {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant, Send, TimerCmd};

    /// Drives a single state machine by hand and collects effects.
    struct Harness {
        env: Env,
        sm: CommEffOmega,
        fx: Effects<OmegaMsg, ProcessId>,
        now: Instant,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = CommEffOmega::new(&env, OmegaParams::default());
            Harness {
                env,
                sm,
                fx: Effects::new(),
                now: Instant::ZERO,
            }
        }

        fn start(&mut self) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: OmegaMsg) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn fire(&mut self, timer: TimerId) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_timer(&mut ctx, timer);
            self.fx.take()
        }
    }

    #[test]
    fn initial_leader_is_p0_everywhere() {
        for me in 0..3 {
            let mut h = Harness::new(me, 3);
            let fx = h.start();
            assert_eq!(h.sm.leader(), ProcessId(0));
            assert_eq!(fx.outputs, vec![ProcessId(0)]);
            // p0 trusts itself: no monitor timer; others arm one.
            let has_check = fx
                .timers
                .iter()
                .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == LEADER_CHECK_TIMER));
            assert_eq!(has_check, me != 0);
        }
    }

    #[test]
    fn self_leader_heartbeats_follower_stays_silent() {
        let mut h0 = Harness::new(0, 3);
        h0.start();
        let fx = h0.fire(HEARTBEAT_TIMER);
        let dests: Vec<_> = fx.sends.iter().map(|s| s.to).collect();
        assert_eq!(dests, vec![ProcessId(1), ProcessId(2)]);
        assert!(fx
            .sends
            .iter()
            .all(|s| s.msg == OmegaMsg::Alive { counter: 0 }));

        let mut h1 = Harness::new(1, 3);
        h1.start();
        let fx = h1.fire(HEARTBEAT_TIMER);
        assert!(fx.sends.is_empty(), "follower heartbeat must send nothing");
    }

    #[test]
    fn timeout_sends_accusation_to_leader_only() {
        let mut h = Harness::new(2, 3);
        h.start();
        let fx = h.fire(LEADER_CHECK_TIMER);
        assert_eq!(
            fx.sends,
            vec![Send {
                to: ProcessId(0),
                msg: OmegaMsg::Accuse { counter: 0 }
            }]
        );
        // One suspicion demotes p0 below p1 ((1, p0) > (0, p1)).
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
        assert_eq!(h.sm.accusations_sent(), 1);
    }

    #[test]
    fn timeout_grows_on_each_suspicion() {
        let mut h = Harness::new(1, 2);
        h.start();
        let t0 = h.sm.timeout_of(ProcessId(0));
        h.fire(LEADER_CHECK_TIMER);
        let t1 = h.sm.timeout_of(ProcessId(0));
        assert!(t1 > t0, "timeout must grow on suspicion: {t0} -> {t1}");
    }

    #[test]
    fn n2_suspicion_elects_self_and_alive_restores_incumbent() {
        // In a 2-process system, suspecting p0 leaves p1 as its own leader.
        let mut h = Harness::new(1, 2);
        h.start();
        let fx = h.fire(LEADER_CHECK_TIMER);
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert!(h.sm.is_leader());
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Cancel { timer } if *timer == LEADER_CHECK_TIMER)));
        // p0 speaks again: surcharge clears, p0 outranks p1.
        let fx = h.deliver(0, OmegaMsg::Alive { counter: 0 });
        assert_eq!(h.sm.leader(), ProcessId(0));
        assert_eq!(fx.outputs, vec![ProcessId(0)]);
    }

    #[test]
    fn valid_accusation_bumps_counter_and_demotes() {
        let mut h = Harness::new(0, 2);
        h.start();
        assert!(h.sm.is_leader());
        let fx = h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // (1, p0) vs (0, p1): p1 now better.
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == LEADER_CHECK_TIMER)));
        assert_eq!(h.sm.accusations_received(), 1);
    }

    #[test]
    fn stale_and_duplicate_accusations_are_ignored() {
        let mut h = Harness::new(0, 2);
        h.start();
        h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // A retransmitted phase-0 accusation must not double-count.
        h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // A future-phase accusation is equally invalid.
        h.deliver(1, OmegaMsg::Accuse { counter: 7 });
        assert_eq!(h.sm.own_counter(), 1);
        // The current phase counts.
        h.deliver(1, OmegaMsg::Accuse { counter: 1 });
        assert_eq!(h.sm.own_counter(), 2);
    }

    #[test]
    fn dedup_off_counts_every_accusation() {
        let env = Env::new(ProcessId(0), 2);
        let params = OmegaParams {
            dedup_accusations: false,
            ..OmegaParams::default()
        };
        let mut sm = CommEffOmega::new(&env, params);
        let mut fx = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        for _ in 0..3 {
            sm.on_message(
                &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                ProcessId(1),
                OmegaMsg::Accuse { counter: 0 },
            );
            fx.take();
        }
        assert_eq!(sm.own_counter(), 3);
    }

    #[test]
    fn alive_with_larger_counter_demotes_incumbent() {
        let mut h = Harness::new(2, 3);
        h.start();
        assert_eq!(h.sm.leader(), ProcessId(0));
        // p0 announces a battered counter; p1 (counter 0) becomes best,
        // even though p1 has not spoken — rank is (0, p1) vs (5, p0) vs (0, p2)…
        // p1 < p2 by id.
        let fx = h.deliver(0, OmegaMsg::Alive { counter: 5 });
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
    }

    #[test]
    fn stale_alive_does_not_regress_counter() {
        let mut h = Harness::new(1, 2);
        h.start();
        h.deliver(0, OmegaMsg::Alive { counter: 4 });
        assert_eq!(h.sm.table().auth(ProcessId(0)), 4);
        h.deliver(0, OmegaMsg::Alive { counter: 2 });
        assert_eq!(h.sm.table().auth(ProcessId(0)), 4);
    }

    #[test]
    fn heartbeat_timer_always_rearms() {
        let mut h = Harness::new(1, 2);
        h.start();
        let fx = h.fire(HEARTBEAT_TIMER);
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == HEARTBEAT_TIMER)));
    }

    #[test]
    #[should_panic(expected = "invalid OmegaParams")]
    fn invalid_params_rejected_at_construction() {
        let env = Env::new(ProcessId(0), 2);
        let params = OmegaParams {
            eta: Duration::ZERO,
            ..OmegaParams::default()
        };
        let _ = CommEffOmega::new(&env, params);
    }
}
