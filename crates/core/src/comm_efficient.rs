//! The communication-efficient Ω algorithm (the paper's main contribution).
//!
//! # Mechanism
//!
//! Every process `p` keeps a [`RankTable`]: for each candidate `q`, an
//! *authoritative* accusation counter (the largest value heard from `q`
//! itself) plus a *provisional* surcharge of unanswered local suspicions.
//! `p` trusts the candidate with the minimum *(counter, id)* — initially
//! `p0`, since all counters start at zero.
//!
//! * **Leader behaviour.** While `p` trusts itself it broadcasts
//!   `ALIVE(counter)` every η. Upon receiving `ACCUSE(k)` with `k` equal to
//!   its current counter, it increments the counter (once per phase `k`; the
//!   phase check makes retransmitted or stale accusations idempotent) and
//!   re-evaluates whether it still deserves leadership.
//! * **Follower behaviour.** While `p` trusts `q ≠ p` it arms one timer with
//!   `q`'s current timeout. On expiry, `p` grows `q`'s timeout (so premature
//!   suspicions of a ♦-timely leader die out), records a provisional
//!   suspicion against `q`, sends `ACCUSE(auth(q))` *to `q` alone*, and
//!   re-evaluates its choice. On `ALIVE(c)` from `q`, `p` adopts `c`, clears
//!   `q`'s surcharge and re-arms the timer.
//!
//! Followers send nothing except accusations, and every correct process's
//! accusations are eventually silenced (its final leader stops missing
//! deadlines), so eventually *only the leader sends* — communication
//! efficiency. Conversely a crashed or chronically untimely leader
//! accumulates counter growth until the minimum *(counter, id)* moves to a
//! candidate that stays timely; the ♦-source guarantees at least one such
//! candidate exists, so the minimum stabilizes and all correct processes
//! lock onto the same leader — Ω.
//!
//! # Reconstruction note
//!
//! The exact PODC'04 pseudocode was not available to this reproduction (see
//! `DESIGN.md`); this module reconstructs the algorithm from the mechanism
//! the paper describes: min-(counter, id) leadership, leader-only ALIVE
//! traffic, accusations addressed to the leader, per-phase idempotent
//! counting, and unboundedly growing timeouts. Both theorems are enforced on
//! every run by the [`crate::spec`] checkers across the test suite and the
//! experiment harness.

use lls_obs::{NoopProbe, Probe, ProbeEvent};
use lls_primitives::{
    Ctx, Duration, Env, Instant, ProcessId, Sm, StorageError, StorageHandle, TimerId,
};

use crate::msg::OmegaMsg;
use crate::params::OmegaParams;
use crate::rank::RankTable;

/// Timer used by the always-on heartbeat task.
pub const HEARTBEAT_TIMER: TimerId = TimerId(0);
/// Timer used to monitor the current (non-self) leader.
pub const LEADER_CHECK_TIMER: TimerId = TimerId(1);

/// The communication-efficient Ω state machine.
///
/// See the module-level documentation at the top of
/// `crates/core/src/comm_efficient.rs` for the full mechanism, and the
/// [crate docs](crate) for a runnable example.
///
/// The `P` parameter is an observability [`Probe`]; the default
/// [`NoopProbe`] monomorphizes every emission away, so uninstrumented
/// machines pay nothing.
#[derive(Debug, Clone)]
pub struct CommEffOmega<P: Probe = NoopProbe> {
    me: ProcessId,
    params: OmegaParams,
    table: RankTable,
    timeouts: Vec<Duration>,
    leader: ProcessId,
    /// Diagnostics: how many accusations this process has sent.
    accusations_sent: u64,
    /// Diagnostics: how many valid accusations this process has absorbed.
    accusations_received: u64,
    /// Durable log for the crash-critical state (the own accusation
    /// counter); `None` runs crash-stop, with no persistence.
    storage: Option<StorageHandle>,
    /// Recovering rejoin mode: set on a restart from a non-empty log,
    /// cleared by the first message received afterwards. While set, local
    /// suspicions are recorded but no `ACCUSE` is *sent* — a freshly
    /// restarted process has no evidence about anyone's timeliness (its own
    /// links may still be reconnecting), so it must not demote incumbents.
    recovering: bool,
    /// Observability sink; `NoopProbe` by default (zero cost).
    probe: P,
}

impl CommEffOmega {
    /// Creates the state machine for the process described by `env`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn new(env: &Env, params: OmegaParams) -> Self {
        CommEffOmega::new_with_probe(env, params, NoopProbe)
    }

    /// Creates the state machine with a durable log, recovering persisted
    /// state if the log is non-empty.
    ///
    /// # What is persisted, and why it is safe
    ///
    /// The only crash-critical field is the **own accusation counter**
    /// `auth(me)` — which *is* the phase: an accusation is counted only when
    /// its counter equals `auth(me)`, so persisting the counter also
    /// persists the phase. It must never regress: peers adopt the largest
    /// counter heard from us ([`RankTable::record_alive`]), so an amnesiac
    /// restart at a smaller value would (a) let a battered candidate
    /// re-claim leadership it already lost, breaking eventual agreement, and
    /// (b) desynchronise the phase so future accusations never match and the
    /// counter freezes while peers' view of it does not.
    ///
    /// # The recovering rejoin mode
    ///
    /// Recovery happens here, synchronously, *before* [`Sm::on_start`] — the
    /// machine is never observable in a half-recovered state; that is the
    /// "stay quiet until state is reloaded" rule. Additionally, a restart
    /// from a non-empty log rejoins with the counter **incremented once**
    /// (the crash-recovery literature's incarnation bump): an unstable
    /// process ranks itself below any equally-accused stable process, so it
    /// rejoins as a *follower*, defers to whoever was elected while it was
    /// down, and cannot yo-yo leadership by power-cycling. A process that
    /// crashes finitely often still has a finite counter, so Ω's
    /// stabilisation argument is unaffected.
    ///
    /// Finally, a restarted process **does not send accusations** until it
    /// has received its first post-recovery message. Right after a restart
    /// its links may still be reconnecting, so leader-check timeouts convey
    /// no evidence about the incumbent's timeliness; accusing on them would
    /// bump healthy incumbents' counters up to the restarted process's own
    /// and let it re-win the *(counter, id)* tie-break it was supposed to
    /// have lost. Local suspicions are still recorded, so if *every* process
    /// crashed, each one eventually promotes itself locally, heartbeats, and
    /// the first delivered `ALIVE` ends everyone's quiet period — liveness
    /// is preserved.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be made
    /// durable — a process whose disk is broken must not participate.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn with_storage(
        env: &Env,
        params: OmegaParams,
        storage: StorageHandle,
    ) -> Result<Self, StorageError> {
        CommEffOmega::with_storage_and_probe(env, params, storage, NoopProbe)
    }
}

impl<P: Probe> CommEffOmega<P> {
    /// Like [`CommEffOmega::new`], with an observability probe that will
    /// receive every protocol event this machine emits.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn new_with_probe(env: &Env, params: OmegaParams, probe: P) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid OmegaParams: {e}");
        }
        let n = env.n();
        CommEffOmega {
            me: env.id(),
            params,
            table: RankTable::new(n),
            timeouts: vec![params.initial_timeout; n],
            leader: ProcessId(0),
            accusations_sent: 0,
            accusations_received: 0,
            storage: None,
            recovering: false,
            probe,
        }
    }

    /// Like [`CommEffOmega::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be made
    /// durable.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn with_storage_and_probe(
        env: &Env,
        params: OmegaParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let mut sm = CommEffOmega::new_with_probe(env, params, probe);
        let records: Vec<u64> = storage.load_records()?;
        let boot_counter = match records.iter().max() {
            Some(&persisted) => persisted.saturating_add(1),
            None => 0,
        };
        // Write-ahead even for the boot record: if this append fails, the
        // process never joins, so no peer can have heard the new counter.
        storage.append_record(&boot_counter)?;
        sm.probe.emit(ProbeEvent::WalRecover {
            node: sm.me,
            at: Instant::ZERO,
            records: records.len() as u64,
        });
        sm.restore_own_counter(boot_counter);
        sm.storage = Some(storage);
        Ok(sm)
    }

    /// Restores this process's own accusation counter from durable state.
    ///
    /// For embedding protocols (consensus persists its embedded Ω's counter
    /// in its own log). Must be called before any stimulus is delivered.
    ///
    /// A non-zero counter means this is a restart (first boots start at 0),
    /// so it also enters the recovering rejoin mode: no accusations are sent
    /// until the first message arrives post-recovery.
    pub fn restore_own_counter(&mut self, counter: u64) {
        self.table.record_alive(self.me, counter);
        self.leader = self.table.best();
        self.recovering = counter > 0;
        if self.recovering {
            self.probe.emit(ProbeEvent::IncarnationBump {
                node: self.me,
                counter,
            });
        }
    }

    /// `true` while in the recovering rejoin mode (restarted, and no message
    /// received yet).
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// The process this instance currently trusts (the Ω output).
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// Returns `true` if this process currently trusts itself.
    pub fn is_leader(&self) -> bool {
        self.leader == self.me
    }

    /// This process's own accusation counter.
    pub fn own_counter(&self) -> u64 {
        self.table.auth(self.me)
    }

    /// The effective rank table (for instrumentation).
    pub fn table(&self) -> &RankTable {
        &self.table
    }

    /// Current timeout on candidate `q`.
    pub fn timeout_of(&self, q: ProcessId) -> Duration {
        self.timeouts[q.as_usize()]
    }

    /// Accusations sent so far (diagnostics).
    pub fn accusations_sent(&self) -> u64 {
        self.accusations_sent
    }

    /// Valid accusations absorbed so far (diagnostics).
    pub fn accusations_received(&self) -> u64 {
        self.accusations_received
    }

    /// Parameters in force.
    pub fn params(&self) -> &OmegaParams {
        &self.params
    }

    /// Re-evaluates the minimum-(counter, id) choice; on a change, emits the
    /// new leader as output and (re)arms or cancels the monitoring timer.
    fn recompute_leader(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>) {
        let best = self.table.best();
        if best != self.leader {
            self.leader = best;
            self.probe.emit(ProbeEvent::LeaderChange {
                node: self.me,
                at: ctx.now(),
                leader: best,
            });
            ctx.output(best);
            if best == self.me {
                ctx.cancel_timer(LEADER_CHECK_TIMER);
            } else {
                ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[best.as_usize()]);
            }
        }
    }
}

impl<P: Probe> Sm for CommEffOmega<P> {
    type Msg = OmegaMsg;
    type Output = ProcessId;
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>) {
        // Publish the initial choice so traces start with a defined value —
        // on the probe stream too, so span reconstruction can tell a later
        // switch apart from the first trust being established.
        ctx.output(self.leader);
        self.probe.emit(ProbeEvent::LeaderChange {
            node: self.me,
            at: ctx.now(),
            leader: self.leader,
        });
        ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
        if self.leader != self.me {
            ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[self.leader.as_usize()]);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, OmegaMsg, ProcessId>,
        from: ProcessId,
        msg: OmegaMsg,
    ) {
        // Any delivered message proves at least one link is live again: the
        // recovering quiet period ends and normal monitoring resumes.
        self.recovering = false;
        match msg {
            OmegaMsg::Alive { counter } => {
                self.table.record_alive(from, counter);
                if from == self.leader {
                    // Fresh evidence about the incumbent: re-arm its deadline.
                    ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[from.as_usize()]);
                }
                self.recompute_leader(ctx);
            }
            OmegaMsg::Accuse { counter } => {
                let valid = !self.params.dedup_accusations || counter == self.table.auth(self.me);
                if valid {
                    // Write-ahead: the bumped counter must be durable before
                    // any ALIVE can carry it. If the append fails, the
                    // accusation is dropped — equivalent to the message having
                    // been lost, which the protocol already tolerates.
                    if let Some(store) = &self.storage {
                        let next = self.table.auth(self.me).saturating_add(1);
                        if store.append_record(&next).is_err() {
                            return;
                        }
                        self.probe.emit(ProbeEvent::WalAppend {
                            node: self.me,
                            at: ctx.now(),
                        });
                    }
                    self.accusations_received += 1;
                    self.table.bump_auth(self.me);
                    self.probe.emit(ProbeEvent::AccusationAbsorbed {
                        node: self.me,
                        at: ctx.now(),
                        new_counter: self.table.auth(self.me),
                    });
                    self.recompute_leader(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, OmegaMsg, ProcessId>, timer: TimerId) {
        match timer {
            HEARTBEAT_TIMER => {
                if self.leader == self.me {
                    ctx.broadcast(OmegaMsg::Alive {
                        counter: self.table.auth(self.me),
                    });
                }
                ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
            }
            LEADER_CHECK_TIMER => {
                let suspect = self.leader;
                debug_assert_ne!(suspect, self.me, "self-leader must not monitor itself");
                // Grow the timeout first: if the suspicion is premature, the
                // next one comes later, so suspicions of a ♦-timely leader
                // are finite.
                let t = &mut self.timeouts[suspect.as_usize()];
                *t = self.params.timeout_policy.bump(*t);
                let grown = *t;
                self.probe.emit(ProbeEvent::TimeoutAdapt {
                    node: self.me,
                    at: ctx.now(),
                    suspect,
                    timeout: grown,
                });
                self.table.record_suspicion(suspect);
                if !self.recovering {
                    self.accusations_sent += 1;
                    self.probe.emit(ProbeEvent::AccusationSent {
                        node: self.me,
                        at: ctx.now(),
                        suspect,
                        phase: self.table.auth(suspect),
                    });
                    ctx.send(
                        suspect,
                        OmegaMsg::Accuse {
                            counter: self.table.auth(suspect),
                        },
                    );
                }
                self.recompute_leader(ctx);
                if self.leader == suspect {
                    // Still the best candidate despite the suspicion: keep
                    // monitoring it under the grown timeout.
                    ctx.set_timer(LEADER_CHECK_TIMER, self.timeouts[suspect.as_usize()]);
                }
            }
            other => debug_assert!(false, "unexpected timer {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant, Send, TimerCmd};

    /// Drives a single state machine by hand and collects effects.
    struct Harness {
        env: Env,
        sm: CommEffOmega,
        fx: Effects<OmegaMsg, ProcessId>,
        now: Instant,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = CommEffOmega::new(&env, OmegaParams::default());
            Harness {
                env,
                sm,
                fx: Effects::new(),
                now: Instant::ZERO,
            }
        }

        fn start(&mut self) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, msg: OmegaMsg) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), msg);
            self.fx.take()
        }

        fn fire(&mut self, timer: TimerId) -> Effects<OmegaMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, self.now, &mut self.fx);
            self.sm.on_timer(&mut ctx, timer);
            self.fx.take()
        }
    }

    #[test]
    fn initial_leader_is_p0_everywhere() {
        for me in 0..3 {
            let mut h = Harness::new(me, 3);
            let fx = h.start();
            assert_eq!(h.sm.leader(), ProcessId(0));
            assert_eq!(fx.outputs, vec![ProcessId(0)]);
            // p0 trusts itself: no monitor timer; others arm one.
            let has_check = fx
                .timers
                .iter()
                .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == LEADER_CHECK_TIMER));
            assert_eq!(has_check, me != 0);
        }
    }

    #[test]
    fn self_leader_heartbeats_follower_stays_silent() {
        let mut h0 = Harness::new(0, 3);
        h0.start();
        let fx = h0.fire(HEARTBEAT_TIMER);
        let dests: Vec<_> = fx.sends.iter().map(|s| s.to).collect();
        assert_eq!(dests, vec![ProcessId(1), ProcessId(2)]);
        assert!(fx
            .sends
            .iter()
            .all(|s| s.msg == OmegaMsg::Alive { counter: 0 }));

        let mut h1 = Harness::new(1, 3);
        h1.start();
        let fx = h1.fire(HEARTBEAT_TIMER);
        assert!(fx.sends.is_empty(), "follower heartbeat must send nothing");
    }

    #[test]
    fn timeout_sends_accusation_to_leader_only() {
        let mut h = Harness::new(2, 3);
        h.start();
        let fx = h.fire(LEADER_CHECK_TIMER);
        assert_eq!(
            fx.sends,
            vec![Send {
                to: ProcessId(0),
                msg: OmegaMsg::Accuse { counter: 0 }
            }]
        );
        // One suspicion demotes p0 below p1 ((1, p0) > (0, p1)).
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
        assert_eq!(h.sm.accusations_sent(), 1);
    }

    #[test]
    fn timeout_grows_on_each_suspicion() {
        let mut h = Harness::new(1, 2);
        h.start();
        let t0 = h.sm.timeout_of(ProcessId(0));
        h.fire(LEADER_CHECK_TIMER);
        let t1 = h.sm.timeout_of(ProcessId(0));
        assert!(t1 > t0, "timeout must grow on suspicion: {t0} -> {t1}");
    }

    #[test]
    fn n2_suspicion_elects_self_and_alive_restores_incumbent() {
        // In a 2-process system, suspecting p0 leaves p1 as its own leader.
        let mut h = Harness::new(1, 2);
        h.start();
        let fx = h.fire(LEADER_CHECK_TIMER);
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert!(h.sm.is_leader());
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Cancel { timer } if *timer == LEADER_CHECK_TIMER)));
        // p0 speaks again: surcharge clears, p0 outranks p1.
        let fx = h.deliver(0, OmegaMsg::Alive { counter: 0 });
        assert_eq!(h.sm.leader(), ProcessId(0));
        assert_eq!(fx.outputs, vec![ProcessId(0)]);
    }

    #[test]
    fn valid_accusation_bumps_counter_and_demotes() {
        let mut h = Harness::new(0, 2);
        h.start();
        assert!(h.sm.is_leader());
        let fx = h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // (1, p0) vs (0, p1): p1 now better.
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == LEADER_CHECK_TIMER)));
        assert_eq!(h.sm.accusations_received(), 1);
    }

    #[test]
    fn stale_and_duplicate_accusations_are_ignored() {
        let mut h = Harness::new(0, 2);
        h.start();
        h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // A retransmitted phase-0 accusation must not double-count.
        h.deliver(1, OmegaMsg::Accuse { counter: 0 });
        assert_eq!(h.sm.own_counter(), 1);
        // A future-phase accusation is equally invalid.
        h.deliver(1, OmegaMsg::Accuse { counter: 7 });
        assert_eq!(h.sm.own_counter(), 1);
        // The current phase counts.
        h.deliver(1, OmegaMsg::Accuse { counter: 1 });
        assert_eq!(h.sm.own_counter(), 2);
    }

    #[test]
    fn dedup_off_counts_every_accusation() {
        let env = Env::new(ProcessId(0), 2);
        let params = OmegaParams {
            dedup_accusations: false,
            ..OmegaParams::default()
        };
        let mut sm = CommEffOmega::new(&env, params);
        let mut fx = Effects::new();
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        for _ in 0..3 {
            sm.on_message(
                &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                ProcessId(1),
                OmegaMsg::Accuse { counter: 0 },
            );
            fx.take();
        }
        assert_eq!(sm.own_counter(), 3);
    }

    #[test]
    fn alive_with_larger_counter_demotes_incumbent() {
        let mut h = Harness::new(2, 3);
        h.start();
        assert_eq!(h.sm.leader(), ProcessId(0));
        // p0 announces a battered counter; p1 (counter 0) becomes best,
        // even though p1 has not spoken — rank is (0, p1) vs (5, p0) vs (0, p2)…
        // p1 < p2 by id.
        let fx = h.deliver(0, OmegaMsg::Alive { counter: 5 });
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
    }

    #[test]
    fn stale_alive_does_not_regress_counter() {
        let mut h = Harness::new(1, 2);
        h.start();
        h.deliver(0, OmegaMsg::Alive { counter: 4 });
        assert_eq!(h.sm.table().auth(ProcessId(0)), 4);
        h.deliver(0, OmegaMsg::Alive { counter: 2 });
        assert_eq!(h.sm.table().auth(ProcessId(0)), 4);
    }

    #[test]
    fn heartbeat_timer_always_rearms() {
        let mut h = Harness::new(1, 2);
        h.start();
        let fx = h.fire(HEARTBEAT_TIMER);
        assert!(fx
            .timers
            .iter()
            .any(|c| matches!(c, TimerCmd::Set { timer, .. } if *timer == HEARTBEAT_TIMER)));
    }

    #[test]
    fn restart_recovers_counter_and_rejoins_as_follower() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(0), 2);
        let store = StorageHandle::in_memory();
        let mut fx = Effects::new();

        // First boot: empty log, counter 0, p0 leads as usual.
        let mut sm =
            CommEffOmega::with_storage(&env, OmegaParams::default(), store.clone()).unwrap();
        assert_eq!(sm.own_counter(), 0);
        assert!(sm.is_leader());
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        sm.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            OmegaMsg::Accuse { counter: 0 },
        );
        fx.take();
        assert_eq!(sm.own_counter(), 1);
        drop(sm); // crash

        // Restart: recovers counter 1, incarnation bump makes it 2, and the
        // restarted process defers to p1 instead of re-claiming leadership.
        let sm = CommEffOmega::with_storage(&env, OmegaParams::default(), store.clone()).unwrap();
        assert_eq!(sm.own_counter(), 2);
        assert!(!sm.is_leader());
        assert_eq!(sm.leader(), ProcessId(1));

        // The boot record itself is durable: yet another restart bumps again.
        let sm = CommEffOmega::with_storage(&env, OmegaParams::default(), store).unwrap();
        assert_eq!(sm.own_counter(), 3);
    }

    #[test]
    fn recovering_process_stays_quiet_until_first_message() {
        use lls_primitives::StorageHandle;
        let env = Env::new(ProcessId(0), 3);
        let store = StorageHandle::in_memory();
        let mut fx = Effects::new();

        // First boot + crash, so the next boot is a genuine restart.
        let sm = CommEffOmega::with_storage(&env, OmegaParams::default(), store.clone()).unwrap();
        assert!(!sm.is_recovering(), "first boot is not a recovery");
        drop(sm);

        let mut sm = CommEffOmega::with_storage(&env, OmegaParams::default(), store).unwrap();
        assert!(sm.is_recovering());
        sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();

        // Its links may still be down: leader-check expiries record the
        // suspicion locally but must not accuse anyone.
        sm.on_timer(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            LEADER_CHECK_TIMER,
        );
        let quiet = fx.take();
        assert!(quiet.sends.is_empty(), "recovering node accused: {quiet:?}");
        assert_eq!(sm.accusations_sent(), 0);
        assert_eq!(sm.table().prov(ProcessId(1)), 1, "suspicion still recorded");

        // The first delivered message ends the quiet period...
        sm.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            OmegaMsg::Alive { counter: 0 },
        );
        fx.take();
        assert!(!sm.is_recovering());

        // ...after which accusations flow normally again.
        sm.on_timer(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            LEADER_CHECK_TIMER,
        );
        let fx2 = fx.take();
        assert_eq!(fx2.sends.len(), 1);
        assert_eq!(sm.accusations_sent(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid OmegaParams")]
    fn invalid_params_rejected_at_construction() {
        let env = Env::new(ProcessId(0), 2);
        let params = OmegaParams {
            eta: Duration::ZERO,
            ..OmegaParams::default()
        };
        let _ = CommEffOmega::new(&env, params);
    }
}
