//! Candidate ranking by *(accusation counter, id)*.
//!
//! The heart of the paper's election rule: every process ranks all `n`
//! candidates by the pair *(counter, id)* in lexicographic order and trusts
//! the minimum. The table kept per process distinguishes two kinds of
//! evidence about a candidate `q`:
//!
//! * the **authoritative** counter — the largest value heard directly from
//!   `q` in an `ALIVE` message (the leader's own counter is monotone, so
//!   "largest heard" converges to the true value);
//! * a **provisional** surcharge — local timeouts on `q` that `q` has not yet
//!   acknowledged. It handles crashed leaders, whose authoritative counter
//!   would otherwise stay at its last value forever: every further suspicion
//!   pushes the crashed candidate further down the ranking. Hearing from `q`
//!   again clears the surcharge — the authoritative value subsumes whatever
//!   accusations actually reached `q`, and accusations that got lost must not
//!   permanently poison one process's view (they would break agreement,
//!   since other processes never saw them).

use lls_primitives::ProcessId;
use serde::{Deserialize, Serialize};

/// A candidate's rank: smaller is more trustworthy.
///
/// # Example
///
/// ```
/// use omega::CandidateRank;
/// use lls_primitives::ProcessId;
///
/// let a = CandidateRank { counter: 2, id: ProcessId(9) };
/// let b = CandidateRank { counter: 3, id: ProcessId(0) };
/// let c = CandidateRank { counter: 2, id: ProcessId(4) };
/// assert!(a < b); // counter dominates
/// assert!(c < a); // id breaks ties
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CandidateRank {
    /// Effective accusation counter.
    pub counter: u64,
    /// Process id, breaking ties.
    pub id: ProcessId,
}

/// Per-process table of counter evidence for all candidates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankTable {
    auth: Vec<u64>,
    prov: Vec<u64>,
}

impl RankTable {
    /// A table for `n` candidates, all counters zero.
    pub fn new(n: usize) -> Self {
        RankTable {
            auth: vec![0; n],
            prov: vec![0; n],
        }
    }

    /// Number of candidates.
    pub fn n(&self) -> usize {
        self.auth.len()
    }

    /// The authoritative counter of `q`.
    pub fn auth(&self, q: ProcessId) -> u64 {
        self.auth[q.as_usize()]
    }

    /// The provisional surcharge on `q`.
    pub fn prov(&self, q: ProcessId) -> u64 {
        self.prov[q.as_usize()]
    }

    /// `q`'s effective rank.
    pub fn rank(&self, q: ProcessId) -> CandidateRank {
        CandidateRank {
            counter: self.auth[q.as_usize()].saturating_add(self.prov[q.as_usize()]),
            id: q,
        }
    }

    /// Records an authoritative counter heard from `q` itself. Adopts it if
    /// larger, and clears the provisional surcharge in either case (we just
    /// heard from `q`: it is alive, and its own counter is the truth).
    pub fn record_alive(&mut self, q: ProcessId, counter: u64) {
        let i = q.as_usize();
        if counter > self.auth[i] {
            self.auth[i] = counter;
        }
        self.prov[i] = 0;
    }

    /// Adds one provisional accusation against `q` (a local timeout).
    pub fn record_suspicion(&mut self, q: ProcessId) {
        self.prov[q.as_usize()] = self.prov[q.as_usize()].saturating_add(1);
    }

    /// Increments `q`'s authoritative counter and returns the new value. Used by
    /// the owner on itself when absorbing a valid accusation, and by the
    /// gossiping baseline to record suspicions directly in the shared vector.
    pub fn bump_auth(&mut self, q: ProcessId) -> u64 {
        let i = q.as_usize();
        self.auth[i] = self.auth[i].saturating_add(1);
        self.auth[i]
    }

    /// The candidate with the minimum *(counter, id)* — the process to trust.
    pub fn best(&self) -> ProcessId {
        (0..self.auth.len() as u32)
            .map(ProcessId)
            .min_by_key(|&q| self.rank(q))
            .expect("RankTable is never empty")
    }

    /// Merges another process's authoritative knowledge (used by the gossiping
    /// baseline): takes the pointwise max of authoritative counters.
    pub fn merge_auth(&mut self, other: &[u64]) {
        assert_eq!(other.len(), self.auth.len(), "counter vector size mismatch");
        for (mine, theirs) in self.auth.iter_mut().zip(other) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// A copy of the authoritative counter vector (for gossiping).
    pub fn auth_vector(&self) -> Vec<u64> {
        self.auth.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn rank_orders_counter_then_id() {
        let mut ranks = [
            CandidateRank {
                counter: 1,
                id: p(0),
            },
            CandidateRank {
                counter: 0,
                id: p(2),
            },
            CandidateRank {
                counter: 0,
                id: p(1),
            },
        ];
        ranks.sort();
        assert_eq!(
            ranks.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![p(1), p(2), p(0)]
        );
    }

    #[test]
    fn fresh_table_trusts_lowest_id() {
        let t = RankTable::new(4);
        assert_eq!(t.best(), p(0));
    }

    #[test]
    fn suspicions_demote() {
        let mut t = RankTable::new(3);
        t.record_suspicion(p(0));
        assert_eq!(t.best(), p(1));
        t.record_suspicion(p(1));
        assert_eq!(t.best(), p(2));
        // p2 with zero accusations now wins over both.
        assert_eq!(t.rank(p(0)).counter, 1);
    }

    #[test]
    fn alive_clears_provisional_surcharge() {
        let mut t = RankTable::new(3);
        t.record_suspicion(p(0));
        t.record_suspicion(p(0));
        assert_eq!(t.best(), p(1));
        t.record_alive(p(0), 0);
        assert_eq!(t.best(), p(0));
        assert_eq!(t.prov(p(0)), 0);
    }

    #[test]
    fn alive_adopts_larger_counters_only() {
        let mut t = RankTable::new(2);
        t.record_alive(p(1), 5);
        assert_eq!(t.auth(p(1)), 5);
        // A stale (delayed) smaller value must not regress the counter.
        t.record_alive(p(1), 3);
        assert_eq!(t.auth(p(1)), 5);
        t.record_alive(p(1), 8);
        assert_eq!(t.auth(p(1)), 8);
    }

    #[test]
    fn bump_auth_is_monotone() {
        let mut t = RankTable::new(2);
        assert_eq!(t.bump_auth(p(0)), 1);
        assert_eq!(t.bump_auth(p(0)), 2);
        assert_eq!(t.auth(p(0)), 2);
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut t = RankTable::new(3);
        t.record_alive(p(1), 4);
        t.merge_auth(&[2, 1, 7]);
        assert_eq!(t.auth_vector(), vec![2, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_rejects_wrong_size() {
        RankTable::new(2).merge_auth(&[0; 3]);
    }

    #[test]
    fn effective_rank_combines_auth_and_prov() {
        let mut t = RankTable::new(2);
        t.record_alive(p(1), 3);
        t.record_suspicion(p(1));
        assert_eq!(
            t.rank(p(1)),
            CandidateRank {
                counter: 4,
                id: p(1)
            }
        );
    }
}
