//! Implementations of the **Ω failure detector** (eventual leader election)
//! under *limited link synchrony*, after Aguilera, Delporte-Gallet,
//! Fauconnier and Toueg, *"Communication-efficient leader election and
//! consensus with limited link synchrony"*, PODC 2004.
//!
//! # The problem
//!
//! Ω is the weakest failure detector for consensus: each process continuously
//! outputs one process it *trusts*, and eventually all correct processes
//! trust the same correct process forever. The paper asks two questions:
//!
//! 1. **How little synchrony suffices?** Answer: it is enough that *one*
//!    unknown correct process is a **♦-source** — after an unknown global
//!    stabilization time, its outgoing messages arrive within an unknown
//!    bound δ. Every other link may be merely *fair lossy* (unbounded delay,
//!    arbitrary — but not total — loss).
//! 2. **How few messages?** Answer: Ω can be **communication-efficient** —
//!    there is a time after which *only one process* (the elected leader)
//!    sends messages. Prior algorithms in comparable models kept all `n`
//!    processes heartbeating forever, Θ(n²) messages per period.
//!
//! # The algorithms in this crate
//!
//! * [`CommEffOmega`] — the paper's contribution: leadership by minimum
//!   *(accusation counter, id)*; only a self-believed leader heartbeats;
//!   followers that time out *accuse the leader directly*, growing its
//!   counter and eventually demoting chronically untimely leaders. See the
//!   [`CommEffOmega`] docs for the full mechanism and the reconstruction
//!   notes.
//! * [`baseline::AllToAllOmega`] — classic all-to-all heartbeats; needs every
//!   link ♦-timely; Θ(n²) messages per period forever.
//! * [`baseline::BroadcastSourceOmega`] — correct in the same weak system as
//!   `CommEffOmega` (PODC'03-style), but everyone broadcasts counters
//!   forever: same synchrony, Θ(n²) message cost. Isolates the PODC'04
//!   contribution.
//! * [`spec`] — trace checkers turning the paper's two theorems (Ω holds;
//!   communication efficiency holds) into assertions usable from tests and
//!   experiments.
//!
//! # Example
//!
//! Elect a leader among five simulated processes of which only `p3` is a
//! ♦-source:
//!
//! ```
//! use lls_primitives::{Duration, Instant, ProcessId};
//! use netsim::{SimBuilder, SystemSParams, Topology};
//! use omega::{CommEffOmega, OmegaParams};
//!
//! let n = 5;
//! let topo = Topology::system_s(n, ProcessId(3), SystemSParams::default());
//! let mut sim = SimBuilder::new(n)
//!     .seed(1)
//!     .topology(topo)
//!     .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
//! sim.run_until(Instant::from_ticks(50_000));
//!
//! let leaders: Vec<ProcessId> = (0..n as u32)
//!     .map(|p| sim.node(ProcessId(p)).leader())
//!     .collect();
//! assert!(leaders.iter().all(|&l| l == leaders[0]), "disagreement: {leaders:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baseline;
mod comm_efficient;
mod msg;
mod params;
pub mod qos;
mod rank;
mod relay;
pub mod spec;

pub use comm_efficient::CommEffOmega;
pub use msg::{classify_msg, OmegaMsg};
pub use params::{BatchParams, OmegaParams, TimeoutPolicy};
pub use rank::{CandidateRank, RankTable};
pub use relay::{Relay, RelayMsg};
