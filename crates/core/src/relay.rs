//! Message relaying: Ω under eventually timely *paths*.
//!
//! The papers in this line observe (see the discussion sections of the
//! journal versions) that the point-to-point synchrony assumption can be
//! relaxed to *path* synchrony — "for every correct process `p` there is an
//! eventually timely **path** from `p` to every correct process" — by
//! relaying: the first time a process receives a message it forwards it to
//! everyone else before consuming it. Duplicate detection needs unique
//! message identities, realized here as a per-origin sequence number.
//!
//! [`Relay`] implements that transformation *generically*: it wraps any
//! inner [`Sm`] and floods its traffic, so `Relay<CommEffOmega>` is the
//! relayed Ω detector of the discussion section, and the same adapter works
//! for any other protocol in the workspace.
//!
//! The price, as the papers note, is that the stack is no longer
//! communication-efficient *sensu stricto*: relays forward the leader's
//! heartbeats forever. It remains communication-efficient in the weaker
//! sense that only one process keeps **originating** messages — the
//! [`Relay::origination_count`] counter exposes exactly that measure.
//!
//! # Example
//!
//! A topology in which the source's *direct* link to one process is dead,
//! but a two-hop timely path exists — direct Ω cannot reach `p2`, relayed Ω
//! elects a leader everywhere:
//!
//! ```
//! use lls_primitives::{Instant, ProcessId};
//! use netsim::{LinkModel, SimBuilder, Topology};
//! use omega::{CommEffOmega, OmegaParams, Relay};
//!
//! let n = 3;
//! let mut topo = Topology::all_timely(n, lls_primitives::Duration::from_ticks(2));
//! topo.set_link(ProcessId(0), ProcessId(2), LinkModel::Dead);
//! topo.set_link(ProcessId(2), ProcessId(0), LinkModel::Dead);
//!
//! let mut sim = SimBuilder::new(n)
//!     .topology(topo)
//!     .build_with(|env| Relay::new(env, CommEffOmega::new(env, OmegaParams::default())));
//! sim.run_until(Instant::from_ticks(20_000));
//! let leaders: Vec<ProcessId> =
//!     (0..3).map(|p| sim.node(ProcessId(p)).inner().leader()).collect();
//! assert!(leaders.iter().all(|&l| l == leaders[0]), "{leaders:?}");
//! ```

use std::collections::BTreeSet;

use lls_primitives::{Ctx, Effects, Env, ProcessId, Sm, TimerCmd, TimerId};
use serde::{Deserialize, Serialize};

/// A flooded message: the inner payload plus a unique identity and its
/// intended destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelayMsg<M> {
    /// The process that originated the message.
    pub origin: ProcessId,
    /// Origin-assigned sequence number (unique per origin).
    pub seq: u64,
    /// The process the inner protocol addressed.
    pub dest: ProcessId,
    /// The inner payload.
    pub inner: M,
}

/// Per-origin duplicate suppression with bounded memory: remembers a sliding
/// window of sequence numbers. Sequence numbers below the window are treated
/// as duplicates — they are older than `window` more-recent messages from the
/// same origin, so the inner protocol has long since moved on.
#[derive(Debug, Clone)]
struct DupFilter {
    seen: BTreeSet<u64>,
    window: usize,
}

impl DupFilter {
    fn new(window: usize) -> Self {
        DupFilter {
            seen: BTreeSet::new(),
            window,
        }
    }

    /// Returns `true` the first time `seq` is observed.
    fn fresh(&mut self, seq: u64) -> bool {
        if let Some(&min) = self.seen.first() {
            if self.seen.len() >= self.window && seq < min {
                return false; // Below the window: stale.
            }
        }
        let fresh = self.seen.insert(seq);
        while self.seen.len() > self.window {
            self.seen.pop_first();
        }
        fresh
    }
}

/// A generic flooding adapter: wraps an inner protocol and relays every
/// message once, enabling the eventually-timely-*path* assumption.
///
/// See the module-level documentation and the example at the top of
/// `crates/core/src/relay.rs`.
#[derive(Debug, Clone)]
pub struct Relay<S: Sm> {
    env: Env,
    inner: S,
    next_seq: u64,
    filters: Vec<DupFilter>,
    originated: u64,
    forwarded: u64,
}

/// How many sequence numbers per origin the duplicate filter remembers.
const DUP_WINDOW: usize = 1_024;

impl<S: Sm> Relay<S> {
    /// Wraps `inner` for the process described by `env`.
    pub fn new(env: &Env, inner: S) -> Self {
        Relay {
            env: *env,
            inner,
            next_seq: 0,
            filters: (0..env.n()).map(|_| DupFilter::new(DUP_WINDOW)).collect(),
            originated: 0,
            forwarded: 0,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Messages this process *originated* (the relayed notion of
    /// communication efficiency counts these, not forwards).
    pub fn origination_count(&self) -> u64 {
        self.originated
    }

    /// Messages this process forwarded on behalf of others.
    pub fn forward_count(&self) -> u64 {
        self.forwarded
    }

    /// Runs one inner step and floods its sends.
    fn drive(
        &mut self,
        ctx: &mut Ctx<'_, RelayMsg<S::Msg>, S::Output>,
        step: impl FnOnce(&mut S, &mut Ctx<'_, S::Msg, S::Output>),
    ) {
        let mut fx: Effects<S::Msg, S::Output> = Effects::new();
        {
            let mut ictx = Ctx::new(&self.env, ctx.now(), &mut fx);
            step(&mut self.inner, &mut ictx);
        }
        for s in fx.sends {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.originated += 1;
            // Record our own message as seen so an echo is not re-flooded.
            self.filters[self.env.id().as_usize()].fresh(seq);
            ctx.broadcast(RelayMsg {
                origin: self.env.id(),
                seq,
                dest: s.to,
                inner: s.msg,
            });
        }
        for cmd in fx.timers {
            match cmd {
                TimerCmd::Set { timer, after } => ctx.set_timer(timer, after),
                TimerCmd::Cancel { timer } => ctx.cancel_timer(timer),
            }
        }
        for o in fx.outputs {
            ctx.output(o);
        }
    }
}

impl<S: Sm> Sm for Relay<S>
where
    S::Msg: Clone,
{
    type Msg = RelayMsg<S::Msg>;
    type Output = S::Output;
    type Request = S::Request;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.drive(ctx, |inner, ictx| inner.on_start(ictx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        _from: ProcessId,
        msg: Self::Msg,
    ) {
        let origin = msg.origin;
        if !self.env.membership().contains(origin) {
            return; // Corrupt origin id: ignore.
        }
        if !self.filters[origin.as_usize()].fresh(msg.seq) {
            return; // Duplicate: already processed and forwarded.
        }
        // Relay first (to everyone except ourselves; the small optimization
        // of skipping the origin is deliberately not applied so the code
        // follows the simplest correct form).
        self.forwarded += 1;
        ctx.broadcast(msg.clone());
        // Deliver to the inner protocol only if we are the addressee.
        if msg.dest == self.env.id() {
            self.drive(ctx, |inner, ictx| inner.on_message(ictx, origin, msg.inner));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.drive(ctx, |inner, ictx| inner.on_timer(ictx, timer));
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        self.drive(ctx, |inner, ictx| inner.on_request(ictx, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inner test machine: on start, p0 sends one "hello" to p2; any
    /// received message becomes an output.
    #[derive(Debug)]
    struct Hello;
    impl Sm for Hello {
        type Msg = &'static str;
        type Output = &'static str;
        type Request = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str, &'static str>) {
            if ctx.id() == ProcessId(0) {
                ctx.send(ProcessId(2), "hello");
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Ctx<'_, &'static str, &'static str>,
            _from: ProcessId,
            msg: &'static str,
        ) {
            ctx.output(msg);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, &'static str, &'static str>, _t: TimerId) {}
    }

    fn harness(
        me: u32,
    ) -> (
        Env,
        Relay<Hello>,
        Effects<RelayMsg<&'static str>, &'static str>,
    ) {
        let env = Env::new(ProcessId(me), 3);
        (env, Relay::new(&env, Hello), Effects::new())
    }

    #[test]
    fn origin_floods_instead_of_unicasting() {
        let (env, mut r, mut fx) = harness(0);
        r.on_start(&mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx));
        // The single inner send became a broadcast of the wrapped message.
        assert_eq!(fx.sends.len(), 2);
        for s in &fx.sends {
            assert_eq!(
                s.msg,
                RelayMsg {
                    origin: ProcessId(0),
                    seq: 0,
                    dest: ProcessId(2),
                    inner: "hello"
                }
            );
        }
        assert_eq!(r.origination_count(), 1);
    }

    #[test]
    fn intermediate_forwards_but_does_not_consume() {
        let (env, mut r, mut fx) = harness(1);
        let msg = RelayMsg {
            origin: ProcessId(0),
            seq: 0,
            dest: ProcessId(2),
            inner: "hello",
        };
        r.on_message(
            &mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx),
            ProcessId(0),
            msg,
        );
        assert_eq!(fx.sends.len(), 2, "must forward to the other two");
        assert!(fx.outputs.is_empty(), "p1 is not the addressee");
        assert_eq!(r.forward_count(), 1);
    }

    #[test]
    fn addressee_forwards_and_consumes() {
        let (env, mut r, mut fx) = harness(2);
        let msg = RelayMsg {
            origin: ProcessId(0),
            seq: 0,
            dest: ProcessId(2),
            inner: "hello",
        };
        r.on_message(
            &mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx),
            ProcessId(1), // arrived via the relay, not from the origin
            msg,
        );
        assert_eq!(fx.outputs, vec!["hello"]);
        assert_eq!(fx.sends.len(), 2);
    }

    #[test]
    fn duplicates_are_forwarded_and_consumed_once() {
        let (env, mut r, mut fx) = harness(2);
        let msg = RelayMsg {
            origin: ProcessId(0),
            seq: 0,
            dest: ProcessId(2),
            inner: "hello",
        };
        for from in [0u32, 1, 1] {
            r.on_message(
                &mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx),
                ProcessId(from),
                msg.clone(),
            );
        }
        assert_eq!(fx.outputs.len(), 1, "consumed once");
        assert_eq!(fx.sends.len(), 2, "forwarded once");
    }

    #[test]
    fn own_echo_is_not_reflooded() {
        let (env, mut r, mut fx) = harness(0);
        r.on_start(&mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx));
        fx.take();
        // Our own flooded message comes back via a peer.
        let echo = RelayMsg {
            origin: ProcessId(0),
            seq: 0,
            dest: ProcessId(2),
            inner: "hello",
        };
        r.on_message(
            &mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx),
            ProcessId(1),
            echo,
        );
        assert!(fx.sends.is_empty(), "echoes must not multiply");
    }

    #[test]
    fn dup_filter_window_semantics() {
        let mut f = DupFilter::new(3);
        assert!(f.fresh(10));
        assert!(f.fresh(11));
        assert!(f.fresh(12));
        assert!(!f.fresh(11), "repeat within window");
        assert!(f.fresh(13)); // evicts 10
        assert!(!f.fresh(9), "below a full window is stale");
        assert!(f.fresh(14));
    }

    #[test]
    fn corrupt_origin_is_ignored() {
        let (env, mut r, mut fx) = harness(1);
        r.on_message(
            &mut Ctx::new(&env, lls_primitives::Instant::ZERO, &mut fx),
            ProcessId(0),
            RelayMsg {
                origin: ProcessId(99),
                seq: 0,
                dest: ProcessId(1),
                inner: "x",
            },
        );
        assert!(fx.is_empty());
    }
}
