//! Baseline B: counter gossip in the weak system (PODC'03-style).

use lls_primitives::{Ctx, Duration, Env, ProcessId, Sm, TimerId};
use serde::{Deserialize, Serialize};

use crate::params::OmegaParams;
use crate::rank::RankTable;

/// Gossip message of [`BroadcastSourceOmega`]: the sender's full view of the
/// accusation-counter vector — Θ(n) words, versus the O(1)-word messages of
/// the communication-efficient algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipMsg {
    /// Sender's accusation-counter vector (index = process id).
    pub counters: Vec<u64>,
}

/// Timer id of the gossip task.
pub const HEARTBEAT_TIMER: TimerId = TimerId(0);

/// Timer id monitoring candidate `q` is `MONITOR_BASE + q`.
pub const MONITOR_BASE: u32 = 1;

/// The non-communication-efficient Ω detector for the weak system:
/// every process gossips the counter vector every η forever; a local timeout
/// on `q` increments `q`'s counter, and the gossip's pointwise-max merge
/// spreads every increment. Leadership is minimum *(counter, id)*.
///
/// Correct under the same assumption as [`crate::CommEffOmega`] (one correct
/// ♦-source, everything else fair lossy): after GST nobody ever times out on
/// the source, so its counter freezes, while chronically untimely candidates
/// keep being incremented. All correct processes converge on the same
/// frozen minimum because the vectors equalize through gossip.
///
/// # Example
///
/// ```
/// use lls_primitives::{Instant, ProcessId};
/// use netsim::{SimBuilder, SystemSParams, Topology};
/// use omega::baseline::BroadcastSourceOmega;
/// use omega::OmegaParams;
///
/// let topo = Topology::system_s(4, ProcessId(2), SystemSParams {
///     gst: 200, ..SystemSParams::default()
/// });
/// let mut sim = SimBuilder::new(4)
///     .seed(3)
///     .topology(topo)
///     .build_with(|env| BroadcastSourceOmega::new(env, OmegaParams::default()));
/// sim.run_until(Instant::from_ticks(60_000));
/// let l0 = sim.node(ProcessId(0)).leader();
/// assert!((0..4).all(|p| sim.node(ProcessId(p)).leader() == l0));
/// ```
#[derive(Debug, Clone)]
pub struct BroadcastSourceOmega {
    me: ProcessId,
    n: usize,
    params: OmegaParams,
    table: RankTable,
    suspected: Vec<bool>,
    timeouts: Vec<Duration>,
    leader: ProcessId,
}

impl BroadcastSourceOmega {
    /// Creates the state machine for the process described by `env`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn new(env: &Env, params: OmegaParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid OmegaParams: {e}");
        }
        BroadcastSourceOmega {
            me: env.id(),
            n: env.n(),
            params,
            table: RankTable::new(env.n()),
            suspected: vec![false; env.n()],
            timeouts: vec![params.initial_timeout; env.n()],
            leader: ProcessId(0),
        }
    }

    /// The process this instance currently trusts (the Ω output).
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// The counter table (for instrumentation).
    pub fn table(&self) -> &RankTable {
        &self.table
    }

    /// Current timeout on candidate `q`.
    pub fn timeout_of(&self, q: ProcessId) -> Duration {
        self.timeouts[q.as_usize()]
    }

    fn monitor_timer(&self, q: ProcessId) -> TimerId {
        TimerId(MONITOR_BASE + q.0)
    }

    fn recompute_leader(&mut self, ctx: &mut Ctx<'_, GossipMsg, ProcessId>) {
        let best = self.table.best();
        if best != self.leader {
            self.leader = best;
            ctx.output(best);
        }
    }
}

impl Sm for BroadcastSourceOmega {
    type Msg = GossipMsg;
    type Output = ProcessId;
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, GossipMsg, ProcessId>) {
        ctx.output(self.leader);
        ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
        for q in ctx.membership().others(self.me) {
            ctx.set_timer(self.monitor_timer(q), self.timeouts[q.as_usize()]);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, GossipMsg, ProcessId>,
        from: ProcessId,
        msg: GossipMsg,
    ) {
        self.table.merge_auth(&msg.counters);
        if self.suspected[from.as_usize()] {
            self.suspected[from.as_usize()] = false;
            let t = &mut self.timeouts[from.as_usize()];
            *t = self.params.timeout_policy.bump(*t);
        }
        ctx.set_timer(self.monitor_timer(from), self.timeouts[from.as_usize()]);
        self.recompute_leader(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GossipMsg, ProcessId>, timer: TimerId) {
        if timer == HEARTBEAT_TIMER {
            // Everyone gossips, forever: the message cost the paper removes.
            ctx.broadcast(GossipMsg {
                counters: self.table.auth_vector(),
            });
            ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
            return;
        }
        let q = ProcessId(timer.0 - MONITOR_BASE);
        debug_assert!(q.as_usize() < self.n && q != self.me, "bad monitor timer");
        self.suspected[q.as_usize()] = true;
        self.table.bump_auth(q);
        self.recompute_leader(ctx);
        // Keep monitoring: a dead process must keep accumulating counter
        // growth so the minimum escapes it at every correct process.
        ctx.set_timer(self.monitor_timer(q), self.timeouts[q.as_usize()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant};

    struct Harness {
        env: Env,
        sm: BroadcastSourceOmega,
        fx: Effects<GossipMsg, ProcessId>,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = BroadcastSourceOmega::new(&env, OmegaParams::default());
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<GossipMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32, counters: Vec<u64>) -> Effects<GossipMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm
                .on_message(&mut ctx, ProcessId(from), GossipMsg { counters });
            self.fx.take()
        }

        fn fire(&mut self, timer: TimerId) -> Effects<GossipMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_timer(&mut ctx, timer);
            self.fx.take()
        }
    }

    #[test]
    fn every_process_gossips_forever() {
        for me in 0..3 {
            let mut h = Harness::new(me, 3);
            h.start();
            let fx = h.fire(HEARTBEAT_TIMER);
            assert_eq!(fx.sends.len(), 2);
            assert!(fx.sends.iter().all(|s| s.msg
                == GossipMsg {
                    counters: vec![0, 0, 0]
                }));
        }
    }

    #[test]
    fn timeout_bumps_counter_and_moves_leader() {
        let mut h = Harness::new(2, 3);
        h.start();
        let _ = h.fire(TimerId(MONITOR_BASE));
        assert_eq!(h.sm.table().auth(ProcessId(0)), 1);
        assert_eq!(h.sm.leader(), ProcessId(1));
    }

    #[test]
    fn gossip_merge_adopts_remote_suspicions() {
        let mut h = Harness::new(2, 3);
        h.start();
        let fx = h.deliver(1, vec![5, 0, 0]);
        assert_eq!(h.sm.table().auth(ProcessId(0)), 5);
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
    }

    #[test]
    fn rehabilitation_grows_timeout() {
        let mut h = Harness::new(2, 3);
        h.start();
        h.fire(TimerId(MONITOR_BASE));
        let t0 = h.sm.timeout_of(ProcessId(0));
        h.deliver(0, vec![1, 0, 0]);
        assert!(h.sm.timeout_of(ProcessId(0)) > t0);
    }

    #[test]
    fn dead_candidate_keeps_accumulating() {
        let mut h = Harness::new(1, 2);
        h.start();
        for k in 1..=4 {
            h.fire(TimerId(MONITOR_BASE));
            assert_eq!(h.sm.table().auth(ProcessId(0)), k);
        }
        assert_eq!(h.sm.leader(), ProcessId(1));
    }
}
