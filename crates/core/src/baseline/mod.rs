//! Baseline Ω implementations the paper compares against.
//!
//! * [`AllToAllOmega`] — the classic heartbeat detector: every process
//!   broadcasts `ALIVE` every η forever and elects the smallest id not
//!   currently suspected. Correct only when **every** link is ♦-timely (the
//!   strong model of Larrea et al. 2000); Θ(n²) messages per period forever.
//! * [`BroadcastSourceOmega`] — correct in the *same weak system* as the
//!   paper's algorithm (one ♦-source, fair-lossy mesh; PODC'03-style), but
//!   every process gossips the full accusation-counter vector every η
//!   forever: Θ(n²) messages per period, each of size Θ(n). The gap between
//!   this baseline and [`crate::CommEffOmega`] *is* the PODC'04 contribution.

mod all_to_all;
mod broadcast_source;

pub use all_to_all::{AllToAllMsg, AllToAllOmega};
pub use broadcast_source::{BroadcastSourceOmega, GossipMsg};
