//! Baseline A: all-to-all heartbeats over fully ♦-timely links.

use lls_primitives::{Ctx, Duration, Env, ProcessId, Sm, TimerId};
use serde::{Deserialize, Serialize};

use crate::params::OmegaParams;

/// Heartbeat message of [`AllToAllOmega`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllToAllMsg;

/// Timer id of the heartbeat task.
pub const HEARTBEAT_TIMER: TimerId = TimerId(0);

/// Timer id monitoring candidate `q` is `MONITOR_BASE + q`.
pub const MONITOR_BASE: u32 = 1;

/// The classic all-to-all heartbeat Ω detector.
///
/// Every process broadcasts [`AllToAllMsg`] every η, monitors every peer
/// with an adaptive timeout, and trusts the smallest id among the processes
/// it does not currently suspect (itself included). Correct when all links
/// are ♦-timely; used as the state-of-the-art message-cost baseline
/// (Θ(n²) per η forever).
///
/// # Example
///
/// ```
/// use lls_primitives::{Instant, ProcessId, Duration};
/// use netsim::{SimBuilder, Topology};
/// use omega::baseline::AllToAllOmega;
/// use omega::OmegaParams;
///
/// let mut sim = SimBuilder::new(3)
///     .topology(Topology::all_timely(3, Duration::from_ticks(2)))
///     .crash_at(ProcessId(0), Instant::from_ticks(500))
///     .build_with(|env| AllToAllOmega::new(env, OmegaParams::default()));
/// sim.run_until(Instant::from_ticks(2_000));
/// // p0 crashed; survivors elect p1.
/// assert_eq!(sim.node(ProcessId(1)).leader(), ProcessId(1));
/// assert_eq!(sim.node(ProcessId(2)).leader(), ProcessId(1));
/// ```
#[derive(Debug, Clone)]
pub struct AllToAllOmega {
    me: ProcessId,
    n: usize,
    params: OmegaParams,
    suspected: Vec<bool>,
    timeouts: Vec<Duration>,
    leader: ProcessId,
}

impl AllToAllOmega {
    /// Creates the state machine for the process described by `env`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`OmegaParams::validate`].
    pub fn new(env: &Env, params: OmegaParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid OmegaParams: {e}");
        }
        AllToAllOmega {
            me: env.id(),
            n: env.n(),
            params,
            suspected: vec![false; env.n()],
            timeouts: vec![params.initial_timeout; env.n()],
            leader: ProcessId(0),
        }
    }

    /// The process this instance currently trusts (the Ω output).
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// Returns `true` if `q` is currently suspected.
    pub fn suspects(&self, q: ProcessId) -> bool {
        self.suspected[q.as_usize()]
    }

    /// Current timeout on candidate `q`.
    pub fn timeout_of(&self, q: ProcessId) -> Duration {
        self.timeouts[q.as_usize()]
    }

    fn monitor_timer(&self, q: ProcessId) -> TimerId {
        TimerId(MONITOR_BASE + q.0)
    }

    fn recompute_leader(&mut self, ctx: &mut Ctx<'_, AllToAllMsg, ProcessId>) {
        let best = (0..self.n as u32)
            .map(ProcessId)
            .find(|&q| q == self.me || !self.suspected[q.as_usize()])
            .expect("self is never suspected");
        if best != self.leader {
            self.leader = best;
            ctx.output(best);
        }
    }
}

impl Sm for AllToAllOmega {
    type Msg = AllToAllMsg;
    type Output = ProcessId;
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, AllToAllMsg, ProcessId>) {
        ctx.output(self.leader);
        ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
        for q in ctx.membership().others(self.me) {
            ctx.set_timer(self.monitor_timer(q), self.timeouts[q.as_usize()]);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, AllToAllMsg, ProcessId>,
        from: ProcessId,
        _msg: AllToAllMsg,
    ) {
        if self.suspected[from.as_usize()] {
            // Premature suspicion: rehabilitate and slow down.
            self.suspected[from.as_usize()] = false;
            let t = &mut self.timeouts[from.as_usize()];
            *t = self.params.timeout_policy.bump(*t);
        }
        ctx.set_timer(self.monitor_timer(from), self.timeouts[from.as_usize()]);
        self.recompute_leader(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AllToAllMsg, ProcessId>, timer: TimerId) {
        if timer == HEARTBEAT_TIMER {
            ctx.broadcast(AllToAllMsg);
            ctx.set_timer(HEARTBEAT_TIMER, self.params.eta);
            return;
        }
        let q = ProcessId(timer.0 - MONITOR_BASE);
        debug_assert!(q.as_usize() < self.n && q != self.me, "bad monitor timer");
        self.suspected[q.as_usize()] = true;
        self.recompute_leader(ctx);
        // No re-arm: the monitor re-arms when q is next heard from.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant};

    struct Harness {
        env: Env,
        sm: AllToAllOmega,
        fx: Effects<AllToAllMsg, ProcessId>,
    }

    impl Harness {
        fn new(me: u32, n: usize) -> Self {
            let env = Env::new(ProcessId(me), n);
            let sm = AllToAllOmega::new(&env, OmegaParams::default());
            Harness {
                env,
                sm,
                fx: Effects::new(),
            }
        }

        fn start(&mut self) -> Effects<AllToAllMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_start(&mut ctx);
            self.fx.take()
        }

        fn deliver(&mut self, from: u32) -> Effects<AllToAllMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_message(&mut ctx, ProcessId(from), AllToAllMsg);
            self.fx.take()
        }

        fn fire(&mut self, timer: TimerId) -> Effects<AllToAllMsg, ProcessId> {
            let mut ctx = Ctx::new(&self.env, Instant::ZERO, &mut self.fx);
            self.sm.on_timer(&mut ctx, timer);
            self.fx.take()
        }
    }

    #[test]
    fn everyone_heartbeats_every_period() {
        for me in 0..3 {
            let mut h = Harness::new(me, 3);
            h.start();
            let fx = h.fire(HEARTBEAT_TIMER);
            assert_eq!(fx.sends.len(), 2, "p{me} must broadcast every period");
        }
    }

    #[test]
    fn start_arms_monitor_per_peer() {
        let mut h = Harness::new(1, 4);
        let fx = h.start();
        // 1 heartbeat + 3 monitors.
        let sets = fx
            .timers
            .iter()
            .filter(|c| matches!(c, lls_primitives::TimerCmd::Set { .. }))
            .count();
        assert_eq!(sets, 4);
    }

    #[test]
    fn suspicion_moves_leader_to_next_unsuspected() {
        let mut h = Harness::new(2, 3);
        h.start();
        assert_eq!(h.sm.leader(), ProcessId(0));
        let fx = h.fire(TimerId(MONITOR_BASE)); // suspect p0
        assert_eq!(h.sm.leader(), ProcessId(1));
        assert_eq!(fx.outputs, vec![ProcessId(1)]);
        h.fire(TimerId(MONITOR_BASE + 1)); // suspect p1
        assert_eq!(h.sm.leader(), ProcessId(2));
        assert!(h.sm.suspects(ProcessId(0)));
    }

    #[test]
    fn hearing_again_rehabilitates_and_grows_timeout() {
        let mut h = Harness::new(2, 3);
        h.start();
        h.fire(TimerId(MONITOR_BASE));
        let t0 = h.sm.timeout_of(ProcessId(0));
        let fx = h.deliver(0);
        assert!(!h.sm.suspects(ProcessId(0)));
        assert_eq!(h.sm.leader(), ProcessId(0));
        assert_eq!(fx.outputs, vec![ProcessId(0)]);
        assert!(h.sm.timeout_of(ProcessId(0)) > t0);
    }

    #[test]
    fn self_is_leader_of_last_resort() {
        let mut h = Harness::new(2, 3);
        h.start();
        h.fire(TimerId(MONITOR_BASE));
        h.fire(TimerId(MONITOR_BASE + 1));
        assert_eq!(h.sm.leader(), ProcessId(2));
    }
}
