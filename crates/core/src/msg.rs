//! Wire messages of the communication-efficient Ω algorithm.

use lls_primitives::wire::{Wire, WireError, WireReader};
use serde::{Deserialize, Serialize};

/// Messages exchanged by [`CommEffOmega`](crate::CommEffOmega).
///
/// Both messages carry an accusation-counter value, which doubles as a
/// *phase number*:
///
/// * In `Alive`, it is the sender's own current counter — the authoritative
///   value receivers adopt.
/// * In `Accuse`, it is the counter value the accuser currently attributes to
///   the accused. The accused increments its counter only when the accusation
///   matches its current counter, which makes accusations idempotent: under
///   fair-lossy links an accuser retransmits, and duplicates or stale copies
///   must not inflate the counter more than once per "phase".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmegaMsg {
    /// "I am the leader and my accusation counter is `counter`." Broadcast
    /// every η by a process that currently trusts itself.
    Alive {
        /// Sender's authoritative accusation counter.
        counter: u64,
    },
    /// "You, my current leader, missed your deadline; I accuse you at phase
    /// `counter`." Sent point-to-point to the suspected leader only — this is
    /// what keeps the protocol communication-efficient.
    Accuse {
        /// The accuser's view of the accused's counter.
        counter: u64,
    },
}

impl Wire for OmegaMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OmegaMsg::Alive { counter } => {
                out.push(0);
                counter.encode(out);
            }
            OmegaMsg::Accuse { counter } => {
                out.push(1);
                counter.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(OmegaMsg::Alive {
                counter: u64::decode(r)?,
            }),
            1 => Ok(OmegaMsg::Accuse {
                counter: u64::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "OmegaMsg",
                tag,
            }),
        }
    }
}

/// Classifier for `netsim`-style per-kind message statistics.
///
/// # Example
///
/// ```
/// use omega::{classify_msg, OmegaMsg};
/// assert_eq!(classify_msg(&OmegaMsg::Alive { counter: 0 }), "ALIVE");
/// assert_eq!(classify_msg(&OmegaMsg::Accuse { counter: 3 }), "ACCUSE");
/// ```
pub fn classify_msg(msg: &OmegaMsg) -> &'static str {
    match msg {
        OmegaMsg::Alive { .. } => "ALIVE",
        OmegaMsg::Accuse { .. } => "ACCUSE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_stable() {
        assert_eq!(classify_msg(&OmegaMsg::Alive { counter: 9 }), "ALIVE");
        assert_eq!(classify_msg(&OmegaMsg::Accuse { counter: 9 }), "ACCUSE");
    }

    #[test]
    fn messages_are_value_types() {
        let a = OmegaMsg::Alive { counter: 1 };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, OmegaMsg::Accuse { counter: 1 });
        assert_ne!(a, OmegaMsg::Alive { counter: 2 });
    }
}
