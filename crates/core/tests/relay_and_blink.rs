//! Extension scenarios: message relaying under path-only synchrony, and the
//! deterministic blink adversary that separates adaptive from frozen
//! timeouts.

mod util;

use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{FaultPlan, LinkModel, SystemSParams, Topology};
use omega::spec::{omega_holds_by, stabilization, tail_cut};
use omega::{CommEffOmega, OmegaParams, Relay, TimeoutPolicy};
use util::{leader_trace, run_omega};

/// Star topology: only hub ↔ spoke links are timely; spoke ↔ spoke links
/// are dead. Direct Ω is hopeless for spokes agreeing on another spoke;
/// relayed Ω works because every pair is connected by a timely *path*
/// through the hub.
fn star(n: usize, hub: ProcessId) -> Topology {
    let mut topo = Topology::all_timely(n, Duration::from_ticks(2));
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            let (pa, pb) = (ProcessId(a), ProcessId(b));
            if a != b && pa != hub && pb != hub {
                topo.set_link(pa, pb, LinkModel::Dead);
            }
        }
    }
    topo
}

#[test]
fn relayed_omega_works_on_a_star_where_direct_omega_cannot() {
    let n = 5;
    let hub = ProcessId(3);
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();

    // Relayed: converges.
    let sim = run_omega(n, 2, star(n, hub), FaultPlan::new(n), 40_000, |env| {
        Relay::new(env, CommEffOmega::new(env, OmegaParams::default()))
    });
    let trace = leader_trace(&sim);
    assert!(
        omega_holds_by(&trace, &correct, tail_cut(sim.now(), 20)),
        "relayed Ω must converge on the star"
    );

    // Direct: the initial leader p0 is a spoke; its ALIVEs never reach the
    // other spokes, so the spokes churn forever (they can only ever hear the
    // hub). Convergence to a common leader is only possible on the hub —
    // and even then p0 keeps believing in candidates it cannot hear. In this
    // seed the run does not stabilize at all.
    let direct = run_omega(n, 2, star(n, hub), FaultPlan::new(n), 40_000, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let dtrace = leader_trace(&direct);
    let converged = omega_holds_by(&dtrace, &correct, tail_cut(direct.now(), 20));
    assert!(
        !converged,
        "direct Ω should not stabilize on a dead-spoke star (seed-specific sanity)"
    );
}

#[test]
fn relayed_omega_matches_direct_omega_in_system_s() {
    // On an admissible system-S topology the relay wrapper must not change
    // the outcome, only the message pattern.
    let n = 4;
    let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let sim = run_omega(n, 9, topo, FaultPlan::new(n), 60_000, |env| {
        Relay::new(env, CommEffOmega::new(env, OmegaParams::default()))
    });
    assert!(omega_holds_by(
        &leader_trace(&sim),
        &correct,
        tail_cut(sim.now(), 20)
    ));
    // Relayed communication efficiency: only one process keeps ORIGINATING.
    let stab = stabilization(&leader_trace(&sim), &correct).unwrap();
    let originators: Vec<ProcessId> = (0..n as u32)
        .map(ProcessId)
        .filter(|&p| sim.node(p).origination_count() > 0)
        .collect();
    assert!(!originators.is_empty());
    // Everyone forwards (that is the price of relaying)…
    for p in (0..n as u32).map(ProcessId) {
        assert!(sim.node(p).forward_count() > 0, "{p} never forwarded");
    }
    // …but the leader is among the originators and dominates late traffic.
    assert!(originators.contains(&stab.leader));
}

#[test]
fn blink_adversary_defeats_frozen_timeouts_but_not_adaptive_ones() {
    // EVERY process's outgoing links blink: 40 ticks on, 60 ticks off,
    // repeating. (If only one candidate blinked, the accusation-counter
    // ratchet would permanently demote it and even frozen timeouts would
    // stabilize — the counters, not the timeouts, do the demotion. With all
    // candidates blinking, no one can be ratcheted *below* everyone else
    // forever.) An adaptive timeout eventually exceeds the 60-tick off
    // phase and stops suspecting the final leader; a frozen 30-tick timeout
    // fires in every cycle forever, so the leadership churns forever.
    let n = 4;
    let mut topo = Topology::all_timely(n, Duration::from_ticks(2));
    for p in 0..n as u32 {
        topo.set_outgoing(ProcessId(p), LinkModel::blink(40, 60, 2));
    }
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();

    let adaptive = run_omega(n, 4, topo.clone(), FaultPlan::new(n), 60_000, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    assert!(
        omega_holds_by(
            &leader_trace(&adaptive),
            &correct,
            tail_cut(adaptive.now(), 20)
        ),
        "adaptive timeouts must ride out the blink"
    );

    let frozen_params = OmegaParams {
        timeout_policy: TimeoutPolicy::Frozen,
        ..OmegaParams::default()
    };
    let frozen = run_omega(n, 4, topo, FaultPlan::new(n), 60_000, |env| {
        CommEffOmega::new(env, frozen_params)
    });
    let ftrace = leader_trace(&frozen);
    let late_changes = ftrace
        .iter()
        .filter(|r| r.at >= tail_cut(frozen.now(), 20))
        .count();
    assert!(
        late_changes > 0,
        "frozen timeouts should keep churning under the blink adversary"
    );
}

#[test]
fn relay_does_not_break_crash_handling() {
    let n = 4;
    let mut faults = FaultPlan::new(n);
    faults.crash_at(ProcessId(0), Instant::from_ticks(10_000));
    let topo = Topology::all_timely(n, Duration::from_ticks(2));
    let sim = run_omega(n, 6, topo, faults, 50_000, |env| {
        Relay::new(env, CommEffOmega::new(env, OmegaParams::default()))
    });
    let correct: Vec<ProcessId> = (1..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct)
        .expect("survivors must re-elect through the relay");
    assert_ne!(stab.leader, ProcessId(0));
}
