//! Long-horizon regression for a seed where slow multiplicative timeout
//! growth (×1.5) stabilizes extremely late (~1.66M ticks): every rare
//! loss-gap cascades into a global counter reshuffle until every
//! (observer, candidate) timeout has hardened past the gap distribution.
//! The paper only requires *eventual* convergence, which this verifies;
//! the run is ignored by default because of its length (~seconds).

mod util;

use lls_primitives::ProcessId;
use netsim::{FaultPlan, SystemSParams, Topology};
use omega::spec::stabilization;
use omega::{CommEffOmega, OmegaParams, TimeoutPolicy};
use util::{leader_trace, run_omega};

#[test]
#[ignore = "multi-second long-horizon run; exercised by CI-nightly style invocations"]
fn slow_multiplicative_growth_eventually_converges() {
    let n = 5;
    let seed = 13923082122801904585u64;
    let params = OmegaParams {
        timeout_policy: TimeoutPolicy::Multiplicative { num: 3, den: 2 },
        ..OmegaParams::default()
    };
    let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
    let sim = run_omega(n, seed, topo, FaultPlan::new(n), 2_000_000, |env| {
        CommEffOmega::new(env, params)
    });
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct)
        .expect("must converge eventually even under slow growth");
    assert!(stab.at.ticks() < 1_900_000, "no margin before horizon");
}

/// A second heavy-tail regression (found by the property suite): a
/// *near-lossless* mesh (1.5 % loss) keeps every candidate attractive, so
/// rare heavy-tailed delay blips keep nudging leadership until each
/// (observer, candidate) timeout has hardened — this instance stabilizes
/// only around t ≈ 65 k. It must converge comfortably within a generous
/// horizon.
#[test]
fn heavy_tail_blips_converge_late_but_converge() {
    use lls_primitives::Instant;
    let n = 4;
    let topo = Topology::system_s(
        n,
        ProcessId(2),
        SystemSParams {
            gst: 199,
            mesh_loss: 0.01531724505667352,
            ..SystemSParams::default()
        },
    );
    let mut faults = FaultPlan::new(n);
    faults.crash_at(ProcessId(0), Instant::from_ticks(4071));
    faults.crash_at(ProcessId(3), Instant::from_ticks(168));
    let sim = run_omega(n, 14439106478458361407, topo, faults, 600_000, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let correct = vec![ProcessId(1), ProcessId(2)];
    let stab = stabilization(&leader_trace(&sim), &correct).expect("must converge");
    assert!(
        stab.at.ticks() < 500_000,
        "stabilized too late: {}",
        stab.at
    );
}
