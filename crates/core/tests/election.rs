//! End-to-end election scenarios on the simulator: the paper's two theorems
//! exercised under crashes, loss, and degraded synchrony.

mod util;

use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{FaultPlan, SimBuilder, SystemSParams, Topology};
use omega::baseline::{AllToAllOmega, BroadcastSourceOmega};
use omega::spec::{omega_holds_by, stabilization, tail_cut};
use omega::{classify_msg, CommEffOmega, OmegaParams};
use util::{correct_set, leader_trace, run_omega};

const HORIZON: u64 = 60_000;

fn system_s(n: usize, source: u32) -> Topology {
    Topology::system_s(n, ProcessId(source), SystemSParams::default())
}

#[test]
fn omega_holds_in_system_s_across_sizes_and_seeds() {
    for &n in &[3usize, 5, 8] {
        for seed in 0..5u64 {
            let source = (seed % n as u64) as u32;
            let sim = run_omega(
                n,
                seed,
                system_s(n, source),
                FaultPlan::new(n),
                HORIZON,
                |env| CommEffOmega::new(env, OmegaParams::default()),
            );
            let trace = leader_trace(&sim);
            let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
            assert!(
                omega_holds_by(&trace, &correct, tail_cut(sim.now(), 20)),
                "omega violated: n={n} seed={seed} source={source}"
            );
        }
    }
}

#[test]
fn communication_efficiency_holds_in_system_s() {
    let n = 6;
    let sim = run_omega(n, 11, system_s(n, 4), FaultPlan::new(n), HORIZON, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let cut = sim
        .stats()
        .quiescence_time(1)
        .expect("run must quiesce to a single sender");
    assert!(
        cut <= tail_cut(sim.now(), 20),
        "quiescence too late: {cut} vs horizon {}",
        sim.now()
    );
    // The lone sender is exactly the common final leader.
    let senders = sim.stats().senders_since(cut);
    let stab = stabilization(
        &leader_trace(&sim),
        &(0..n as u32).map(ProcessId).collect::<Vec<_>>(),
    )
    .expect("omega must hold");
    assert_eq!(senders, vec![stab.leader]);
}

#[test]
fn followers_send_only_accusations_and_finitely_many() {
    let n = 5;
    let mut sim = SimBuilder::new(n)
        .seed(2)
        .topology(system_s(n, 3))
        .classify(classify_msg)
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(HORIZON));
    let kinds = sim.stats().kind_counts();
    let alive = kinds.get("ALIVE").copied().unwrap_or(0);
    let accuse = kinds.get("ACCUSE").copied().unwrap_or(0);
    assert!(alive > 0, "leader must heartbeat");
    // Accusations are a stabilization-time artifact: orders of magnitude
    // fewer than heartbeats over a long run.
    assert!(
        accuse * 10 < alive,
        "too many accusations: {accuse} vs {alive} heartbeats"
    );
}

#[test]
fn leader_crash_triggers_reelection_with_two_sources() {
    let n = 5;
    // Two ♦-sources so that one can crash.
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(2)],
        SystemSParams {
            gst: 200,
            ..SystemSParams::default()
        },
    );
    let mut faults = FaultPlan::new(n);
    faults.crash_at(ProcessId(0), Instant::from_ticks(20_000));
    let sim = run_omega(n, 5, topo, faults.clone(), HORIZON, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let trace = leader_trace(&sim);
    let correct = correct_set(&faults);
    let stab = stabilization(&trace, &correct).expect("survivors must re-elect");
    assert_ne!(stab.leader, ProcessId(0), "dead process cannot stay leader");
    assert!(
        stab.at >= Instant::from_ticks(20_000),
        "re-election must happen after the crash, got {}",
        stab.at
    );
}

#[test]
fn initial_leader_crash_at_boot_is_survivable() {
    let n = 4;
    let mut faults = FaultPlan::new(n);
    faults.crash_at(ProcessId(0), Instant::from_ticks(1));
    // p1 is the source; p0 (initial default leader) dies immediately.
    let sim = run_omega(n, 9, system_s(n, 1), faults.clone(), HORIZON, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let stab = stabilization(&leader_trace(&sim), &correct_set(&faults))
        .expect("election must recover from a dead initial leader");
    assert_ne!(stab.leader, ProcessId(0));
}

#[test]
fn crashing_every_non_source_still_elects_the_survivor() {
    // The paper tolerates any number of crashes (no majority needed for Ω).
    let n = 5;
    let mut faults = FaultPlan::new(n);
    for p in [0u32, 1, 3, 4] {
        faults.crash_at(ProcessId(p), Instant::from_ticks(5_000 + 1_000 * p as u64));
    }
    let sim = run_omega(n, 3, system_s(n, 2), faults.clone(), HORIZON, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let stab = stabilization(&leader_trace(&sim), &correct_set(&faults))
        .expect("the lone survivor must trust itself");
    assert_eq!(stab.leader, ProcessId(2));
    assert!(sim.node(ProcessId(2)).is_leader());
}

#[test]
fn all_timely_topology_elects_p0_without_noise() {
    let n = 6;
    let sim = run_omega(
        n,
        0,
        Topology::all_timely(n, Duration::from_ticks(2)),
        FaultPlan::new(n),
        10_000,
        |env| CommEffOmega::new(env, OmegaParams::default()),
    );
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct).unwrap();
    assert_eq!(
        stab.leader,
        ProcessId(0),
        "perfect links keep the initial leader"
    );
    // Nobody was ever suspected: zero accusations anywhere.
    for p in 0..n as u32 {
        assert_eq!(sim.node(ProcessId(p)).accusations_sent(), 0);
    }
}

#[test]
fn late_gst_delays_but_does_not_prevent_convergence() {
    let n = 5;
    let topo = Topology::system_s(
        n,
        ProcessId(1),
        SystemSParams {
            gst: 10_000,
            ..SystemSParams::default()
        },
    );
    let sim = run_omega(n, 13, topo, FaultPlan::new(n), 120_000, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    assert!(
        omega_holds_by(&leader_trace(&sim), &correct, tail_cut(sim.now(), 20)),
        "late GST must only delay convergence"
    );
}

#[test]
fn broadcast_source_baseline_converges_to_the_source() {
    let n = 5;
    let sim = run_omega(n, 21, system_s(n, 3), FaultPlan::new(n), HORIZON, |env| {
        BroadcastSourceOmega::new(env, OmegaParams::default())
    });
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct).expect("baseline B must converge");
    assert_eq!(
        stab.leader,
        ProcessId(3),
        "gossip baseline converges to the ♦-source"
    );
    // …but it is not communication-efficient: everyone keeps sending.
    let senders = sim.stats().senders_since(tail_cut(sim.now(), 10));
    assert_eq!(senders.len(), n, "all processes gossip forever");
}

#[test]
fn all_to_all_baseline_works_on_timely_links_and_counts_n_squared() {
    let n = 6;
    let sim = run_omega(
        n,
        1,
        Topology::all_timely(n, Duration::from_ticks(2)),
        FaultPlan::new(n),
        20_000,
        |env| AllToAllOmega::new(env, OmegaParams::default()),
    );
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct).unwrap();
    assert_eq!(stab.leader, ProcessId(0));
    // Steady-state cost: every process broadcasts every η.
    let senders = sim.stats().senders_since(tail_cut(sim.now(), 10));
    assert_eq!(senders.len(), n);
}

#[test]
fn comm_efficient_beats_baselines_by_a_factor_of_n() {
    let n = 8;
    let horizon = 40_000u64;
    let total = |make_baseline: bool| -> (u64, u64) {
        if make_baseline {
            let sim = run_omega(n, 7, system_s(n, 5), FaultPlan::new(n), horizon, |env| {
                BroadcastSourceOmega::new(env, OmegaParams::default())
            });
            (sim.stats().total_sent(), 0)
        } else {
            let sim = run_omega(n, 7, system_s(n, 5), FaultPlan::new(n), horizon, |env| {
                CommEffOmega::new(env, OmegaParams::default())
            });
            (sim.stats().total_sent(), 0)
        }
    };
    let (eff, _) = total(false);
    let (base, _) = total(true);
    let ratio = base as f64 / eff as f64;
    assert!(
        ratio > (n as f64) * 0.5,
        "expected ≈ n× message reduction, got {ratio:.1}× (eff={eff}, base={base})"
    );
}

#[test]
fn deterministic_replay_produces_identical_traces() {
    let run = |seed| {
        let sim = run_omega(5, seed, system_s(5, 2), FaultPlan::new(5), 20_000, |env| {
            CommEffOmega::new(env, OmegaParams::default())
        });
        (leader_trace(&sim), sim.stats().total_sent())
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99).0.len(), 0);
}

#[test]
fn source_identity_does_not_have_to_win_but_someone_does() {
    // The theorem does not promise the ♦-source itself is elected — only
    // that *some* correct process is, permanently. Check both facts.
    let n = 5;
    for seed in 0..8u64 {
        let sim = run_omega(n, seed, system_s(n, 4), FaultPlan::new(n), HORIZON, |env| {
            CommEffOmega::new(env, OmegaParams::default())
        });
        let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        let stab = stabilization(&leader_trace(&sim), &correct)
            .unwrap_or_else(|| panic!("no agreement for seed {seed}"));
        assert!(correct.contains(&stab.leader));
    }
}

#[test]
fn final_leader_counter_is_bounded_and_accusations_stop() {
    let n = 5;
    let sim = run_omega(n, 17, system_s(n, 2), FaultPlan::new(n), 200_000, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let stab = stabilization(&leader_trace(&sim), &correct).unwrap();
    // The winner's counter as seen by everyone is identical and frozen.
    let counters: Vec<u64> = (0..n as u32)
        .map(|p| sim.node(ProcessId(p)).table().auth(stab.leader))
        .collect();
    assert!(
        counters.windows(2).all(|w| w[0] == w[1]),
        "divergent views of the winner's counter: {counters:?}"
    );
    // No correct process keeps accusing after stabilization: the only
    // sender in the tail is the leader, who sends ALIVEs.
    let cut = sim.stats().quiescence_time(1).expect("quiescence");
    assert!(cut <= tail_cut(sim.now(), 50));
}
