//! Property-based tests: the paper's theorems over randomized systems.
//!
//! Each case draws a random admissible instance of system **S** — size,
//! ♦-source identity, mesh loss rate, GST, non-source crash schedule, RNG
//! seed — and asserts that the communication-efficient algorithm satisfies
//! both theorems by the end of a long run. The generators only produce
//! *admissible* instances (the source stays correct), mirroring the paper's
//! assumptions; inadmissible instances are out of contract.
//!
//! Mesh loss is drawn from `[0.05, 0.7)`: the near-lossless corner combined
//! with heavy-tailed delays is a known metastable regime where rare delay
//! blips advance the counter race so slowly that stabilization, while still
//! almost-surely finite, has an extremely long tail — certified separately
//! by the deterministic long-horizon regression
//! `repro_mult::heavy_tail_blips_converge_late_but_converge` rather than by
//! randomized finite-horizon checks.

mod util;

use lls_primitives::{Instant, ProcessId};
use netsim::{FaultPlan, SystemSParams, Topology};
use omega::spec::{omega_holds_by, stabilization, tail_cut};
use omega::{CommEffOmega, OmegaParams, TimeoutPolicy};
use proptest::prelude::*;
use util::{correct_set, leader_trace, run_omega};

/// An admissible instance of system S.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    source: u32,
    seed: u64,
    gst: u64,
    mesh_loss: f64,
    /// Crash times for a subset of non-source processes.
    crashes: Vec<(u32, u64)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=7, any::<u64>(), 0u64..3_000, 0.05f64..0.7)
        .prop_flat_map(|(n, seed, gst, mesh_loss)| {
            let source = 0u32..n as u32;
            (Just(n), source, Just(seed), Just(gst), Just(mesh_loss))
        })
        .prop_flat_map(|(n, source, seed, gst, mesh_loss)| {
            // Crash any subset of the non-source processes.
            let others: Vec<u32> = (0..n as u32).filter(|&p| p != source).collect();
            let crashes = proptest::sample::subsequence(others.clone(), 0..=others.len())
                .prop_flat_map(move |victims| {
                    let times = proptest::collection::vec(0u64..20_000, victims.len());
                    (Just(victims), times)
                })
                .prop_map(|(victims, times)| victims.into_iter().zip(times).collect::<Vec<_>>());
            (
                Just(Instance {
                    n,
                    source,
                    seed,
                    gst,
                    mesh_loss,
                    crashes: Vec::new(),
                }),
                crashes,
            )
        })
        .prop_map(|(mut inst, crashes)| {
            inst.crashes = crashes;
            inst
        })
}

fn run_instance(
    inst: &Instance,
    horizon: u64,
) -> (Vec<ProcessId>, netsim::Simulator<CommEffOmega>) {
    let topo = Topology::system_s(
        inst.n,
        ProcessId(inst.source),
        SystemSParams {
            gst: inst.gst,
            mesh_loss: inst.mesh_loss,
            ..SystemSParams::default()
        },
    );
    let mut faults = FaultPlan::new(inst.n);
    for &(p, t) in &inst.crashes {
        faults.crash_at(ProcessId(p), Instant::from_ticks(t));
    }
    let sim = run_omega(inst.n, inst.seed, topo, faults.clone(), horizon, |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    (correct_set(&faults), sim)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 1 (Ω): every admissible instance converges to a single
    /// correct leader well before the horizon. The horizon is generous:
    /// stabilization time is heavy-tailed (rare heavy-tail delay blips can
    /// nudge leadership late in near-lossless meshes — see
    /// `heavy_tail_blips_converge_late_but_converge`), and the theorem only
    /// promises "eventually".
    #[test]
    fn omega_holds_on_random_instances(inst in instance()) {
        let horizon = 200_000;
        let (correct, sim) = run_instance(&inst, horizon);
        let trace = leader_trace(&sim);
        prop_assert!(
            omega_holds_by(&trace, &correct, tail_cut(sim.now(), 20)),
            "instance {inst:?} did not converge"
        );
    }

    /// Theorem 2 (communication efficiency): eventually at most one process
    /// sends; and that process is the elected leader.
    #[test]
    fn communication_efficiency_on_random_instances(inst in instance()) {
        let horizon = 200_000;
        let (correct, sim) = run_instance(&inst, horizon);
        let cut = sim.stats().quiescence_time(1);
        prop_assert!(cut.is_some(), "no quiescence on {inst:?}");
        let cut = cut.unwrap();
        prop_assert!(
            cut <= tail_cut(sim.now(), 20),
            "late quiescence ({cut}) on {inst:?}"
        );
        let stab = stabilization(&leader_trace(&sim), &correct).expect("omega must hold");
        let senders = sim.stats().senders_since(cut);
        prop_assert!(senders.len() <= 1);
        if let Some(&only) = senders.first() {
            prop_assert_eq!(only, stab.leader);
        }
    }

    /// Counter sanity: authoritative counters are consistent (no process
    /// knows a bigger counter for q than q itself knows — q is the origin of
    /// all authoritative growth).
    #[test]
    fn authoritative_counters_never_exceed_origin(inst in instance()) {
        let (correct, sim) = run_instance(&inst, 40_000);
        for &q in &correct {
            let origin = sim.node(q).own_counter();
            for p in 0..inst.n as u32 {
                let seen = sim.node(ProcessId(p)).table().auth(q);
                prop_assert!(
                    seen <= origin,
                    "p{p} believes counter {seen} for {q}, origin has {origin}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Timeout-policy robustness: additive growth and (fast) multiplicative
    /// growth both satisfy Ω within a tight deadline. Slow multiplicative
    /// growth (×1.5) also converges but with a heavy-tailed stabilization
    /// time — see `slow_multiplicative_growth_eventually_converges` and the
    /// E9 ablation — so it is not asserted under this deadline. The broken
    /// `Frozen` policy is exercised by E9.
    #[test]
    fn growth_policies_both_converge(
        seed in any::<u64>(),
        source in 0u32..5,
        additive in proptest::bool::ANY,
    ) {
        let n = 5;
        let params = OmegaParams {
            timeout_policy: if additive {
                TimeoutPolicy::Additive { step: lls_primitives::Duration::from_ticks(5) }
            } else {
                TimeoutPolicy::Multiplicative { num: 2, den: 1 }
            },
            ..OmegaParams::default()
        };
        let topo = Topology::system_s(n, ProcessId(source), SystemSParams::default());
        let sim = run_omega(n, seed, topo, FaultPlan::new(n), 80_000, |env| {
            CommEffOmega::new(env, params)
        });
        let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
        prop_assert!(omega_holds_by(&leader_trace(&sim), &correct, tail_cut(sim.now(), 20)));
    }
}
