//! Shared helpers for the election integration tests.

use lls_primitives::{Env, Instant, ProcessId, Sm};
use netsim::{FaultPlan, SimBuilder, Simulator, Topology};
use omega::spec::LeaderRecord;

/// Builds `LeaderRecord`s from a simulator whose output type is `ProcessId`.
pub fn leader_trace<S>(sim: &Simulator<S>) -> Vec<LeaderRecord>
where
    S: Sm<Output = ProcessId>,
{
    sim.outputs()
        .iter()
        .map(|e| LeaderRecord {
            at: e.at,
            process: e.process,
            leader: e.output,
        })
        .collect()
}

/// Runs an Ω state machine on a topology with a fault plan and returns the
/// simulator after `horizon` ticks.
pub fn run_omega<S, F>(
    n: usize,
    seed: u64,
    topology: Topology,
    faults: FaultPlan,
    horizon: u64,
    make: F,
) -> Simulator<S>
where
    S: Sm<Output = ProcessId, Request = ()>,
    F: FnMut(&Env) -> S,
{
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topology)
        .faults(faults)
        .build_with(make);
    sim.run_until(Instant::from_ticks(horizon));
    sim
}

/// Ids of processes that survive a fault plan.
#[allow(dead_code)] // used by some, not all, test binaries that include this module
pub fn correct_set(faults: &FaultPlan) -> Vec<ProcessId> {
    faults.correct().collect()
}
