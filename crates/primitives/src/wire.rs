//! Hand-rolled, versioned binary wire codec shared by every transport that
//! moves protocol messages across a real byte stream (today: `wirenet`).
//!
//! # Frame format
//!
//! Every message travels in one *frame*:
//!
//! ```text
//! +----------------+---------+----------------+----------------+
//! | len: u32 LE    | ver: u8 | body: [u8]     | crc: u32 LE    |
//! +----------------+---------+----------------+----------------+
//! ```
//!
//! `len` counts everything after itself (`1 + body.len() + 4`). `crc` is the
//! IEEE CRC-32 of the version byte plus the body. Because the length prefix
//! frames the stream independently of the payload, a frame whose checksum or
//! body fails to decode can be *skipped* — the reader stays aligned on the
//! next frame boundary (resynchronisation), which is what lets a transport
//! count a corrupted frame and move on instead of tearing the connection
//! down.
//!
//! # Value encoding
//!
//! * `u8` — one raw byte.
//! * `u16`/`u32`/`u64`/`usize` — LEB128 varint (small counters stay small).
//! * `bool` — one byte, `0` or `1`; anything else is a decode error.
//! * `String` — varint byte length, then UTF-8 bytes.
//! * `Option<T>` — presence byte then the value.
//! * `Vec<T>` — varint element count, then elements. The count is validated
//!   against the bytes actually remaining, so a forged length cannot trigger
//!   a huge allocation.
//! * enums — one tag byte, then the variant's fields in declaration order.
//!
//! Decoding never panics on malformed input: every failure is a
//! [`WireError`].

use std::fmt;

use crate::id::ProcessId;

/// Protocol version stamped into every frame. Bump on any incompatible
/// change to the value encoding of an existing message type.
pub const PROTOCOL_VERSION: u8 = 1;

/// Protocol version for frames that carry a [`TraceEnvelope`] between the
/// version byte and the body. Version 1 frames (no envelope) remain
/// decodable — see [`decode_frame_any`].
pub const PROTOCOL_VERSION_STAMPED: u8 = 2;

/// Protocol version for frames that carry a shard tag (varint) *and* a
/// [`TraceEnvelope`] between the version byte and the body. The tag lets a
/// transport demultiplex co-located shard groups without decoding the body.
/// Version 1 and 2 frames remain decodable — see [`decode_frame_any`].
pub const PROTOCOL_VERSION_SHARDED: u8 = 3;

/// Upper bound on `len` accepted by the deframer. A peer announcing a larger
/// frame is corrupt or hostile; the connection should be dropped because the
/// stream can no longer be trusted to be aligned.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Size of the `len` prefix.
const LEN_PREFIX: usize = 4;
/// Bytes of frame overhead beyond the body: version byte + CRC-32.
const FRAME_OVERHEAD: usize = 5;

/// Everything that can go wrong while decoding.
///
/// Decoders return errors — they never panic on malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended in the middle of a value.
    Truncated,
    /// A varint ran past 10 bytes (cannot be a `u64`).
    VarintOverflow,
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// An enum tag byte matched no variant.
    BadTag {
        /// The type being decoded.
        type_name: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// A collection announced more elements than the remaining bytes could
    /// possibly hold.
    BadLength {
        /// The announced element count.
        announced: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A frame announced a length of zero or above [`MAX_FRAME_LEN`].
    FrameTooLong {
        /// The announced frame length.
        len: usize,
    },
    /// The frame's version byte matched no supported protocol version.
    BadVersion {
        /// The version byte found.
        got: u8,
    },
    /// The frame's CRC-32 did not match its contents.
    BadChecksum {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum computed over the frame.
        want: u32,
    },
    /// A frame body decoded successfully but left bytes unconsumed.
    TrailingBytes {
        /// Number of leftover bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-value"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::BadBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            WireError::BadTag { type_name, tag } => {
                write!(f, "invalid tag {tag:#04x} for {type_name}")
            }
            WireError::BadUtf8 => write!(f, "string bytes are not valid UTF-8"),
            WireError::BadLength {
                announced,
                remaining,
            } => write!(
                f,
                "collection announces {announced} elements but only {remaining} bytes remain"
            ),
            WireError::FrameTooLong { len } => {
                write!(f, "frame length {len} outside (0, {MAX_FRAME_LEN}]")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version {got} (supported: {PROTOCOL_VERSION}, \
                     {PROTOCOL_VERSION_STAMPED}, {PROTOCOL_VERSION_SHARDED})"
                )
            }
            WireError::BadChecksum { got, want } => {
                write!(
                    f,
                    "checksum mismatch: frame says {got:#010x}, computed {want:#010x}"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Fails with [`WireError::TrailingBytes`] unless everything was
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// Appends a LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A type with a hand-rolled binary encoding.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the bytes `encode` produced.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: the encoding as a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must span all of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input or trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// The shard tag a sharded transport should stamp into this message's
    /// frame, or `None` to send an unsharded (version-2) frame. Messages
    /// that belong to one shard group override this; everything else —
    /// including the shared per-node Ω traffic — keeps the default and
    /// travels untagged.
    fn shard_tag(&self) -> Option<u32> {
        None
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

macro_rules! wire_varint {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                put_varint(out, *self as u64);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = r.varint()?;
                <$t>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
        }
    )*};
}
wire_varint!(u16, u32, u64, usize);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        if len > r.remaining() {
            return Err(WireError::BadLength {
                announced: len,
                remaining: r.remaining(),
            });
        }
        let bytes = r.bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                type_name: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        // Every element costs at least one byte, so a count beyond the
        // remaining bytes is provably corrupt — reject before allocating.
        if len > r.remaining() {
            return Err(WireError::BadLength {
                announced: len,
                remaining: r.remaining(),
            });
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

macro_rules! wire_tuple {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}
wire_tuple!(A, B);
wire_tuple!(A, B, C);

impl Wire for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ProcessId(u32::decode(r)?))
    }
}

/// Compact causal-position stamp carried by version-2 frames, between the
/// version byte and the message body.
///
/// `lamport` is the sender's Lamport clock *after* ticking for this send;
/// `trace_id` is the sender's 64-bit trace/epoch id (constant per run or
/// per incarnation — it groups frames belonging to one causal experiment).
/// Both are varint-encoded, so a young clock costs two bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEnvelope {
    /// Sender's Lamport clock value at send time.
    pub lamport: u64,
    /// Sender's trace/epoch id.
    pub trace_id: u64,
}

impl Wire for TraceEnvelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lamport.encode(out);
        self.trace_id.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceEnvelope {
            lamport: u64::decode(r)?,
            trace_id: u64::decode(r)?,
        })
    }
}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Encodes `msg` as one complete frame (length prefix included).
pub fn encode_frame<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.push(PROTOCOL_VERSION);
    msg.encode(&mut out);
    let crc = crc32(&out[LEN_PREFIX..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = (out.len() - LEN_PREFIX) as u32;
    out[..LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
    out
}

/// Decodes a frame *payload* — the bytes after the length prefix, i.e.
/// `version | body | crc` — as produced by [`Deframer::next_frame`].
///
/// # Errors
///
/// Returns [`WireError::BadVersion`], [`WireError::BadChecksum`], or any
/// body decode error. None of these desynchronise the stream: the caller
/// already holds a complete, well-delimited frame and can simply skip it.
pub fn decode_frame<M: Wire>(payload: &[u8]) -> Result<M, WireError> {
    if payload.len() < FRAME_OVERHEAD {
        return Err(WireError::Truncated);
    }
    let (content, crc_bytes) = payload.split_at(payload.len() - 4);
    let got = u32::from_le_bytes(crc_bytes.try_into().expect("split at len-4"));
    let want = crc32(content);
    if got != want {
        return Err(WireError::BadChecksum { got, want });
    }
    let version = content[0];
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    M::from_bytes(&content[1..])
}

/// Encodes `msg` as one complete version-2 frame carrying a
/// [`TraceEnvelope`] between the version byte and the body.
pub fn encode_frame_stamped<M: Wire>(msg: &M, env: &TraceEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.push(PROTOCOL_VERSION_STAMPED);
    env.encode(&mut out);
    msg.encode(&mut out);
    let crc = crc32(&out[LEN_PREFIX..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = (out.len() - LEN_PREFIX) as u32;
    out[..LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
    out
}

/// Encodes `msg` as one complete version-3 frame carrying a shard tag
/// (varint) and a [`TraceEnvelope`] between the version byte and the body.
pub fn encode_frame_sharded<M: Wire>(msg: &M, shard: u32, env: &TraceEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.push(PROTOCOL_VERSION_SHARDED);
    put_varint(&mut out, u64::from(shard));
    env.encode(&mut out);
    msg.encode(&mut out);
    let crc = crc32(&out[LEN_PREFIX..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = (out.len() - LEN_PREFIX) as u32;
    out[..LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
    out
}

/// Transport-level metadata recovered from one frame, alongside the decoded
/// message: the causal stamp (versions 2 and 3) and the shard tag
/// (version 3 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameMeta {
    /// The causal stamp, if the frame carried one.
    pub envelope: Option<TraceEnvelope>,
    /// The shard tag, if the frame was shard-routed.
    pub shard: Option<u32>,
}

/// Decodes a frame payload of *any* supported version, returning the full
/// [`FrameMeta`]: version 1 yields neither stamp nor tag, version 2 a stamp
/// only, version 3 both.
///
/// # Errors
///
/// Returns [`WireError::BadVersion`] for any other version byte,
/// [`WireError::BadChecksum`] on corruption, or any body decode error.
pub fn decode_frame_tagged<M: Wire>(payload: &[u8]) -> Result<(FrameMeta, M), WireError> {
    if payload.len() < FRAME_OVERHEAD {
        return Err(WireError::Truncated);
    }
    let (content, crc_bytes) = payload.split_at(payload.len() - 4);
    let got = u32::from_le_bytes(crc_bytes.try_into().expect("split at len-4"));
    let want = crc32(content);
    if got != want {
        return Err(WireError::BadChecksum { got, want });
    }
    match content[0] {
        v if v == PROTOCOL_VERSION => Ok((FrameMeta::default(), M::from_bytes(&content[1..])?)),
        v if v == PROTOCOL_VERSION_STAMPED => {
            let mut r = WireReader::new(&content[1..]);
            let env = TraceEnvelope::decode(&mut r)?;
            let msg = M::decode(&mut r)?;
            r.finish()?;
            Ok((
                FrameMeta {
                    envelope: Some(env),
                    shard: None,
                },
                msg,
            ))
        }
        v if v == PROTOCOL_VERSION_SHARDED => {
            let mut r = WireReader::new(&content[1..]);
            let shard = u32::decode(&mut r)?;
            let env = TraceEnvelope::decode(&mut r)?;
            let msg = M::decode(&mut r)?;
            r.finish()?;
            Ok((
                FrameMeta {
                    envelope: Some(env),
                    shard: Some(shard),
                },
                msg,
            ))
        }
        got => Err(WireError::BadVersion { got }),
    }
}

/// Decodes a frame payload of *any* supported version: a bare version-1
/// frame yields `(None, msg)`; stamped version-2 and sharded version-3
/// frames yield `(Some(envelope), msg)` (the shard tag, redundant with the
/// message body, is dropped — use [`decode_frame_tagged`] to keep it).
///
/// This is the receive path every stamped transport should use — it keeps a
/// stamping node wire-compatible with an unstamped (pre-upgrade) peer.
///
/// # Errors
///
/// Returns [`WireError::BadVersion`] for any other version byte,
/// [`WireError::BadChecksum`] on corruption, or any body decode error.
pub fn decode_frame_any<M: Wire>(payload: &[u8]) -> Result<(Option<TraceEnvelope>, M), WireError> {
    let (meta, msg) = decode_frame_tagged(payload)?;
    Ok((meta.envelope, msg))
}

/// Incremental frame extractor for a byte stream.
///
/// Feed raw bytes with [`extend`](Deframer::extend); pull complete frame
/// payloads with [`next_frame`](Deframer::next_frame). Only an oversized (or
/// zero) length prefix is fatal — checksum and decode errors are per-frame
/// and leave the stream aligned.
#[derive(Debug, Default)]
pub struct Deframer {
    buf: Vec<u8>,
}

impl Deframer {
    /// An empty deframer.
    pub fn new() -> Self {
        Deframer::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload (`version | body | crc`), or
    /// `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::FrameTooLong`] when the length prefix is zero,
    /// below the frame overhead, or above [`MAX_FRAME_LEN`] — the stream is
    /// then unrecoverable and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < LEN_PREFIX {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
        if !(FRAME_OVERHEAD..=MAX_FRAME_LEN).contains(&len) {
            return Err(WireError::FrameTooLong { len });
        }
        if self.buf.len() < LEN_PREFIX + len {
            return Ok(None);
        }
        let payload = self.buf[LEN_PREFIX..LEN_PREFIX + len].to_vec();
        self.buf.drain(..LEN_PREFIX + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Wire + PartialEq + std::fmt::Debug>(msg: M) {
        let bytes = msg.to_bytes();
        assert_eq!(M::from_bytes(&bytes).expect("roundtrip"), msg);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(300u16);
        roundtrip(70_000u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7u64, String::from("x")));
        roundtrip((1u64, 2u64, 3u64));
        roundtrip(ProcessId(17));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            roundtrip(v);
        }
        // 127 fits one byte, 128 needs two.
        assert_eq!(127u64.to_bytes().len(), 1);
        assert_eq!(128u64.to_bytes().len(), 2);
        assert_eq!(u64::MAX.to_bytes().len(), 10);
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 11 continuation bytes can never terminate a u64.
        let bytes = [0xffu8; 11];
        assert_eq!(u64::from_bytes(&bytes), Err(WireError::VarintOverflow));
        // 10 bytes whose top byte overflows bit 63.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        assert_eq!(u64::from_bytes(&bytes), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bad_bool_and_bad_option_tag() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::BadBool(2)));
        assert!(matches!(
            Option::<u64>::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn forged_vec_length_is_rejected_without_allocating() {
        // Announces u64::MAX/2 elements with two bytes of data.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX / 2);
        bytes.extend_from_slice(&[1, 2]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn truncated_string_is_rejected() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 10);
        bytes.extend_from_slice(b"abc");
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 2);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let frame = encode_frame(&(7u64, String::from("leader")));
        let mut d = Deframer::new();
        d.extend(&frame);
        let payload = d.next_frame().expect("aligned").expect("complete");
        let msg: (u64, String) = decode_frame(&payload).expect("valid");
        assert_eq!(msg, (7, String::from("leader")));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn deframer_handles_split_and_coalesced_frames() {
        let f1 = encode_frame(&1u64);
        let f2 = encode_frame(&2u64);
        let mut joined = f1.clone();
        joined.extend_from_slice(&f2);
        // Feed one byte at a time: frames appear exactly at their boundary.
        let mut d = Deframer::new();
        let mut got = Vec::new();
        for &b in &joined {
            d.extend(&[b]);
            while let Some(p) = d.next_frame().expect("aligned") {
                got.push(decode_frame::<u64>(&p).expect("valid"));
            }
        }
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn corrupted_frame_is_skipped_and_stream_resyncs() {
        let mut f1 = encode_frame(&1u64);
        let f2 = encode_frame(&2u64);
        // Flip a bit inside frame 1's body (after the length prefix).
        let mid = LEN_PREFIX + 2;
        f1[mid] ^= 0x40;
        let mut d = Deframer::new();
        d.extend(&f1);
        d.extend(&f2);
        let p1 = d.next_frame().expect("aligned").expect("complete");
        assert!(matches!(
            decode_frame::<u64>(&p1),
            Err(WireError::BadChecksum { .. })
        ));
        // The stream stays aligned: the next frame decodes fine.
        let p2 = d.next_frame().expect("aligned").expect("complete");
        assert_eq!(decode_frame::<u64>(&p2).expect("valid"), 2);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut frame = encode_frame(&1u64);
        frame[LEN_PREFIX] = PROTOCOL_VERSION + 1;
        // Fix up the checksum so only the version differs.
        let end = frame.len() - 4;
        let crc = crc32(&frame[LEN_PREFIX..end]).to_le_bytes();
        frame[end..].copy_from_slice(&crc);
        let mut d = Deframer::new();
        d.extend(&frame);
        let p = d.next_frame().expect("aligned").expect("complete");
        assert!(matches!(
            decode_frame::<u64>(&p),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut d = Deframer::new();
        d.extend(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            d.next_frame(),
            Err(WireError::FrameTooLong { .. })
        ));
        let mut d = Deframer::new();
        d.extend(&0u32.to_le_bytes());
        assert!(matches!(
            d.next_frame(),
            Err(WireError::FrameTooLong { .. })
        ));
    }

    #[test]
    fn stamped_frame_roundtrips() {
        let env = TraceEnvelope {
            lamport: 42,
            trace_id: 0xfeed_beef,
        };
        let frame = encode_frame_stamped(&(7u64, String::from("leader")), &env);
        let mut d = Deframer::new();
        d.extend(&frame);
        let payload = d.next_frame().expect("aligned").expect("complete");
        let (got_env, msg): (Option<TraceEnvelope>, (u64, String)) =
            decode_frame_any(&payload).expect("valid");
        assert_eq!(got_env, Some(env));
        assert_eq!(msg, (7, String::from("leader")));
    }

    #[test]
    fn decode_frame_any_accepts_unstamped_v1_frames() {
        let frame = encode_frame(&99u64);
        let mut d = Deframer::new();
        d.extend(&frame);
        let payload = d.next_frame().expect("aligned").expect("complete");
        let (env, msg): (Option<TraceEnvelope>, u64) =
            decode_frame_any(&payload).expect("v1 stays decodable");
        assert_eq!(env, None);
        assert_eq!(msg, 99);
    }

    #[test]
    fn strict_v1_decoder_rejects_stamped_frames() {
        // decode_frame is the strict v1 path (handshakes); a v2 frame must
        // surface as BadVersion there, not as garbage.
        let env = TraceEnvelope {
            lamport: 1,
            trace_id: 2,
        };
        let frame = encode_frame_stamped(&1u64, &env);
        let payload = frame[LEN_PREFIX..].to_vec();
        assert_eq!(
            decode_frame::<u64>(&payload),
            Err(WireError::BadVersion {
                got: PROTOCOL_VERSION_STAMPED
            })
        );
    }

    #[test]
    fn decode_frame_any_rejects_unknown_versions_and_corruption() {
        let mut frame = encode_frame(&1u64);
        frame[LEN_PREFIX] = 77;
        let end = frame.len() - 4;
        let crc = crc32(&frame[LEN_PREFIX..end]).to_le_bytes();
        frame[end..].copy_from_slice(&crc);
        assert_eq!(
            decode_frame_any::<u64>(&frame[LEN_PREFIX..]),
            Err(WireError::BadVersion { got: 77 })
        );
        let mut corrupt = encode_frame_stamped(
            &5u64,
            &TraceEnvelope {
                lamport: 9,
                trace_id: 9,
            },
        );
        let mid = LEN_PREFIX + 3;
        corrupt[mid] ^= 0x10;
        assert!(matches!(
            decode_frame_any::<u64>(&corrupt[LEN_PREFIX..]),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn sharded_frame_roundtrips_with_tag() {
        let env = TraceEnvelope {
            lamport: 11,
            trace_id: 0xdead_cafe,
        };
        let frame = encode_frame_sharded(&(3u64, String::from("group")), 5, &env);
        let mut d = Deframer::new();
        d.extend(&frame);
        let payload = d.next_frame().expect("aligned").expect("complete");
        let (meta, msg): (FrameMeta, (u64, String)) = decode_frame_tagged(&payload).expect("valid");
        assert_eq!(meta.envelope, Some(env));
        assert_eq!(meta.shard, Some(5));
        assert_eq!(msg, (3, String::from("group")));
    }

    #[test]
    fn decode_frame_any_accepts_sharded_v3_frames() {
        let env = TraceEnvelope {
            lamport: 1,
            trace_id: 2,
        };
        let frame = encode_frame_sharded(&77u64, 3, &env);
        let payload = frame[LEN_PREFIX..].to_vec();
        let (got_env, msg): (Option<TraceEnvelope>, u64) =
            decode_frame_any(&payload).expect("v3 decodable on the any-path");
        assert_eq!(got_env, Some(env));
        assert_eq!(msg, 77);
    }

    #[test]
    fn decode_frame_tagged_reports_no_tag_on_v1_and_v2() {
        let payload = encode_frame(&9u64)[LEN_PREFIX..].to_vec();
        let (meta, msg): (FrameMeta, u64) = decode_frame_tagged(&payload).expect("v1");
        assert_eq!(meta, FrameMeta::default());
        assert_eq!(msg, 9);

        let env = TraceEnvelope {
            lamport: 4,
            trace_id: 8,
        };
        let payload = encode_frame_stamped(&9u64, &env)[LEN_PREFIX..].to_vec();
        let (meta, _): (FrameMeta, u64) = decode_frame_tagged(&payload).expect("v2");
        assert_eq!(meta.envelope, Some(env));
        assert_eq!(meta.shard, None);
    }

    #[test]
    fn strict_v1_decoder_rejects_sharded_frames() {
        let env = TraceEnvelope {
            lamport: 1,
            trace_id: 2,
        };
        let frame = encode_frame_sharded(&1u64, 0, &env);
        let payload = frame[LEN_PREFIX..].to_vec();
        assert_eq!(
            decode_frame::<u64>(&payload),
            Err(WireError::BadVersion {
                got: PROTOCOL_VERSION_SHARDED
            })
        );
    }

    #[test]
    fn corrupted_sharded_frame_is_a_checksum_error() {
        let mut frame = encode_frame_sharded(
            &5u64,
            7,
            &TraceEnvelope {
                lamport: 9,
                trace_id: 9,
            },
        );
        let mid = LEN_PREFIX + 3;
        frame[mid] ^= 0x10;
        assert!(matches!(
            decode_frame_tagged::<u64>(&frame[LEN_PREFIX..]),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn shard_tag_defaults_to_none() {
        assert_eq!(7u64.shard_tag(), None);
        assert_eq!(String::from("x").shard_tag(), None);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 1u64.to_bytes();
        bytes.push(0);
        assert_eq!(
            u64::from_bytes(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }
}
