//! Shared fault injection: the loss/delay model applied to messages in
//! flight, used identically by the thread mesh (`threadnet`) and the TCP
//! substrate (`wirenet`).
//!
//! The injector is deliberately self-contained (its PRNG is an internal
//! xorshift, no external dependency) so that the primitives crate stays
//! dependency-free and both runtimes sample from the same model.

use std::time::Duration as StdDuration;

/// The fate the injector assigns to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The message is silently dropped (fair-lossy link).
    Drop,
    /// The message is delivered after the given extra delay.
    DeliverAfter(StdDuration),
}

/// A seeded loss/delay model over wall-clock time.
///
/// * Each message is dropped independently with probability `loss`.
/// * Surviving messages are held for a delay drawn uniformly from
///   `[min_delay, max_delay]`.
///
/// Sampling is deterministic per seed, so a run can be replayed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    loss: f64,
    min_delay: StdDuration,
    max_delay: StdDuration,
    state: u64,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]` or `min_delay > max_delay`.
    pub fn new(loss: f64, min_delay: StdDuration, max_delay: StdDuration, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        assert!(
            min_delay <= max_delay,
            "min_delay must not exceed max_delay"
        );
        FaultInjector {
            loss,
            min_delay,
            max_delay,
            // Avoid the xorshift fixed point at zero.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// An injector that never drops and never delays.
    pub fn passthrough() -> Self {
        FaultInjector::new(0.0, StdDuration::ZERO, StdDuration::ZERO, 0)
    }

    /// The configured loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Decides one message's fate.
    pub fn fate(&mut self) -> Fate {
        if self.should_drop() {
            Fate::Drop
        } else {
            Fate::DeliverAfter(self.sample_delay())
        }
    }

    /// Samples the drop decision alone.
    pub fn should_drop(&mut self) -> bool {
        self.loss > 0.0 && self.next_f64() < self.loss
    }

    /// Samples a delay alone, uniform in `[min_delay, max_delay]`.
    pub fn sample_delay(&mut self) -> StdDuration {
        let (lo, hi) = (self.min_delay, self.max_delay);
        self.sample_between(lo, hi)
    }

    /// Samples uniformly from `[lo, hi]`, ignoring the configured delay
    /// bounds. Useful as a general jitter source (e.g. reconnect backoff).
    pub fn sample_between(&mut self, lo: StdDuration, hi: StdDuration) -> StdDuration {
        let spread = hi.saturating_sub(lo).as_nanos() as u64;
        if spread == 0 {
            return lo;
        }
        // Widening multiply maps a u64 draw onto [0, spread] without bias
        // worth caring about at these magnitudes.
        let extra = ((u128::from(self.next_u64()) * u128::from(spread + 1)) >> 64) as u64;
        lo + StdDuration::from_nanos(extra)
    }

    /// xorshift64*: tiny, fast, and plenty for fault sampling.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mk = || {
            FaultInjector::new(
                0.3,
                StdDuration::from_micros(100),
                StdDuration::from_micros(900),
                42,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..100 {
            assert_eq!(a.fate(), b.fate());
        }
    }

    #[test]
    fn passthrough_never_drops_or_delays() {
        let mut inj = FaultInjector::passthrough();
        for _ in 0..100 {
            assert_eq!(inj.fate(), Fate::DeliverAfter(StdDuration::ZERO));
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(0.5, StdDuration::ZERO, StdDuration::ZERO, 7);
        let drops = (0..10_000).filter(|_| inj.should_drop()).count();
        assert!(
            (4_000..6_000).contains(&drops),
            "drops {drops} far from 50%"
        );
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut inj = FaultInjector::new(0.0, StdDuration::ZERO, StdDuration::from_millis(1), 7);
        assert!((0..1_000).all(|_| !inj.should_drop()));
    }

    #[test]
    fn full_loss_always_drops() {
        let mut inj = FaultInjector::new(1.0, StdDuration::ZERO, StdDuration::ZERO, 7);
        assert!((0..1_000).all(|_| inj.should_drop()));
    }

    #[test]
    fn delays_stay_within_bounds() {
        let lo = StdDuration::from_micros(200);
        let hi = StdDuration::from_millis(1);
        let mut inj = FaultInjector::new(0.0, lo, hi, 99);
        for _ in 0..1_000 {
            let d = inj.sample_delay();
            assert!(d >= lo && d <= hi, "delay {d:?} outside [{lo:?}, {hi:?}]");
        }
    }

    #[test]
    fn seed_zero_is_usable() {
        let mut inj = FaultInjector::new(0.5, StdDuration::ZERO, StdDuration::ZERO, 0);
        // Must not get stuck at the xorshift fixed point.
        let drops = (0..1_000).filter(|_| inj.should_drop()).count();
        assert!(drops > 0 && drops < 1_000);
    }
}
