//! Durable per-process storage for crash–restart survival.
//!
//! The paper's model is crash-stop, but the follow-up crash-recovery work
//! (Larrea/Martín/Soraluze, JSS 2011) makes precise what a process must
//! persist so that a restart cannot un-say anything it said before the
//! crash: the Ω accusation counter, and the consensus acceptor state
//! (promised ballot, accepted ballot/value, decided prefix). This module
//! provides the substrate-independent storage those protocols write through:
//!
//! * [`Storage`] — the minimal append/load contract: an ordered log of
//!   opaque byte records;
//! * [`MemStorage`] — an in-memory log that survives a *simulated* restart
//!   (the handle outlives the state machine) but not the host process; the
//!   deterministic backend used by `netsim` and `threadnet` campaigns;
//! * [`FileWal`] — an append-only file WAL whose records are framed with the
//!   [`wire`](crate::wire) codec (length prefix, protocol version, CRC-32).
//!   Recovery scans from the front and truncates at the first torn or
//!   corrupt frame, keeping the longest valid prefix;
//! * [`StorageHandle`] — a cloneable, thread-safe handle shared between the
//!   harness (which keeps it across kill/restart) and the state machine
//!   incarnations (which write through it).
//!
//! # Write-ahead discipline
//!
//! State machines append a record *inside* the handler that mutates the
//! crash-critical state, before the handler returns. Because every runtime
//! in this workspace drains effects only after the handler returns, the
//! record is durable before any message reflecting the new state can reach
//! the network — the classic write-ahead rule.
//!
//! # Example
//!
//! ```
//! use lls_primitives::storage::StorageHandle;
//!
//! let store = StorageHandle::in_memory();
//! store.append(b"promise 3").unwrap();
//! store.append(b"accept 3 v").unwrap();
//! // ... the process is killed; a new incarnation reloads:
//! let records = store.load().unwrap();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0], b"promise 3");
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::wire::{decode_frame, encode_frame, Wire, WireError, MAX_FRAME_LEN};

/// Bytes of the little-endian length prefix in front of every WAL frame
/// (same framing as the stream transports; see [`crate::wire::encode_frame`]).
const LEN_PREFIX: usize = 4;

/// Why a storage operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O operation on the backing medium failed.
    Io {
        /// Which operation failed (`"open"`, `"append"`, `"load"`, ...).
        op: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail (path, OS message).
        detail: String,
    },
    /// A record loaded from storage failed typed decoding. Distinct from
    /// recovery-time frame corruption, which is silently truncated: a frame
    /// with a *valid* checksum but an undecodable body means the caller is
    /// reading the log with the wrong record type.
    Decode(WireError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, kind, detail } => {
                write!(f, "storage {op} failed ({kind:?}): {detail}")
            }
            StorageError::Decode(e) => write!(f, "stored record failed to decode: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<WireError> for StorageError {
    fn from(e: WireError) -> Self {
        StorageError::Decode(e)
    }
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        kind: e.kind(),
        detail: format!("{}: {e}", path.display()),
    }
}

/// An ordered, durable log of opaque byte records.
///
/// `append` must make the record durable (to the backend's fault model)
/// before returning; `load` returns every durable record in append order.
pub trait Storage: Send + fmt::Debug {
    /// Appends one record after all existing records.
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError>;

    /// Appends several records as one *group commit*: all records become
    /// durable with a single flush of the backing medium (where the backend
    /// supports it), in the given order, after all existing records. An
    /// empty group is a no-op. The default implementation appends one by
    /// one — correct for any backend, with per-record flush cost.
    ///
    /// Atomicity is **not** promised across the group: a crash mid-group may
    /// leave a durable *prefix* of it (never a torn individual record, and
    /// never a record out of order). Write-ahead callers must therefore
    /// order records so that any prefix is safe — which slot-ordered
    /// `Accepted` records are.
    fn append_group(&mut self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        for record in records {
            self.append(record)?;
        }
        Ok(())
    }

    /// Returns all records in append order.
    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError>;
}

/// In-memory [`Storage`]: survives a simulated process restart (the handle
/// outlives the state machine) but not the host process. Deterministic and
/// infallible — the backend used by `netsim`/`threadnet` chaos campaigns.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    records: Vec<Vec<u8>>,
}

impl MemStorage {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        self.records.push(record.to_vec());
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError> {
        Ok(self.records.clone())
    }
}

/// Append-only file WAL with CRC-checked, length-prefixed records.
///
/// Every record is wrapped in a [`wire`](crate::wire) frame:
/// `len:u32 LE | version:u8 | body | crc32 LE`, where the body is the
/// record's bytes. On open, the file is scanned from the front and
/// truncated at the first frame that is torn (fewer bytes than the length
/// prefix promises), has an invalid length, fails its checksum, or carries
/// the wrong protocol version — everything from that point on is a casualty
/// of the crash and is discarded, keeping the longest valid prefix.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
}

impl FileWal {
    /// Opens (creating if absent) the WAL at `path` and runs recovery:
    /// truncates any torn or corrupt tail so the file holds only valid
    /// frames. An empty file recovers to an empty log.
    pub fn open(path: impl Into<PathBuf>) -> Result<FileWal, StorageError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| io_err("open", &path, &e))?;
        let (_, valid_end) = scan(&buf);
        if valid_end < buf.len() {
            file.set_len(valid_end as u64)
                .map_err(|e| io_err("open", &path, &e))?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))
            .map_err(|e| io_err("open", &path, &e))?;
        Ok(FileWal { path, file })
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileWal {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        let frame = encode_frame(&record.to_vec());
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.file
            .flush()
            .map_err(|e| io_err("append", &self.path, &e))?;
        Ok(())
    }

    /// Group commit: every frame of the group is encoded into one buffer and
    /// written with a single `write_all` + flush, so the whole group costs
    /// one fsync-equivalent instead of one per record. A crash mid-write
    /// leaves at most a torn frame at the tail, which recovery truncates —
    /// yielding a durable prefix of whole records, exactly the [`Storage`]
    /// group-commit contract.
    fn append_group(&mut self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_frame(record));
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.file
            .flush()
            .map_err(|e| io_err("append", &self.path, &e))?;
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError> {
        let end = self
            .file
            .stream_position()
            .map_err(|e| io_err("load", &self.path, &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("load", &self.path, &e))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| io_err("load", &self.path, &e))?;
        self.file
            .seek(SeekFrom::Start(end))
            .map_err(|e| io_err("load", &self.path, &e))?;
        let (records, _) = scan(&buf);
        Ok(records)
    }
}

/// Scans `buf` for consecutive valid frames; returns the decoded records and
/// the byte offset just past the last valid frame (the longest valid
/// prefix). Unlike a network stream — where a bad checksum on one frame is
/// skippable because framing stays synchronised — a WAL is written
/// sequentially, so the first invalid frame marks the crash point and
/// nothing after it can be trusted.
fn scan(buf: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= LEN_PREFIX {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            break; // length prefix itself corrupt: framing is lost
        }
        if buf.len() - pos - LEN_PREFIX < len {
            break; // torn tail: the final append did not complete
        }
        let payload = &buf[pos + LEN_PREFIX..pos + LEN_PREFIX + len];
        match decode_frame::<Vec<u8>>(payload) {
            Ok(record) => {
                records.push(record);
                pos += LEN_PREFIX + len;
            }
            Err(_) => break, // checksum/version failure: crash point found
        }
    }
    (records, pos)
}

/// A cloneable, thread-safe handle to a [`Storage`] backend.
///
/// The harness creates one handle per process and keeps it across
/// kill/restart; each state-machine incarnation receives a clone and writes
/// through it, so a restarted incarnation reloads exactly what its
/// predecessor persisted.
#[derive(Debug, Clone)]
pub struct StorageHandle {
    inner: Arc<Mutex<dyn Storage>>,
}

impl StorageHandle {
    /// Wraps any [`Storage`] backend in a shared handle.
    pub fn new(backend: impl Storage + 'static) -> Self {
        StorageHandle {
            inner: Arc::new(Mutex::new(backend)),
        }
    }

    /// A handle over a fresh [`MemStorage`].
    pub fn in_memory() -> Self {
        StorageHandle::new(MemStorage::new())
    }

    /// A handle over a [`FileWal`] at `path` (recovery runs on open).
    pub fn file_wal(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Ok(StorageHandle::new(FileWal::open(path)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, dyn Storage + 'static> {
        // A poisoned mutex means another incarnation panicked mid-append; the
        // backend's own recovery (frame checksums) handles partial state, so
        // continuing is safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one opaque record.
    pub fn append(&self, record: &[u8]) -> Result<(), StorageError> {
        self.lock().append(record)
    }

    /// Returns all records in append order.
    pub fn load(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        self.lock().load()
    }

    /// Appends several opaque records as one group commit (one flush; see
    /// [`Storage::append_group`]).
    pub fn append_group(&self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        self.lock().append_group(records)
    }

    /// Appends a typed record, serialised with its [`Wire`] encoding.
    pub fn append_record<R: Wire>(&self, record: &R) -> Result<(), StorageError> {
        self.append(&record.to_bytes())
    }

    /// Appends several typed records as one group commit: serialises each
    /// with its [`Wire`] encoding and makes them all durable with a single
    /// flush ([`Storage::append_group`]).
    pub fn append_records<R: Wire>(&self, records: &[R]) -> Result<(), StorageError> {
        let blobs: Vec<Vec<u8>> = records.iter().map(Wire::to_bytes).collect();
        self.append_group(&blobs)
    }

    /// Loads and decodes all records as type `R`.
    pub fn load_records<R: Wire>(&self) -> Result<Vec<R>, StorageError> {
        self.load()?
            .iter()
            .map(|blob| R::from_bytes(blob).map_err(StorageError::from))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("lls-wal-{}-{tag}-{seq}.wal", std::process::id()))
    }

    struct TempWal {
        path: PathBuf,
    }

    impl TempWal {
        fn new(tag: &str) -> Self {
            TempWal {
                path: temp_path(tag),
            }
        }
    }

    impl Drop for TempWal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    #[test]
    fn mem_storage_round_trips() {
        let store = StorageHandle::in_memory();
        store.append(b"a").unwrap();
        store.append(b"bb").unwrap();
        assert_eq!(store.load().unwrap(), vec![b"a".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let store = StorageHandle::in_memory();
        let incarnation_one = store.clone();
        incarnation_one.append(b"promise").unwrap();
        drop(incarnation_one); // the process "crashes"
        let incarnation_two = store.clone();
        assert_eq!(incarnation_two.load().unwrap(), vec![b"promise".to_vec()]);
    }

    #[test]
    fn typed_records_round_trip() {
        let store = StorageHandle::in_memory();
        store.append_record(&7u64).unwrap();
        store.append_record(&9u64).unwrap();
        assert_eq!(store.load_records::<u64>().unwrap(), vec![7, 9]);
    }

    #[test]
    fn typed_decode_mismatch_is_an_error() {
        let store = StorageHandle::in_memory();
        store.append_record(&String::from("not a bool")).unwrap();
        assert!(matches!(
            store.load_records::<bool>(),
            Err(StorageError::Decode(_))
        ));
    }

    #[test]
    fn group_append_preserves_order_and_interleaves_with_singles() {
        let store = StorageHandle::in_memory();
        store.append(b"solo").unwrap();
        store
            .append_group(&[b"g1".to_vec(), b"g2".to_vec(), b"g3".to_vec()])
            .unwrap();
        store.append(b"tail").unwrap();
        assert_eq!(
            store.load().unwrap(),
            vec![
                b"solo".to_vec(),
                b"g1".to_vec(),
                b"g2".to_vec(),
                b"g3".to_vec(),
                b"tail".to_vec()
            ]
        );
    }

    #[test]
    fn typed_group_round_trips() {
        let store = StorageHandle::in_memory();
        store.append_records(&[1u64, 2, 3]).unwrap();
        store.append_record(&4u64).unwrap();
        assert_eq!(store.load_records::<u64>().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_group_flush_is_a_noop() {
        let tmp = TempWal::new("empty-group");
        let mut wal = FileWal::open(&tmp.path).unwrap();
        wal.append(b"only").unwrap();
        let len_before = std::fs::metadata(&tmp.path).unwrap().len();
        wal.append_group(&[]).unwrap();
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len(),
            len_before,
            "an empty group must not touch the file"
        );
        assert_eq!(wal.load().unwrap(), vec![b"only".to_vec()]);
    }

    #[test]
    fn file_wal_group_survives_reopen() {
        let tmp = TempWal::new("group");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()])
                .unwrap();
        }
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
    }

    #[test]
    fn torn_tail_inside_a_group_recovers_whole_record_prefix() {
        // A crash mid-group-write must never surface a partial record: the
        // torn frame is truncated and every *whole* record before it — from
        // the same group — survives.
        let tmp = TempWal::new("group-torn");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"first".to_vec(), b"second".to_vec(), b"third".to_vec()])
                .unwrap();
        }
        // Tear into the middle of the group's final record.
        let len = std::fs::metadata(&tmp.path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()],
            "recovery keeps the whole-record prefix of the torn group"
        );
        // The truncated WAL accepts further groups cleanly.
        wal.append_group(&[b"fourth".to_vec()]).unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn tear_at_group_flush_boundary_loses_only_the_unflushed_group() {
        // Two group commits; the crash wipes exactly the second flush. The
        // first group — one flush, three records — survives in full.
        let tmp = TempWal::new("group-boundary");
        let boundary;
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"g1a".to_vec(), b"g1b".to_vec(), b"g1c".to_vec()])
                .unwrap();
            boundary = std::fs::metadata(&tmp.path).unwrap().len();
            wal.append_group(&[b"g2a".to_vec(), b"g2b".to_vec()])
                .unwrap();
        }
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(boundary).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"g1a".to_vec(), b"g1b".to_vec(), b"g1c".to_vec()]
        );
    }

    #[test]
    fn file_wal_round_trips_across_reopen() {
        let tmp = TempWal::new("roundtrip");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"one".to_vec(), b"two".to_vec()]);
        wal.append(b"three").unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn empty_file_recovers_to_empty_log() {
        let tmp = TempWal::new("empty");
        std::fs::write(&tmp.path, b"").unwrap();
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn truncated_tail_record_recovers_to_valid_prefix() {
        let tmp = TempWal::new("torn");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third-will-be-torn").unwrap();
        }
        // Tear the final record: chop off its last 3 bytes (simulating a
        // crash mid-append).
        let len = std::fs::metadata(&tmp.path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()]
        );
        // Recovery truncated the torn bytes, so a new append lands cleanly.
        wal.append(b"fourth").unwrap();
        drop(wal);
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn corrupted_crc_mid_log_truncates_from_crash_point() {
        let tmp = TempWal::new("crc");
        let second_start;
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"good").unwrap();
            second_start = std::fs::metadata(&tmp.path).unwrap().len();
            wal.append(b"corrupt-me").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        // Flip one byte inside the second record's body: its CRC no longer
        // matches, and everything from there on is untrusted.
        let mut bytes = std::fs::read(&tmp.path).unwrap();
        let flip_at = second_start as usize + LEN_PREFIX + 2;
        bytes[flip_at] ^= 0xff;
        std::fs::write(&tmp.path, &bytes).unwrap();

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"good".to_vec()]);
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len(),
            second_start,
            "recovery truncates at the first corrupt frame"
        );
    }

    #[test]
    fn garbage_length_prefix_truncates() {
        let tmp = TempWal::new("garbage");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"keep").unwrap();
        }
        // Append garbage that claims an absurd frame length.
        let mut bytes = std::fs::read(&tmp.path).unwrap();
        let keep_len = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&tmp.path, &bytes).unwrap();

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"keep".to_vec()]);
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len() as usize,
            keep_len
        );
    }
}
