//! Durable per-process storage for crash–restart survival.
//!
//! The paper's model is crash-stop, but the follow-up crash-recovery work
//! (Larrea/Martín/Soraluze, JSS 2011) makes precise what a process must
//! persist so that a restart cannot un-say anything it said before the
//! crash: the Ω accusation counter, and the consensus acceptor state
//! (promised ballot, accepted ballot/value, decided prefix). This module
//! provides the substrate-independent storage those protocols write through:
//!
//! * [`Storage`] — the minimal append/load contract: an ordered log of
//!   opaque byte records;
//! * [`MemStorage`] — an in-memory log that survives a *simulated* restart
//!   (the handle outlives the state machine) but not the host process; the
//!   deterministic backend used by `netsim` and `threadnet` campaigns;
//! * [`FileWal`] — an append-only file WAL whose records are framed with the
//!   [`wire`](crate::wire) codec (length prefix, protocol version, CRC-32).
//!   Recovery scans from the front and truncates at the first torn or
//!   corrupt frame, keeping the longest valid prefix;
//! * [`SegmentedWal`] — the same framing split across numbered segment
//!   files that rotate at a byte budget, so [`Storage::compact_to`] can
//!   rewrite the live tail into a fresh segment and delete everything
//!   behind the snapshot horizon — steady-state disk use is bounded by
//!   `snapshot + active segments` regardless of uptime;
//! * [`Snapshot`] / [`SnapshotStore`] / [`SnapshotHandle`] — durable
//!   application-state snapshots at a log watermark, installed atomically
//!   (tmp → fsync → rename → parent-dir fsync) behind a CRC-checked
//!   `MANIFEST`, with a directory-scan fallback when the manifest is lost
//!   between the rename and the directory sync;
//! * [`StorageHandle`] — a cloneable, thread-safe handle shared between the
//!   harness (which keeps it across kill/restart) and the state machine
//!   incarnations (which write through it).
//!
//! # Write-ahead discipline
//!
//! State machines append a record *inside* the handler that mutates the
//! crash-critical state, before the handler returns. Because every runtime
//! in this workspace drains effects only after the handler returns, the
//! record is durable before any message reflecting the new state can reach
//! the network — the classic write-ahead rule.
//!
//! # Example
//!
//! ```
//! use lls_primitives::storage::StorageHandle;
//!
//! let store = StorageHandle::in_memory();
//! store.append(b"promise 3").unwrap();
//! store.append(b"accept 3 v").unwrap();
//! // ... the process is killed; a new incarnation reloads:
//! let records = store.load().unwrap();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0], b"promise 3");
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use crate::wire::{decode_frame, encode_frame, Wire, WireError, MAX_FRAME_LEN};

/// Bytes of the little-endian length prefix in front of every WAL frame
/// (same framing as the stream transports; see [`crate::wire::encode_frame`]).
const LEN_PREFIX: usize = 4;

/// Why a storage operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O operation on the backing medium failed.
    Io {
        /// Which operation failed (`"open"`, `"append"`, `"load"`, ...).
        op: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail (path, OS message).
        detail: String,
    },
    /// A record loaded from storage failed typed decoding. Distinct from
    /// recovery-time frame corruption, which is silently truncated: a frame
    /// with a *valid* checksum but an undecodable body means the caller is
    /// reading the log with the wrong record type.
    Decode(WireError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, kind, detail } => {
                write!(f, "storage {op} failed ({kind:?}): {detail}")
            }
            StorageError::Decode(e) => write!(f, "stored record failed to decode: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<WireError> for StorageError {
    fn from(e: WireError) -> Self {
        StorageError::Decode(e)
    }
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        kind: e.kind(),
        detail: format!("{}: {e}", path.display()),
    }
}

/// Fsyncs a directory so a just-created, just-renamed, or just-removed
/// entry inside it survives power loss. Opening a directory read-only and
/// calling `sync_all` is the POSIX idiom; platforms that cannot fsync a
/// directory handle surface the error to the caller.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    let handle = File::open(dir).map_err(|e| io_err("dir-sync", dir, &e))?;
    handle.sync_all().map_err(|e| io_err("dir-sync", dir, &e))
}

/// Size/volume accounting for a [`Storage`] backend, feeding the
/// `wal_live_bytes` / `recovery_replay_bytes` observability metrics and the
/// E21 disk-bound gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Bytes currently held live by the backend (what a restart replays).
    pub live_bytes: u64,
    /// Cumulative bytes ever appended, across compactions (what a restart
    /// would have replayed had the log never been compacted).
    pub appended_bytes: u64,
    /// Number of segment files currently on disk (1 for unsegmented
    /// backends).
    pub segments: u64,
}

/// An ordered, durable log of opaque byte records.
///
/// `append` must make the record durable (to the backend's fault model)
/// before returning; `load` returns every durable record in append order.
pub trait Storage: Send + fmt::Debug {
    /// Appends one record after all existing records.
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError>;

    /// Appends several records as one *group commit*: all records become
    /// durable with a single flush of the backing medium (where the backend
    /// supports it), in the given order, after all existing records. An
    /// empty group is a no-op. The default implementation appends one by
    /// one — correct for any backend, with per-record flush cost.
    ///
    /// Atomicity is **not** promised across the group: a crash mid-group may
    /// leave a durable *prefix* of it (never a torn individual record, and
    /// never a record out of order). Write-ahead callers must therefore
    /// order records so that any prefix is safe — which slot-ordered
    /// `Accepted` records are.
    fn append_group(&mut self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        for record in records {
            self.append(record)?;
        }
        Ok(())
    }

    /// Returns all records in append order.
    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError>;

    /// Atomically replaces the whole log with `live` (the records that are
    /// still needed after a snapshot made everything before the horizon
    /// redundant). After a successful return, `load` yields exactly `live`;
    /// a crash mid-compaction must leave either the old log or the new one,
    /// never a mix. Backends that cannot compact return an `Unsupported`
    /// I/O error, and callers must treat that as "keep the full log".
    fn compact_to(&mut self, live: &[Vec<u8>]) -> Result<(), StorageError> {
        let _ = live;
        Err(StorageError::Io {
            op: "compact",
            kind: std::io::ErrorKind::Unsupported,
            detail: "backend does not support compaction".to_owned(),
        })
    }

    /// Current size accounting. Backends that do not track volume return
    /// zeros.
    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

/// In-memory [`Storage`]: survives a simulated process restart (the handle
/// outlives the state machine) but not the host process. Deterministic and
/// infallible — the backend used by `netsim`/`threadnet` chaos campaigns.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    records: Vec<Vec<u8>>,
    appended_bytes: u64,
}

impl MemStorage {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        self.appended_bytes += record.len() as u64;
        self.records.push(record.to_vec());
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError> {
        Ok(self.records.clone())
    }

    fn compact_to(&mut self, live: &[Vec<u8>]) -> Result<(), StorageError> {
        self.records = live.to_vec();
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            live_bytes: self.records.iter().map(|r| r.len() as u64).sum(),
            appended_bytes: self.appended_bytes,
            segments: 1,
        }
    }
}

/// Append-only file WAL with CRC-checked, length-prefixed records.
///
/// Every record is wrapped in a [`wire`](crate::wire) frame:
/// `len:u32 LE | version:u8 | body | crc32 LE`, where the body is the
/// record's bytes. On open, the file is scanned from the front and
/// truncated at the first frame that is torn (fewer bytes than the length
/// prefix promises), has an invalid length, fails its checksum, or carries
/// the wrong protocol version — everything from that point on is a casualty
/// of the crash and is discarded, keeping the longest valid prefix.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
    appended_bytes: u64,
}

impl FileWal {
    /// Opens (creating if absent) the WAL at `path` and runs recovery:
    /// truncates any torn or corrupt tail so the file holds only valid
    /// frames. An empty file recovers to an empty log. If the file is
    /// newly created, the parent directory is fsynced so the creation
    /// itself survives power loss.
    pub fn open(path: impl Into<PathBuf>) -> Result<FileWal, StorageError> {
        let path = path.into();
        let created = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        if created {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                sync_dir(dir)?;
            }
        }
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| io_err("open", &path, &e))?;
        let (_, valid_end) = scan(&buf);
        if valid_end < buf.len() {
            file.set_len(valid_end as u64)
                .map_err(|e| io_err("open", &path, &e))?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))
            .map_err(|e| io_err("open", &path, &e))?;
        Ok(FileWal {
            path,
            file,
            appended_bytes: valid_end as u64,
        })
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileWal {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        let frame = encode_frame(&record.to_vec());
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.file
            .flush()
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.appended_bytes += frame.len() as u64;
        Ok(())
    }

    /// Group commit: every frame of the group is encoded into one buffer and
    /// written with a single `write_all` + flush, so the whole group costs
    /// one fsync-equivalent instead of one per record. A crash mid-write
    /// leaves at most a torn frame at the tail, which recovery truncates —
    /// yielding a durable prefix of whole records, exactly the [`Storage`]
    /// group-commit contract.
    fn append_group(&mut self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_frame(record));
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.file
            .flush()
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.appended_bytes += buf.len() as u64;
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError> {
        let end = self
            .file
            .stream_position()
            .map_err(|e| io_err("load", &self.path, &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("load", &self.path, &e))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| io_err("load", &self.path, &e))?;
        self.file
            .seek(SeekFrom::Start(end))
            .map_err(|e| io_err("load", &self.path, &e))?;
        let (records, _) = scan(&buf);
        Ok(records)
    }

    /// Atomic whole-log replacement: the live records are framed into a
    /// sibling temp file, fsynced, renamed over the WAL, and the parent
    /// directory is fsynced — so a crash at any point leaves either the
    /// full old log or the full new one.
    fn compact_to(&mut self, live: &[Vec<u8>]) -> Result<(), StorageError> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut buf = Vec::new();
        for record in live {
            buf.extend_from_slice(&encode_frame(record));
        }
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("compact", &tmp, &e))?;
            f.write_all(&buf).map_err(|e| io_err("compact", &tmp, &e))?;
            f.sync_all().map_err(|e| io_err("compact", &tmp, &e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("compact", &self.path, &e))?;
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            sync_dir(dir)?;
        }
        // Reopen so the handle points at the new inode, positioned at its
        // end for further appends.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("compact", &self.path, &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("compact", &self.path, &e))?;
        self.file = file;
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            live_bytes: std::fs::metadata(&self.path).map_or(0, |m| m.len()),
            appended_bytes: self.appended_bytes,
            segments: 1,
        }
    }
}

/// Scans `buf` for consecutive valid frames; returns the decoded records and
/// the byte offset just past the last valid frame (the longest valid
/// prefix). Unlike a network stream — where a bad checksum on one frame is
/// skippable because framing stays synchronised — a WAL is written
/// sequentially, so the first invalid frame marks the crash point and
/// nothing after it can be trusted.
fn scan(buf: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= LEN_PREFIX {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            break; // length prefix itself corrupt: framing is lost
        }
        if buf.len() - pos - LEN_PREFIX < len {
            break; // torn tail: the final append did not complete
        }
        let payload = &buf[pos + LEN_PREFIX..pos + LEN_PREFIX + len];
        match decode_frame::<Vec<u8>>(payload) {
            Ok(record) => {
                records.push(record);
                pos += LEN_PREFIX + len;
            }
            Err(_) => break, // checksum/version failure: crash point found
        }
    }
    (records, pos)
}

/// Parses `wal-<seq>.seg` back into its sequence number.
fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let body = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    body.parse().ok()
}

/// A multi-file WAL: the same CRC-checked framing as [`FileWal`], split
/// across numbered segment files (`wal-<seq>.seg`) that rotate once the
/// active segment exceeds a byte budget.
///
/// Rotation is what makes compaction cheap and atomic:
/// [`Storage::compact_to`] writes the live tail into a *fresh* segment
/// (tmp → fsync → rename → directory fsync) and then deletes every older
/// segment, so steady-state disk use is bounded by `snapshot + active
/// segments` however long the process has been running. Recovery scans
/// segments in sequence order and truncates at the first torn or corrupt
/// frame — every later segment is a casualty of the crash and is removed.
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    segment_budget: u64,
    /// Sequence numbers of the on-disk segments, ascending; the last one is
    /// active.
    seqs: Vec<u64>,
    active: File,
    active_len: u64,
    appended_bytes: u64,
}

impl SegmentedWal {
    /// Opens (creating if absent) a segmented WAL in `dir`, rotating new
    /// segments once the active one exceeds `segment_budget` bytes. Runs
    /// recovery across all segments: the first torn or corrupt frame marks
    /// the crash point; that segment is truncated there and all later
    /// segments are deleted.
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_budget: u64,
    ) -> Result<SegmentedWal, StorageError> {
        let dir = dir.into();
        let created = !dir.exists();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("open", &dir, &e))?;
        if created {
            if let Some(parent) = dir.parent().filter(|d| !d.as_os_str().is_empty()) {
                sync_dir(parent)?;
            }
        }
        let mut seqs: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| io_err("open", &dir, &e))?
            .filter_map(|entry| entry.ok().and_then(|e| segment_seq(&e.path())))
            .collect();
        seqs.sort_unstable();
        // Recovery: scan each segment in order; on the first invalid frame,
        // truncate that segment and drop everything after it.
        let mut crash_at: Option<usize> = None;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = dir.join(format!("wal-{seq:08}.seg"));
            let buf = std::fs::read(&path).map_err(|e| io_err("open", &path, &e))?;
            let (_, valid_end) = scan(&buf);
            if valid_end < buf.len() {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open", &path, &e))?;
                f.set_len(valid_end as u64)
                    .map_err(|e| io_err("open", &path, &e))?;
                crash_at = Some(i);
                break;
            }
        }
        if let Some(i) = crash_at {
            for &seq in &seqs[i + 1..] {
                let path = dir.join(format!("wal-{seq:08}.seg"));
                std::fs::remove_file(&path).map_err(|e| io_err("open", &path, &e))?;
            }
            seqs.truncate(i + 1);
        }
        if seqs.is_empty() {
            seqs.push(0);
            let path = dir.join(format!("wal-{:08}.seg", 0));
            File::create(&path).map_err(|e| io_err("open", &path, &e))?;
            sync_dir(&dir)?;
        }
        let active_seq = *seqs.last().expect("at least one segment");
        let active_path = dir.join(format!("wal-{active_seq:08}.seg"));
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&active_path)
            .map_err(|e| io_err("open", &active_path, &e))?;
        let active_len = active
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("open", &active_path, &e))?;
        let appended_bytes = seqs
            .iter()
            .map(|&seq| {
                std::fs::metadata(dir.join(format!("wal-{seq:08}.seg"))).map_or(0, |m| m.len())
            })
            .sum();
        Ok(SegmentedWal {
            dir,
            segment_budget,
            seqs,
            active,
            active_len,
            appended_bytes,
        })
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("wal-{seq:08}.seg"))
    }

    /// Starts a fresh active segment (creation fsynced through the
    /// directory, per the power-loss rule for segment create).
    fn rotate(&mut self) -> Result<(), StorageError> {
        let next = self.seqs.last().copied().unwrap_or(0) + 1;
        let path = self.segment_path(next);
        let file = File::create(&path).map_err(|e| io_err("rotate", &path, &e))?;
        sync_dir(&self.dir)?;
        self.seqs.push(next);
        self.active = file;
        self.active_len = 0;
        Ok(())
    }

    fn write_frames(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        if self.active_len >= self.segment_budget && self.active_len > 0 {
            self.rotate()?;
        }
        let path = self.segment_path(*self.seqs.last().expect("active segment"));
        self.active
            .write_all(buf)
            .map_err(|e| io_err("append", &path, &e))?;
        self.active
            .flush()
            .map_err(|e| io_err("append", &path, &e))?;
        self.active_len += buf.len() as u64;
        self.appended_bytes += buf.len() as u64;
        Ok(())
    }
}

impl Storage for SegmentedWal {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        self.write_frames(&encode_frame(&record.to_vec()))
    }

    fn append_group(&mut self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_frame(record));
        }
        self.write_frames(&buf)
    }

    fn load(&mut self) -> Result<Vec<Vec<u8>>, StorageError> {
        let mut records = Vec::new();
        for &seq in &self.seqs {
            let path = self.segment_path(seq);
            let buf = std::fs::read(&path).map_err(|e| io_err("load", &path, &e))?;
            let (mut segment_records, _) = scan(&buf);
            records.append(&mut segment_records);
        }
        Ok(records)
    }

    /// Writes the live records into a fresh segment via tmp-then-rename
    /// (fsync before and after), then deletes every older segment — the
    /// atomic horizon cut. A crash before the rename keeps the old
    /// segments; a crash after it leaves the new segment plus possibly
    /// some stale older segments, which the *next* compaction or recovery
    /// load will simply replay in front (they contain only records that
    /// are re-covered by the snapshot, making the replay idempotent) —
    /// callers always install the snapshot durably *before* compacting.
    fn compact_to(&mut self, live: &[Vec<u8>]) -> Result<(), StorageError> {
        let next = self.seqs.last().copied().unwrap_or(0) + 1;
        let path = self.segment_path(next);
        let tmp = self.dir.join(format!("wal-{next:08}.seg.tmp"));
        let mut buf = Vec::new();
        for record in live {
            buf.extend_from_slice(&encode_frame(record));
        }
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("compact", &tmp, &e))?;
            f.write_all(&buf).map_err(|e| io_err("compact", &tmp, &e))?;
            f.sync_all().map_err(|e| io_err("compact", &tmp, &e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("compact", &path, &e))?;
        sync_dir(&self.dir)?;
        let old = std::mem::replace(&mut self.seqs, vec![next]);
        for seq in old {
            let stale = self.segment_path(seq);
            std::fs::remove_file(&stale).map_err(|e| io_err("compact", &stale, &e))?;
        }
        sync_dir(&self.dir)?;
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("compact", &path, &e))?;
        self.active_len = active
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("compact", &path, &e))?;
        self.active = active;
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        let live_bytes = self
            .seqs
            .iter()
            .map(|&seq| std::fs::metadata(self.segment_path(seq)).map_or(0, |m| m.len()))
            .sum();
        StorageStats {
            live_bytes,
            appended_bytes: self.appended_bytes,
            segments: self.seqs.len() as u64,
        }
    }
}

/// A durable application-state snapshot: the serialized state after
/// applying every log slot below `watermark`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// First log slot *not* covered by this snapshot: replay resumes here.
    pub watermark: u64,
    /// Opaque serialized application state at the watermark.
    pub data: Vec<u8>,
}

impl Wire for Snapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.watermark.encode(out);
        self.data.encode(out);
    }

    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, WireError> {
        Ok(Snapshot {
            watermark: u64::decode(r)?,
            data: Vec::<u8>::decode(r)?,
        })
    }
}

/// Durable storage for at most one current [`Snapshot`]. `install` must be
/// atomic against crashes: after a crash, `load` returns either the old
/// snapshot or the new one, never a torn mix.
pub trait SnapshotStore: Send + fmt::Debug {
    /// Durably replaces the current snapshot.
    fn install(&mut self, snap: &Snapshot) -> Result<(), StorageError>;

    /// Returns the current snapshot, if any.
    fn load(&mut self) -> Result<Option<Snapshot>, StorageError>;
}

/// In-memory [`SnapshotStore`] — the deterministic backend for
/// `netsim`/`threadnet` campaigns, surviving simulated restarts through
/// the shared handle.
#[derive(Debug, Clone, Default)]
pub struct MemSnapshotStore {
    snap: Option<Snapshot>,
}

impl MemSnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        MemSnapshotStore::default()
    }
}

impl SnapshotStore for MemSnapshotStore {
    fn install(&mut self, snap: &Snapshot) -> Result<(), StorageError> {
        self.snap = Some(snap.clone());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<Snapshot>, StorageError> {
        Ok(self.snap.clone())
    }
}

/// Parses `snap-<watermark>.snap` back into its watermark.
fn snapshot_watermark(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let body = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    body.parse().ok()
}

/// File-backed [`SnapshotStore`]: one directory holding CRC-framed
/// `snap-<watermark>.snap` blobs plus a CRC-framed `MANIFEST` naming the
/// current one.
///
/// Install order makes every crash point recoverable: the blob is written
/// to a temp file, fsynced, renamed, and the directory fsynced *before*
/// the manifest is rewritten the same way; only after the manifest points
/// at the new blob are older blobs deleted. If a crash loses the manifest
/// (or tears it — impossible through rename, but a disk may still corrupt
/// it), `load` falls back to scanning the directory for the
/// highest-watermark blob that passes its checksum.
#[derive(Debug)]
pub struct FileSnapshotStore {
    dir: PathBuf,
}

impl FileSnapshotStore {
    /// Opens (creating if absent) a snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileSnapshotStore, StorageError> {
        let dir = dir.into();
        let created = !dir.exists();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("open", &dir, &e))?;
        if created {
            if let Some(parent) = dir.parent().filter(|d| !d.as_os_str().is_empty()) {
                sync_dir(parent)?;
            }
        }
        Ok(FileSnapshotStore { dir })
    }

    /// The directory holding the snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Writes `bytes` to `path` atomically: temp sibling, fsync, rename,
    /// directory fsync.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("install", &tmp, &e))?;
            f.write_all(bytes)
                .map_err(|e| io_err("install", &tmp, &e))?;
            f.sync_all().map_err(|e| io_err("install", &tmp, &e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err("install", path, &e))?;
        sync_dir(&self.dir)
    }

    /// Decodes one CRC-framed snapshot blob file; `None` when torn or
    /// corrupt.
    fn read_blob(path: &Path) -> Option<Snapshot> {
        let buf = std::fs::read(path).ok()?;
        let (mut records, _) = scan(&buf);
        if records.len() != 1 {
            return None;
        }
        Snapshot::from_bytes(&records.pop()?).ok()
    }

    /// The manifest's current blob name, if the manifest exists and passes
    /// its checksum.
    fn manifest_target(&self) -> Option<String> {
        let buf = std::fs::read(self.manifest_path()).ok()?;
        let (mut records, _) = scan(&buf);
        if records.len() != 1 {
            return None;
        }
        String::from_utf8(records.pop()?).ok()
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn install(&mut self, snap: &Snapshot) -> Result<(), StorageError> {
        let blob_name = format!("snap-{:020}.snap", snap.watermark);
        let blob_path = self.dir.join(&blob_name);
        self.write_atomic(&blob_path, &encode_frame(&snap.to_bytes()))?;
        self.write_atomic(
            &self.manifest_path(),
            &encode_frame(&blob_name.into_bytes()),
        )?;
        // Only now is it safe to drop older blobs: the manifest durably
        // points at the new one. Removal failures are not fatal to the
        // install (the stale blob just lingers until the next install).
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if let Some(w) = snapshot_watermark(&path) {
                    if w != snap.watermark {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        Ok(())
    }

    fn load(&mut self) -> Result<Option<Snapshot>, StorageError> {
        if let Some(name) = self.manifest_target() {
            if let Some(snap) = Self::read_blob(&self.dir.join(name)) {
                return Ok(Some(snap));
            }
        }
        // Manifest missing, stale, or corrupt: fall back to the best blob
        // on disk (highest watermark that passes its checksum). This is
        // the crash window between blob rename and manifest update.
        let mut best: Option<Snapshot> = None;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if snapshot_watermark(&path).is_some() {
                    if let Some(snap) = Self::read_blob(&path) {
                        if best.as_ref().is_none_or(|b| snap.watermark > b.watermark) {
                            best = Some(snap);
                        }
                    }
                }
            }
        }
        Ok(best)
    }
}

/// A cloneable, thread-safe handle to a [`SnapshotStore`] backend — the
/// snapshot analogue of [`StorageHandle`], kept by the harness across
/// kill/restart.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    inner: Arc<Mutex<dyn SnapshotStore>>,
}

impl SnapshotHandle {
    /// Wraps any [`SnapshotStore`] backend in a shared handle.
    pub fn new(backend: impl SnapshotStore + 'static) -> Self {
        SnapshotHandle {
            inner: Arc::new(Mutex::new(backend)),
        }
    }

    /// A handle over a fresh [`MemSnapshotStore`].
    pub fn in_memory() -> Self {
        SnapshotHandle::new(MemSnapshotStore::new())
    }

    /// A handle over a [`FileSnapshotStore`] in `dir`.
    pub fn file(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Ok(SnapshotHandle::new(FileSnapshotStore::open(dir)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, dyn SnapshotStore + 'static> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Durably replaces the current snapshot.
    pub fn install(&self, snap: &Snapshot) -> Result<(), StorageError> {
        self.lock().install(snap)
    }

    /// Returns the current snapshot, if any.
    pub fn load(&self) -> Result<Option<Snapshot>, StorageError> {
        self.lock().load()
    }
}

/// Wall-clock accounting of a handle's durable appends: how many flushes
/// ran and how long they took. A "flush" here is one [`Storage::append`] or
/// [`Storage::append_group`] call — on the file backends that is exactly
/// one `write_all` + `flush` of the device, so the duration is dominated by
/// the fsync-equivalent; on the in-memory backends it is effectively zero.
///
/// The consensus layer reads the delta around each group commit to emit
/// `WalFsync` probe events, which feed the `wal_fsync_micros` histogram and
/// the watchdog's fsync-spike detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Durable append calls completed (successful or not).
    pub flushes: u64,
    /// Total wall-clock microseconds spent inside those calls.
    pub total_micros: u64,
    /// Duration of the most recent call, in microseconds.
    pub last_micros: u64,
}

/// Shared atomic backing for [`FlushStats`] (lives in the handle's `Arc`,
/// so clones and restarted incarnations accumulate into one account).
#[derive(Debug, Default)]
struct FlushTiming {
    flushes: AtomicU64,
    total_micros: AtomicU64,
    last_micros: AtomicU64,
}

impl FlushTiming {
    fn note(&self, micros: u64) {
        self.flushes.fetch_add(1, AtomicOrdering::Relaxed);
        self.total_micros.fetch_add(micros, AtomicOrdering::Relaxed);
        self.last_micros.store(micros, AtomicOrdering::Relaxed);
    }

    fn snapshot(&self) -> FlushStats {
        FlushStats {
            flushes: self.flushes.load(AtomicOrdering::Relaxed),
            total_micros: self.total_micros.load(AtomicOrdering::Relaxed),
            last_micros: self.last_micros.load(AtomicOrdering::Relaxed),
        }
    }
}

/// A cloneable, thread-safe handle to a [`Storage`] backend.
///
/// The harness creates one handle per process and keeps it across
/// kill/restart; each state-machine incarnation receives a clone and writes
/// through it, so a restarted incarnation reloads exactly what its
/// predecessor persisted.
#[derive(Debug, Clone)]
pub struct StorageHandle {
    inner: Arc<Mutex<dyn Storage>>,
    timing: Arc<FlushTiming>,
}

impl StorageHandle {
    /// Wraps any [`Storage`] backend in a shared handle.
    pub fn new(backend: impl Storage + 'static) -> Self {
        StorageHandle {
            inner: Arc::new(Mutex::new(backend)),
            timing: Arc::new(FlushTiming::default()),
        }
    }

    /// A handle over a fresh [`MemStorage`].
    pub fn in_memory() -> Self {
        StorageHandle::new(MemStorage::new())
    }

    /// A handle over a [`FileWal`] at `path` (recovery runs on open).
    pub fn file_wal(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Ok(StorageHandle::new(FileWal::open(path)?))
    }

    /// A handle over a [`SegmentedWal`] in `dir`, rotating at
    /// `segment_budget` bytes (recovery runs on open).
    pub fn segmented_wal(
        dir: impl Into<PathBuf>,
        segment_budget: u64,
    ) -> Result<Self, StorageError> {
        Ok(StorageHandle::new(SegmentedWal::open(dir, segment_budget)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, dyn Storage + 'static> {
        // A poisoned mutex means another incarnation panicked mid-append; the
        // backend's own recovery (frame checksums) handles partial state, so
        // continuing is safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one opaque record.
    pub fn append(&self, record: &[u8]) -> Result<(), StorageError> {
        let start = std::time::Instant::now();
        let result = self.lock().append(record);
        self.timing.note(start.elapsed().as_micros() as u64);
        result
    }

    /// Returns all records in append order.
    pub fn load(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        self.lock().load()
    }

    /// Appends several opaque records as one group commit (one flush; see
    /// [`Storage::append_group`]).
    pub fn append_group(&self, records: &[Vec<u8>]) -> Result<(), StorageError> {
        if records.is_empty() {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let result = self.lock().append_group(records);
        self.timing.note(start.elapsed().as_micros() as u64);
        result
    }

    /// Appends a typed record, serialised with its [`Wire`] encoding.
    pub fn append_record<R: Wire>(&self, record: &R) -> Result<(), StorageError> {
        self.append(&record.to_bytes())
    }

    /// Appends several typed records as one group commit: serialises each
    /// with its [`Wire`] encoding and makes them all durable with a single
    /// flush ([`Storage::append_group`]).
    pub fn append_records<R: Wire>(&self, records: &[R]) -> Result<(), StorageError> {
        let blobs: Vec<Vec<u8>> = records.iter().map(Wire::to_bytes).collect();
        self.append_group(&blobs)
    }

    /// Loads and decodes all records as type `R`.
    pub fn load_records<R: Wire>(&self) -> Result<Vec<R>, StorageError> {
        self.load()?
            .iter()
            .map(|blob| R::from_bytes(blob).map_err(StorageError::from))
            .collect()
    }

    /// Atomically replaces the whole log with `live` (see
    /// [`Storage::compact_to`]).
    pub fn compact_to(&self, live: &[Vec<u8>]) -> Result<(), StorageError> {
        self.lock().compact_to(live)
    }

    /// Typed form of [`StorageHandle::compact_to`]: serialises each live
    /// record with its [`Wire`] encoding.
    pub fn compact_records<R: Wire>(&self, live: &[R]) -> Result<(), StorageError> {
        let blobs: Vec<Vec<u8>> = live.iter().map(Wire::to_bytes).collect();
        self.compact_to(&blobs)
    }

    /// Current size accounting of the backend (see [`Storage::stats`]).
    pub fn stats(&self) -> StorageStats {
        self.lock().stats()
    }

    /// Cumulative flush-timing account of this handle (shared across
    /// clones; see [`FlushStats`]).
    pub fn flush_stats(&self) -> FlushStats {
        self.timing.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("lls-wal-{}-{tag}-{seq}.wal", std::process::id()))
    }

    struct TempWal {
        path: PathBuf,
    }

    impl TempWal {
        fn new(tag: &str) -> Self {
            TempWal {
                path: temp_path(tag),
            }
        }
    }

    impl Drop for TempWal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    #[test]
    fn mem_storage_round_trips() {
        let store = StorageHandle::in_memory();
        store.append(b"a").unwrap();
        store.append(b"bb").unwrap();
        assert_eq!(store.load().unwrap(), vec![b"a".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let store = StorageHandle::in_memory();
        let incarnation_one = store.clone();
        incarnation_one.append(b"promise").unwrap();
        drop(incarnation_one); // the process "crashes"
        let incarnation_two = store.clone();
        assert_eq!(incarnation_two.load().unwrap(), vec![b"promise".to_vec()]);
    }

    #[test]
    fn typed_records_round_trip() {
        let store = StorageHandle::in_memory();
        store.append_record(&7u64).unwrap();
        store.append_record(&9u64).unwrap();
        assert_eq!(store.load_records::<u64>().unwrap(), vec![7, 9]);
    }

    #[test]
    fn typed_decode_mismatch_is_an_error() {
        let store = StorageHandle::in_memory();
        store.append_record(&String::from("not a bool")).unwrap();
        assert!(matches!(
            store.load_records::<bool>(),
            Err(StorageError::Decode(_))
        ));
    }

    #[test]
    fn group_append_preserves_order_and_interleaves_with_singles() {
        let store = StorageHandle::in_memory();
        store.append(b"solo").unwrap();
        store
            .append_group(&[b"g1".to_vec(), b"g2".to_vec(), b"g3".to_vec()])
            .unwrap();
        store.append(b"tail").unwrap();
        assert_eq!(
            store.load().unwrap(),
            vec![
                b"solo".to_vec(),
                b"g1".to_vec(),
                b"g2".to_vec(),
                b"g3".to_vec(),
                b"tail".to_vec()
            ]
        );
    }

    #[test]
    fn typed_group_round_trips() {
        let store = StorageHandle::in_memory();
        store.append_records(&[1u64, 2, 3]).unwrap();
        store.append_record(&4u64).unwrap();
        assert_eq!(store.load_records::<u64>().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_group_flush_is_a_noop() {
        let tmp = TempWal::new("empty-group");
        let mut wal = FileWal::open(&tmp.path).unwrap();
        wal.append(b"only").unwrap();
        let len_before = std::fs::metadata(&tmp.path).unwrap().len();
        wal.append_group(&[]).unwrap();
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len(),
            len_before,
            "an empty group must not touch the file"
        );
        assert_eq!(wal.load().unwrap(), vec![b"only".to_vec()]);
    }

    #[test]
    fn file_wal_group_survives_reopen() {
        let tmp = TempWal::new("group");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()])
                .unwrap();
        }
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
    }

    #[test]
    fn torn_tail_inside_a_group_recovers_whole_record_prefix() {
        // A crash mid-group-write must never surface a partial record: the
        // torn frame is truncated and every *whole* record before it — from
        // the same group — survives.
        let tmp = TempWal::new("group-torn");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"first".to_vec(), b"second".to_vec(), b"third".to_vec()])
                .unwrap();
        }
        // Tear into the middle of the group's final record.
        let len = std::fs::metadata(&tmp.path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()],
            "recovery keeps the whole-record prefix of the torn group"
        );
        // The truncated WAL accepts further groups cleanly.
        wal.append_group(&[b"fourth".to_vec()]).unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn tear_at_group_flush_boundary_loses_only_the_unflushed_group() {
        // Two group commits; the crash wipes exactly the second flush. The
        // first group — one flush, three records — survives in full.
        let tmp = TempWal::new("group-boundary");
        let boundary;
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append_group(&[b"g1a".to_vec(), b"g1b".to_vec(), b"g1c".to_vec()])
                .unwrap();
            boundary = std::fs::metadata(&tmp.path).unwrap().len();
            wal.append_group(&[b"g2a".to_vec(), b"g2b".to_vec()])
                .unwrap();
        }
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(boundary).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"g1a".to_vec(), b"g1b".to_vec(), b"g1c".to_vec()]
        );
    }

    #[test]
    fn file_wal_round_trips_across_reopen() {
        let tmp = TempWal::new("roundtrip");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"one".to_vec(), b"two".to_vec()]);
        wal.append(b"three").unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn empty_file_recovers_to_empty_log() {
        let tmp = TempWal::new("empty");
        std::fs::write(&tmp.path, b"").unwrap();
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn truncated_tail_record_recovers_to_valid_prefix() {
        let tmp = TempWal::new("torn");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third-will-be-torn").unwrap();
        }
        // Tear the final record: chop off its last 3 bytes (simulating a
        // crash mid-append).
        let len = std::fs::metadata(&tmp.path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&tmp.path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()]
        );
        // Recovery truncated the torn bytes, so a new append lands cleanly.
        wal.append(b"fourth").unwrap();
        drop(wal);
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap().len(), 3);
    }

    #[test]
    fn corrupted_crc_mid_log_truncates_from_crash_point() {
        let tmp = TempWal::new("crc");
        let second_start;
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"good").unwrap();
            second_start = std::fs::metadata(&tmp.path).unwrap().len();
            wal.append(b"corrupt-me").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        // Flip one byte inside the second record's body: its CRC no longer
        // matches, and everything from there on is untrusted.
        let mut bytes = std::fs::read(&tmp.path).unwrap();
        let flip_at = second_start as usize + LEN_PREFIX + 2;
        bytes[flip_at] ^= 0xff;
        std::fs::write(&tmp.path, &bytes).unwrap();

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"good".to_vec()]);
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len(),
            second_start,
            "recovery truncates at the first corrupt frame"
        );
    }

    struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("lls-dir-{}-{tag}-{seq}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    #[test]
    fn mem_storage_compacts_and_tracks_stats() {
        let store = StorageHandle::in_memory();
        store.append(b"aaaa").unwrap();
        store.append(b"bb").unwrap();
        assert_eq!(store.stats().appended_bytes, 6);
        assert_eq!(store.stats().live_bytes, 6);
        store.compact_to(&[b"bb".to_vec()]).unwrap();
        assert_eq!(store.load().unwrap(), vec![b"bb".to_vec()]);
        assert_eq!(store.stats().live_bytes, 2);
        assert_eq!(
            store.stats().appended_bytes,
            6,
            "cumulative volume survives compaction"
        );
    }

    #[test]
    fn file_wal_compaction_is_atomic_and_appendable() {
        let tmp = TempWal::new("compact");
        let mut wal = FileWal::open(&tmp.path).unwrap();
        for i in 0..10u64 {
            wal.append(format!("record-{i}").as_bytes()).unwrap();
        }
        let full = std::fs::metadata(&tmp.path).unwrap().len();
        wal.compact_to(&[b"record-8".to_vec(), b"record-9".to_vec()])
            .unwrap();
        assert!(std::fs::metadata(&tmp.path).unwrap().len() < full);
        wal.append(b"record-10").unwrap();
        drop(wal);
        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![
                b"record-8".to_vec(),
                b"record-9".to_vec(),
                b"record-10".to_vec()
            ]
        );
    }

    #[test]
    fn segmented_wal_rotates_at_the_byte_budget() {
        let dir = TempDir::new("seg-rotate");
        let mut wal = SegmentedWal::open(&dir.path, 64).unwrap();
        for i in 0..20u64 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        let stats = wal.stats();
        assert!(
            stats.segments > 1,
            "64-byte budget must force rotation: {stats:?}"
        );
        assert_eq!(wal.load().unwrap().len(), 20);
        // Reopen: same records, same segment layout.
        drop(wal);
        let mut wal = SegmentedWal::open(&dir.path, 64).unwrap();
        assert_eq!(wal.load().unwrap().len(), 20);
        assert_eq!(wal.stats().segments, stats.segments);
    }

    #[test]
    fn segmented_wal_compaction_bounds_disk_and_survives_reopen() {
        let dir = TempDir::new("seg-compact");
        let mut wal = SegmentedWal::open(&dir.path, 64).unwrap();
        for i in 0..50u64 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        let before = wal.stats();
        wal.compact_to(&[b"live-1".to_vec(), b"live-2".to_vec()])
            .unwrap();
        let after = wal.stats();
        assert_eq!(after.segments, 1, "compaction leaves one fresh segment");
        assert!(after.live_bytes < before.live_bytes / 5);
        assert_eq!(
            after.appended_bytes, before.appended_bytes,
            "cumulative volume is not reset by compaction"
        );
        wal.append(b"live-3").unwrap();
        drop(wal);
        let mut wal = SegmentedWal::open(&dir.path, 64).unwrap();
        assert_eq!(
            wal.load().unwrap(),
            vec![b"live-1".to_vec(), b"live-2".to_vec(), b"live-3".to_vec()]
        );
    }

    #[test]
    fn segmented_wal_truncates_crash_point_and_drops_later_segments() {
        let dir = TempDir::new("seg-torn");
        {
            let mut wal = SegmentedWal::open(&dir.path, 48).unwrap();
            for i in 0..30u64 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
            assert!(wal.stats().segments >= 3);
        }
        // Corrupt a frame in the *middle* segment: everything from that
        // point on — including whole later segments — is untrusted.
        let mut seqs: Vec<u64> = std::fs::read_dir(&dir.path)
            .unwrap()
            .filter_map(|e| segment_seq(&e.unwrap().path()))
            .collect();
        seqs.sort_unstable();
        let victim = dir.path.join(format!("wal-{:08}.seg", seqs[1]));
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();

        let mut wal = SegmentedWal::open(&dir.path, 48).unwrap();
        let recovered = wal.load().unwrap();
        assert!(recovered.len() < 30, "the tail after the flip is gone");
        assert!(
            !recovered.is_empty(),
            "the valid prefix before the flip survives"
        );
        for (i, rec) in recovered.iter().enumerate() {
            assert_eq!(rec, format!("record-{i:04}").as_bytes(), "prefix intact");
        }
        assert_eq!(
            wal.stats().segments,
            2,
            "segments after the crash point are deleted"
        );
        // The recovered WAL accepts appends cleanly.
        wal.append(b"fresh").unwrap();
        assert_eq!(wal.load().unwrap().len(), recovered.len() + 1);
    }

    #[test]
    fn snapshot_store_round_trips_and_replaces() {
        let dir = TempDir::new("snap");
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        assert_eq!(store.load().unwrap(), None);
        let first = Snapshot {
            watermark: 10,
            data: b"state@10".to_vec(),
        };
        store.install(&first).unwrap();
        assert_eq!(store.load().unwrap(), Some(first));
        let second = Snapshot {
            watermark: 25,
            data: b"state@25".to_vec(),
        };
        store.install(&second).unwrap();
        // Reopen: only the newest snapshot remains, found via MANIFEST.
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        assert_eq!(store.load().unwrap(), Some(second));
        let blobs = std::fs::read_dir(&dir.path)
            .unwrap()
            .filter(|e| snapshot_watermark(&e.as_ref().unwrap().path()).is_some())
            .count();
        assert_eq!(blobs, 1, "older blobs are deleted after manifest update");
    }

    /// The satellite crash-window case: the blob rename landed but the
    /// manifest update was lost (crash between rename and directory sync).
    /// Recovery must still find the newest valid blob by directory scan.
    #[test]
    fn lost_manifest_falls_back_to_directory_scan() {
        let dir = TempDir::new("snap-lost-manifest");
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        let snap = Snapshot {
            watermark: 42,
            data: b"state@42".to_vec(),
        };
        store.install(&snap).unwrap();
        std::fs::remove_file(dir.path.join("MANIFEST")).unwrap();
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        assert_eq!(store.load().unwrap(), Some(snap));
    }

    /// A corrupt manifest (bad checksum) must not poison recovery: the
    /// directory scan fallback still yields the newest valid blob.
    #[test]
    fn corrupt_manifest_falls_back_to_directory_scan() {
        let dir = TempDir::new("snap-corrupt-manifest");
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        let snap = Snapshot {
            watermark: 7,
            data: b"state@7".to_vec(),
        };
        store.install(&snap).unwrap();
        let manifest = dir.path.join("MANIFEST");
        let mut bytes = std::fs::read(&manifest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&manifest, &bytes).unwrap();
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        assert_eq!(store.load().unwrap(), Some(snap));
    }

    #[test]
    fn corrupt_blob_is_skipped_by_the_fallback() {
        let dir = TempDir::new("snap-corrupt-blob");
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        let good = Snapshot {
            watermark: 5,
            data: b"good".to_vec(),
        };
        store.install(&good).unwrap();
        // A later blob that never completed (torn write before rename
        // would normally prevent this, but defend against byte rot too).
        std::fs::write(dir.path.join("snap-00000000000000000009.snap"), b"junk").unwrap();
        std::fs::remove_file(dir.path.join("MANIFEST")).unwrap();
        let mut store = FileSnapshotStore::open(&dir.path).unwrap();
        assert_eq!(store.load().unwrap(), Some(good));
    }

    #[test]
    fn snapshot_handle_is_shared_across_clones() {
        let handle = SnapshotHandle::in_memory();
        let incarnation_one = handle.clone();
        incarnation_one
            .install(&Snapshot {
                watermark: 3,
                data: b"s".to_vec(),
            })
            .unwrap();
        drop(incarnation_one);
        assert_eq!(handle.load().unwrap().unwrap().watermark, 3);
    }

    #[test]
    fn garbage_length_prefix_truncates() {
        let tmp = TempWal::new("garbage");
        {
            let mut wal = FileWal::open(&tmp.path).unwrap();
            wal.append(b"keep").unwrap();
        }
        // Append garbage that claims an absurd frame length.
        let mut bytes = std::fs::read(&tmp.path).unwrap();
        let keep_len = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&tmp.path, &bytes).unwrap();

        let mut wal = FileWal::open(&tmp.path).unwrap();
        assert_eq!(wal.load().unwrap(), vec![b"keep".to_vec()]);
        assert_eq!(
            std::fs::metadata(&tmp.path).unwrap().len() as usize,
            keep_len
        );
    }

    #[test]
    fn flush_stats_account_for_durable_appends() {
        let h = StorageHandle::in_memory();
        assert_eq!(h.flush_stats(), FlushStats::default());
        h.append(b"one").unwrap();
        h.append_group(&[b"two".to_vec(), b"three".to_vec()])
            .unwrap();
        h.append_group(&[]).unwrap();
        let fs = h.flush_stats();
        assert_eq!(fs.flushes, 2, "empty groups are not flushes");
        assert!(fs.total_micros >= fs.last_micros);
        // Clones share one account — a restarted incarnation writing
        // through its clone keeps accumulating into the same history.
        let clone = h.clone();
        clone.append(b"four").unwrap();
        assert_eq!(h.flush_stats().flushes, 3);
    }
}
