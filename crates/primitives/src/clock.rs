//! Per-process Lamport clocks for the causal tracing plane.
//!
//! Every substrate advances a [`LamportClock`] per process: the clock ticks
//! on each send (the new value is the stamp carried in the frame's
//! [`TraceEnvelope`]) and merges on each receive
//! (`max(local, stamp) + 1`) *before* the protocol handler runs. That gives
//! every probe event emitted by a handler a causal position strictly after
//! the send that triggered it — the classic happens-before construction
//! (Lamport 1978).
//!
//! The clock is a shared handle (`Clone` copies the `Arc`, not the value):
//! transports that receive on one thread and run the protocol on another —
//! `wirenet`'s reader threads — can merge from any thread without locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::wire::TraceEnvelope;

/// A shared, lock-free Lamport clock plus the node's 64-bit trace/epoch id.
///
/// Cloning yields another handle to the *same* clock.
#[derive(Debug, Clone, Default)]
pub struct LamportClock {
    lamport: Arc<AtomicU64>,
    trace_id: Arc<AtomicU64>,
}

impl LamportClock {
    /// A fresh clock at 0 with the given trace/epoch id.
    pub fn new(trace_id: u64) -> Self {
        LamportClock {
            lamport: Arc::new(AtomicU64::new(0)),
            trace_id: Arc::new(AtomicU64::new(trace_id)),
        }
    }

    /// The current clock value, without advancing it.
    pub fn now(&self) -> u64 {
        self.lamport.load(Ordering::SeqCst)
    }

    /// The current trace/epoch id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id.load(Ordering::SeqCst)
    }

    /// Replaces the trace/epoch id (e.g. on restart with a new incarnation).
    pub fn set_trace_id(&self, id: u64) {
        self.trace_id.store(id, Ordering::SeqCst);
    }

    /// Advances the clock for a local event (a send) and returns the new
    /// value — the stamp to carry on the wire.
    pub fn tick(&self) -> u64 {
        self.lamport.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Ticks and wraps the new value in a [`TraceEnvelope`] carrying the
    /// current trace id. This is the send-side stamping operation.
    pub fn stamp(&self) -> TraceEnvelope {
        TraceEnvelope {
            lamport: self.tick(),
            trace_id: self.trace_id(),
        }
    }

    /// Merges a received stamp: the clock becomes
    /// `max(local, observed) + 1` and the new value is returned. Run this
    /// *before* delivering the message to the protocol, so events the
    /// handler emits sit causally after the send.
    pub fn observe(&self, observed: u64) -> u64 {
        let mut cur = self.lamport.load(Ordering::SeqCst);
        loop {
            let next = cur.max(observed) + 1;
            match self
                .lamport
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Merges a received envelope's Lamport component.
    pub fn observe_envelope(&self, env: &TraceEnvelope) -> u64 {
        self.observe(env.lamport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotone() {
        let c = LamportClock::new(7);
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn observe_jumps_past_the_stamp() {
        let c = LamportClock::new(0);
        assert_eq!(c.observe(100), 101);
        // A stale stamp still advances the clock by one.
        assert_eq!(c.observe(3), 102);
    }

    #[test]
    fn clones_share_state() {
        let a = LamportClock::new(1);
        let b = a.clone();
        a.tick();
        assert_eq!(b.now(), 1);
        b.set_trace_id(9);
        assert_eq!(a.trace_id(), 9);
    }

    #[test]
    fn stamp_carries_trace_id() {
        let c = LamportClock::new(0xdead);
        let env = c.stamp();
        assert_eq!(env.trace_id, 0xdead);
        assert_eq!(env.lamport, c.now());
    }

    #[test]
    fn concurrent_merges_never_lose_progress() {
        let c = LamportClock::new(0);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        c.observe(i * 1000 + k);
                        c.tick();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        // 8 threads x 2000 events each; every event advances by >= 1.
        assert!(c.now() >= 16_000);
    }
}
