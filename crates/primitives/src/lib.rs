//! Shared kernel for the *limited link synchrony* reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`ProcessId`] and [`Membership`] — the process universe `Π` of the paper's
//!   model (a finite, totally ordered, known set of `n > 1` processes),
//! * [`Instant`] and [`Duration`] — discrete virtual time,
//! * the *sans-io* state-machine abstraction ([`Sm`], [`Ctx`], [`Effects`]) —
//!   algorithms are written as pure state machines that react to messages and
//!   timers by emitting *effects* (sends, timer commands, outputs). The same
//!   algorithm code then runs unchanged on the deterministic discrete-event
//!   simulator (`netsim`), on the real-time thread runtime (`threadnet`), and
//!   over real TCP sockets (`wirenet`),
//! * the [`wire`] codec — a versioned, checksummed binary framing shared by
//!   every transport that serialises messages onto a byte stream,
//! * the [`FaultInjector`] — the seeded loss/delay model both real-time
//!   runtimes apply to messages in flight,
//! * the [`clock`] module — per-process [`LamportClock`]s the substrates
//!   advance on every send and receive, giving each observability event a
//!   causal (happens-before) position for cross-node trace reconstruction,
//! * the [`storage`] module — durable per-process state ([`Storage`],
//!   [`StorageHandle`], in-memory and file-WAL backends) through which
//!   protocols persist crash-critical state so a killed process can restart
//!   without violating promises made before the crash.
//!
//! # Why sans-io?
//!
//! The paper's claims are of the form "there is a time after which …": they
//! quantify over *all* admissible schedules of an adversarial network. Testing
//! such claims requires running the identical algorithm under many adversarial
//! schedules, deterministically, and inspecting complete traces. Decoupling
//! the algorithm (pure state machine) from the environment (runtime) is what
//! makes that possible, and is standard practice for production protocol
//! implementations in Rust.
//!
//! # Example
//!
//! A trivial state machine that broadcasts a ping on start and reports who
//! answered:
//!
//! ```
//! use lls_primitives::{Ctx, Duration, Effects, Env, Instant, ProcessId, Sm, TimerId};
//!
//! struct Ping { heard: Vec<ProcessId> }
//!
//! impl Sm for Ping {
//!     type Msg = &'static str;
//!     type Output = ProcessId;
//!     type Request = ();
//!
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
//!         ctx.broadcast("ping");
//!     }
//!
//!     fn on_message(
//!         &mut self,
//!         ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
//!         from: ProcessId,
//!         msg: &'static str,
//!     ) {
//!         match msg {
//!             "ping" => ctx.send(from, "pong"),
//!             "pong" => {
//!                 self.heard.push(from);
//!                 ctx.output(from);
//!             }
//!             _ => {}
//!         }
//!     }
//!
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg, Self::Output>, _t: TimerId) {}
//! }
//!
//! let env = Env::new(ProcessId(0), 3);
//! let mut fx = Effects::new();
//! let mut sm = Ping { heard: Vec::new() };
//! sm.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
//! assert_eq!(fx.sends.len(), 2); // broadcast to the other two processes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod clock;
pub mod fault;
mod id;
mod sm;
pub mod storage;
mod time;
pub mod wire;

pub use clock::LamportClock;
pub use fault::{Fate, FaultInjector};
pub use id::{Membership, ProcessId};
pub use sm::{Ctx, Effects, Env, Send, Sm, TimerCmd, TimerId};
pub use storage::{
    FileSnapshotStore, FileWal, FlushStats, MemSnapshotStore, MemStorage, SegmentedWal, Snapshot,
    SnapshotHandle, SnapshotStore, Storage, StorageError, StorageHandle, StorageStats,
};
pub use time::{Duration, Instant};
pub use wire::{TraceEnvelope, Wire, WireError};
