//! The sans-io state-machine abstraction.
//!
//! A protocol is an [`Sm`]: a pure state machine driven by three stimuli —
//! start, message delivery, timer expiry (plus optional external requests) —
//! that reacts by recording *effects* into a [`Ctx`]: message sends, timer
//! commands and protocol outputs. A runtime (the `netsim` simulator or the
//! `threadnet` thread runtime) owns the loop that feeds stimuli in and carries
//! effects out.
//!
//! Timers follow *reset semantics*: setting a timer that is already pending
//! re-arms it (the old deadline is discarded). This matches the pseudocode
//! idiom "reset timer to Timeout\[q\]" pervasive in the failure-detector
//! literature.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Duration, Instant, Membership, ProcessId};

/// A process-local timer name.
///
/// Protocols declare timer ids as constants. Ids are namespaced per process;
/// two processes using the same `TimerId` own distinct timers. When protocols
/// are *embedded* (e.g. consensus embedding Ω), the outer protocol remaps the
/// inner protocol's timer ids into a reserved range.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimerId(pub u32);

impl TimerId {
    /// Returns a timer id offset by `base`, for embedding protocols.
    #[inline]
    pub fn offset(self, base: u32) -> TimerId {
        TimerId(self.0 + base)
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

/// A queued outbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Send<M> {
    /// Destination process.
    pub to: ProcessId,
    /// Payload.
    pub msg: M,
}

/// A timer command produced by a state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerCmd {
    /// (Re-)arm `timer` to fire `after` from now.
    Set {
        /// Timer to arm.
        timer: TimerId,
        /// Delay until expiry.
        after: Duration,
    },
    /// Cancel `timer` if pending; no-op otherwise.
    Cancel {
        /// Timer to cancel.
        timer: TimerId,
    },
}

/// The effects emitted by one state-machine step.
///
/// Runtimes drain this after every stimulus. Protocols that embed other
/// protocols allocate a private `Effects` for the inner machine and translate
/// its contents.
#[derive(Debug, Clone)]
pub struct Effects<M, O> {
    /// Outbound messages, in emission order.
    pub sends: Vec<Send<M>>,
    /// Timer set/cancel commands, in emission order.
    pub timers: Vec<TimerCmd>,
    /// Protocol outputs (e.g. leader changes, decisions), in emission order.
    pub outputs: Vec<O>,
}

impl<M, O> Effects<M, O> {
    /// Creates an empty effect buffer.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            timers: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Returns `true` if the step produced no effects at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.outputs.is_empty()
    }

    /// Removes and returns all effects, leaving the buffer empty.
    pub fn take(&mut self) -> Effects<M, O> {
        Effects {
            sends: std::mem::take(&mut self.sends),
            timers: std::mem::take(&mut self.timers),
            outputs: std::mem::take(&mut self.outputs),
        }
    }
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Effects::new()
    }
}

/// Static per-process environment: who am I, how large is `Π`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Env {
    id: ProcessId,
    membership: Membership,
}

impl Env {
    /// Creates the environment for process `id` in a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `id` is out of range.
    pub fn new(id: ProcessId, n: usize) -> Self {
        let membership = Membership::new(n);
        assert!(membership.contains(id), "{id} out of range for n={n}");
        Env { id, membership }
    }

    /// This process's identity.
    #[inline]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The process universe.
    #[inline]
    pub fn membership(&self) -> Membership {
        self.membership
    }

    /// System size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.membership.n()
    }
}

/// The per-stimulus context handed to a state machine.
///
/// Carries the static environment, the current time, and the effect buffer
/// the machine writes into. See the crate-level example.
#[derive(Debug)]
pub struct Ctx<'a, M, O> {
    env: &'a Env,
    now: Instant,
    effects: &'a mut Effects<M, O>,
}

impl<'a, M, O> Ctx<'a, M, O> {
    /// Creates a context over `effects` at time `now`.
    pub fn new(env: &'a Env, now: Instant, effects: &'a mut Effects<M, O>) -> Self {
        Ctx { env, now, effects }
    }

    /// This process's identity.
    #[inline]
    pub fn id(&self) -> ProcessId {
        self.env.id()
    }

    /// The process universe.
    #[inline]
    pub fn membership(&self) -> Membership {
        self.env.membership()
    }

    /// System size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.env.n()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Queues a message to `to`.
    ///
    /// Sending to self is allowed and delivered like any other message by the
    /// runtime (useful for testing), but the algorithms in this workspace
    /// never rely on it.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.sends.push(Send { to, msg });
    }

    /// Queues `msg` to every process except self.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let me = self.id();
        // Collect first: iterating the membership borrows `self.env` which is
        // disjoint from `self.effects`, but the closure would capture `self`.
        let others: Vec<ProcessId> = self.membership().others(me).collect();
        for to in others {
            self.effects.sends.push(Send {
                to,
                msg: msg.clone(),
            });
        }
    }

    /// (Re-)arms `timer` to fire `after` from now.
    pub fn set_timer(&mut self, timer: TimerId, after: Duration) {
        self.effects.timers.push(TimerCmd::Set { timer, after });
    }

    /// Cancels `timer` if pending.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.effects.timers.push(TimerCmd::Cancel { timer });
    }

    /// Records a protocol output.
    pub fn output(&mut self, out: O) {
        self.effects.outputs.push(out);
    }
}

/// A sans-io protocol state machine.
///
/// Runtimes guarantee:
///
/// * [`Sm::on_start`] is called exactly once, before any other stimulus;
/// * stimuli are delivered one at a time (no reentrancy);
/// * a crashed process receives no further stimuli (crash-stop model);
/// * timer expiries respect reset semantics.
pub trait Sm {
    /// Wire message type exchanged between instances of this machine.
    type Msg: Clone + fmt::Debug + std::marker::Send + 'static;
    /// Observable protocol output (leader changes, decisions, …).
    type Output: Clone + fmt::Debug + std::marker::Send + 'static;
    /// External request type (client commands); use `()` if unused.
    type Request: Clone + fmt::Debug + std::marker::Send + 'static;

    /// Called once when the process starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>);

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    );

    /// Called when `timer` expires (and was not re-armed or cancelled since).
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId);

    /// Called when an external request (client command) arrives. Default: ignore.
    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        let _ = (ctx, req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_targets_everyone_but_self() {
        let env = Env::new(ProcessId(1), 4);
        let mut fx: Effects<u8, ()> = Effects::new();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        ctx.broadcast(9);
        let dests: Vec<_> = fx.sends.iter().map(|s| s.to).collect();
        assert_eq!(dests, vec![ProcessId(0), ProcessId(2), ProcessId(3)]);
        assert!(fx.sends.iter().all(|s| s.msg == 9));
    }

    #[test]
    fn effects_take_empties_buffer() {
        let env = Env::new(ProcessId(0), 2);
        let mut fx: Effects<u8, u8> = Effects::new();
        let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
        ctx.send(ProcessId(1), 1);
        ctx.set_timer(TimerId(0), Duration::from_ticks(5));
        ctx.output(7);
        assert!(!fx.is_empty());
        let taken = fx.take();
        assert!(fx.is_empty());
        assert_eq!(taken.sends.len(), 1);
        assert_eq!(taken.timers.len(), 1);
        assert_eq!(taken.outputs, vec![7]);
    }

    #[test]
    fn env_rejects_out_of_range_id() {
        let r = std::panic::catch_unwind(|| Env::new(ProcessId(5), 3));
        assert!(r.is_err());
    }

    #[test]
    fn timer_offset_shifts_namespace() {
        assert_eq!(TimerId(3).offset(100), TimerId(103));
    }

    #[test]
    fn ctx_exposes_environment() {
        let env = Env::new(ProcessId(2), 5);
        let mut fx: Effects<(), ()> = Effects::new();
        let ctx = Ctx::new(&env, Instant::from_ticks(9), &mut fx);
        assert_eq!(ctx.id(), ProcessId(2));
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.now(), Instant::from_ticks(9));
    }
}
