//! Process identities and the known membership `Π`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The identity of a process in `Π = {0, …, n-1}`.
///
/// The paper's model assumes a finite, *totally ordered* set of processes whose
/// identities are known to everyone; the total order is what lets algorithms
/// break ties between accusation counters ("smallest counter, then smallest
/// id"). We realize the order as the natural order on the wrapped index.
///
/// # Example
///
/// ```
/// use lls_primitives::ProcessId;
///
/// let p = ProcessId(2);
/// let q = ProcessId(5);
/// assert!(p < q);
/// assert_eq!(p.as_usize(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the id as an index into per-process tables.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// The known process universe `Π` of size `n`.
///
/// The paper assumes `n > 1` and that every process knows `n`; [`Membership::new`]
/// enforces the former.
///
/// # Example
///
/// ```
/// use lls_primitives::{Membership, ProcessId};
///
/// let m = Membership::new(4);
/// assert_eq!(m.n(), 4);
/// assert_eq!(m.iter().count(), 4);
/// assert_eq!(m.others(ProcessId(1)).count(), 3);
/// assert_eq!(m.majority(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Membership {
    n: u32,
}

impl Membership {
    /// Creates a membership of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`: the paper's model requires `n > 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "the model requires n > 1 processes, got {n}");
        assert!(n <= u32::MAX as usize, "membership too large");
        Membership { n: n as u32 }
    }

    /// Number of processes in the system.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Smallest quorum size that any two quorums intersect: `⌊n/2⌋ + 1`.
    ///
    /// Consensus in system `S_maj` assumes a majority of correct processes;
    /// this is the matching quorum size.
    #[inline]
    pub fn majority(&self) -> usize {
        self.n() / 2 + 1
    }

    /// Returns `true` if `p` is a member.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        p.0 < self.n
    }

    /// Iterates over all members in id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId)
    }

    /// Iterates over all members except `me`, in id order.
    pub fn others(&self, me: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId).filter(move |&p| p != me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_order_is_total_and_matches_index() {
        let mut ids: Vec<ProcessId> = (0..10).rev().map(ProcessId).collect();
        ids.sort();
        assert_eq!(ids, (0..10).map(ProcessId).collect::<Vec<_>>());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ProcessId(7).to_string(), "p7");
    }

    #[test]
    fn membership_iteration_covers_universe() {
        let m = Membership::new(5);
        assert_eq!(m.iter().count(), 5);
        assert!(m.contains(ProcessId(4)));
        assert!(!m.contains(ProcessId(5)));
    }

    #[test]
    fn others_excludes_self_only() {
        let m = Membership::new(5);
        let others: Vec<_> = m.others(ProcessId(2)).collect();
        assert_eq!(
            others,
            vec![ProcessId(0), ProcessId(1), ProcessId(3), ProcessId(4)]
        );
    }

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(Membership::new(2).majority(), 2);
        assert_eq!(Membership::new(3).majority(), 2);
        assert_eq!(Membership::new(4).majority(), 3);
        assert_eq!(Membership::new(5).majority(), 3);
        assert_eq!(Membership::new(6).majority(), 4);
        assert_eq!(Membership::new(7).majority(), 4);
    }

    #[test]
    #[should_panic(expected = "n > 1")]
    fn singleton_membership_rejected() {
        let _ = Membership::new(1);
    }
}
