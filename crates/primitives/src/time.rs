//! Discrete virtual time.
//!
//! The paper's model has unknown real-time bounds (`δ`, GST) but only ever
//! reasons about *orderings* of events; any discrete clock is faithful. We use
//! `u64` ticks. Conventionally one tick ≈ one "time unit" of the paper; the
//! heartbeat period `η`, link delays `δ` and GST are all expressed in ticks.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in ticks since the start of the run.
///
/// # Example
///
/// ```
/// use lls_primitives::{Duration, Instant};
///
/// let t = Instant::ZERO + Duration::from_ticks(10);
/// assert_eq!(t.ticks(), 10);
/// assert_eq!(t - Instant::ZERO, Duration::from_ticks(10));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Instant(u64);

impl Instant {
    /// The origin of virtual time.
    pub const ZERO: Instant = Instant(0);

    /// A time later than every time reachable in practice.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant at `ticks` ticks from the origin.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Instant(ticks)
    }

    /// Ticks since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A span of virtual time, in ticks.
///
/// # Example
///
/// ```
/// use lls_primitives::Duration;
///
/// let d = Duration::from_ticks(3) * 4;
/// assert_eq!(d.ticks(), 12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `ticks` ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Length in ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Instant::saturating_since`] when the order is not statically known.
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        debug_assert!(rhs <= self, "instant subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Instant::from_ticks(100);
        let d = Duration::from_ticks(40);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + Duration::ZERO, t);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = Instant::from_ticks(5);
        let b = Instant::from_ticks(9);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_ticks(4));
    }

    #[test]
    fn addition_saturates_instead_of_overflowing() {
        let t = Instant::MAX;
        assert_eq!(t + Duration::from_ticks(1), Instant::MAX);
        let d = Duration::from_ticks(u64::MAX);
        assert_eq!(d * 3, d);
        assert_eq!(d + d, d);
    }

    #[test]
    fn ordering_matches_ticks() {
        assert!(Instant::from_ticks(3) < Instant::from_ticks(4));
        assert!(Duration::from_ticks(3) < Duration::from_ticks(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instant::from_ticks(7).to_string(), "t7");
        assert_eq!(Duration::from_ticks(7).to_string(), "7t");
    }
}
