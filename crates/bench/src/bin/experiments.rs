//! CLI regenerating every experiment table/series (E1–E23).
//!
//! Usage:
//!   cargo run -p omega-bench --release --bin experiments -- all
//!   cargo run -p omega-bench --release --bin experiments -- e3 e7
//!   cargo run -p omega-bench --release --bin experiments -- --quick all
//!   cargo run -p omega-bench --release --bin experiments -- --out-dir bench-out e18
//!
//! Alongside each table the CLI writes a machine-readable summary to
//! `BENCH_E<N>.json` — in the current directory by default, or under
//! `--out-dir <path>` (created if missing) so CI can upload the whole
//! directory as one artifact. E17/E18 additionally embed metrics snapshots
//! and span statistics.
//!
//! The process exits non-zero when E16's chaos campaign, E21's recovery
//! gates, or E23's read-path gates report violations, so they gate CI
//! directly. The special `e23-violation` id runs E23's *induced* lease
//! violation and exits non-zero when the StaleRead watchdog fires as
//! intended — CI asserts that non-zero exit.

use std::path::PathBuf;

use omega_bench::json::{self, JsonValue};
use omega_bench::table::Table;
use omega_bench::{
    e_chaos, e_consensus, e_latency, e_obs, e_omega, e_read, e_recovery, e_shard, e_thread,
    e_throughput, e_trace, e_wire,
};

struct Scale {
    seeds: u64,
    horizon: u64,
    long_horizon: u64,
    sizes: Vec<usize>,
    quick: bool,
    out_dir: Option<PathBuf>,
}

impl Scale {
    fn scenario_json(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("seeds", JsonValue::U64(self.seeds)),
            ("horizon", JsonValue::U64(self.horizon)),
            ("long_horizon", JsonValue::U64(self.long_horizon)),
            (
                "sizes",
                JsonValue::Arr(
                    self.sizes
                        .iter()
                        .map(|&n| JsonValue::U64(n as u64))
                        .collect(),
                ),
            ),
            ("quick", JsonValue::Bool(self.quick)),
        ]
    }
}

fn write_json(s: &Scale, id: &str, value: &JsonValue) {
    // Every writer must keep the shared machine-readable floor
    // (`{experiment, pass, rows, registry?}`) as the format grows.
    if let Err(e) = json::validate_bench_summary(value) {
        eprintln!("BENCH json for {id} violates the shared summary shape: {e}");
    }
    match json::write_bench_json_in(s.out_dir.as_deref(), id, value) {
        Ok(path) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("failed to write BENCH json for {id}: {e}"),
    }
}

fn print_exp(id: &str, title: &str, s: &Scale, table: Table) {
    println!("\n=== {} — {} ===", id.to_uppercase(), title);
    println!("{}", table.render());
    let summary = json::experiment_summary(id, title, s.scenario_json(), &table);
    write_json(s, id, &summary);
}

/// Runs one experiment; returns `false` when it reported violations that
/// should fail the process.
fn run(id: &str, s: &Scale) -> bool {
    match id {
        "e1" => print_exp(
            id,
            "Ω convergence in system S (claim: 100%)",
            s,
            e_omega::e1_convergence(&s.sizes, s.seeds, s.horizon),
        ),
        "e2" => print_exp(
            id,
            "sender-set collapse over time (claim: →1 for comm-eff, stays n for baseline)",
            s,
            e_omega::e2_sender_series(10, 3, 20_000, 1_000),
        ),
        "e3" => print_exp(
            id,
            "steady-state message complexity (claim: Θ(n) vs Θ(n²))",
            s,
            e_omega::e3_message_complexity(&s.sizes, s.horizon),
        ),
        "e4" => print_exp(
            id,
            "robustness: stabilization vs mesh loss × GST",
            s,
            e_omega::e4_robustness(10, s.seeds.min(5), s.horizon),
        ),
        "e5" => print_exp(
            id,
            "counter boundedness over a long run (claim: finite accusations)",
            s,
            e_omega::e5_counter_stability(5, 17, s.long_horizon),
        ),
        "e6" => print_exp(
            id,
            "consensus safety & liveness in S_maj (claim: 0 violations, all decide)",
            s,
            e_consensus::e6_consensus(s.seeds.min(8), s.long_horizon),
        ),
        "e7" => print_exp(
            id,
            "consensus steady state (claim: no re-prepare, ~4(n-1) msgs/cmd, leader-centric)",
            s,
            e_consensus::e7_steady_state(5, 100.min(s.horizon / 200), 10_000),
        ),
        "e8" => print_exp(
            id,
            "synchrony crossover: #♦-sources needed (claim: 1 suffices for comm-eff)",
            s,
            e_omega::e8_crossover(6, s.seeds.min(6), s.horizon),
        ),
        "e9" => print_exp(
            id,
            "ablation: accusation dedup × timeout policy",
            s,
            e_omega::e9_ablation(5, s.seeds.min(6), s.horizon),
        ),
        "e10" => print_exp(
            id,
            "thread-runtime validation (wall clock)",
            s,
            e_thread::e10_threadnet(6, 0.05, 10, 400),
        ),
        "e11" => print_exp(
            id,
            "message relaying: Ω under eventually timely *paths* (star topology)",
            s,
            e_omega::e11_relay(5, s.seeds.min(6), s.horizon),
        ),
        "e12" => print_exp(
            id,
            "deterministic blink adversary vs timeout policies (claim: adaptation is necessary)",
            s,
            e_omega::e12_blink(4, s.seeds.min(6), s.horizon),
        ),
        "e13" => print_exp(
            id,
            "failure-detector QoS: detection time vs timeout (crash the leader)",
            s,
            e_omega::e13_qos(5, s.seeds.min(8), s.horizon),
        ),
        "e14" => print_exp(
            id,
            "Ω-gated consensus vs rotating coordinator (◇S) on the same adversary",
            s,
            e_consensus::e14_vs_rotating(5, s.seeds.min(8), s.long_horizon),
        ),
        "e15" => print_exp(
            id,
            "TCP-socket validation: sender-set collapse over real connections",
            s,
            e_wire::e15_wirenet(5, 0.05, 10, 400),
        ),
        "e16" => {
            let (seeds, sizes, wall) = if s.quick {
                (2, vec![3usize], 1)
            } else {
                (4, vec![3usize, 5], 3)
            };
            let (table, violations) = e_chaos::e16_chaos(seeds, &sizes, wall);
            print_exp(
                id,
                "crash-restart chaos campaign (claim: 0 checker violations on every substrate)",
                s,
                table,
            );
            if violations > 0 {
                eprintln!("E16: {violations} checker/watchdog violation(s) — failing the run");
                return false;
            }
        }
        "e17" => {
            let (n, horizon) = if s.quick { (4, 20_000) } else { (5, 40_000) };
            let title =
                "election QoS + live steady-state efficiency via the probe/metrics pipeline";
            let (table, summary) = e_obs::e17_observability(n, horizon, 11);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
        }
        "e18" => {
            let (n, horizon) = if s.quick { (4, 24_000) } else { (5, 40_000) };
            let title = "causal tracing plane: spans, watchdog alarms, live scrape";
            let (table, summary) = e_trace::e18_tracing(n, horizon, 11);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
        }
        "e19" => {
            let (n, commands) = if s.quick { (3, 240) } else { (3, 960) };
            let title = "batched/pipelined throughput vs the one-slot-at-a-time baseline";
            let (table, summary) = e_throughput::e19_throughput(n, commands, 7);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
        }
        "e20" => {
            let (n, commands) = if s.quick { (3, 240) } else { (3, 960) };
            let title = "sharded multi-group throughput scaling with one shared Ω per node";
            let (table, summary) = e_shard::e20_shard(n, commands, 7);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
        }
        "e21" => {
            let (scenarios, commands, wall, ratio_gate) = if s.quick {
                (1, 160, 1, 3.0)
            } else {
                (3, 400, 2, 10.0)
            };
            let title = "bounded recovery: snapshot restarts, compacted WALs, state transfer";
            let (table, summary, violations) =
                e_recovery::e21_recovery(scenarios, commands, wall, ratio_gate);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
            if violations > 0 {
                eprintln!("E21: {violations} gate violation(s) — failing the run");
                return false;
            }
        }
        "e22" => {
            let (n, commands) = if s.quick { (3, 160) } else { (3, 400) };
            let title = "command-lifecycle latency attribution + live timeline plane";
            let (table, summary) = e_latency::e22_latency(n, commands, 7, s.quick);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
        }
        "e23" => {
            let (n, reads, rounds) = if s.quick { (3, 240, 4) } else { (3, 960, 8) };
            let title = "leader leases: fast linearizable reads, zero stale, flat Ω traffic";
            let (table, summary, violations) = e_read::e23_read(n, reads, rounds, 7);
            println!("\n=== {} — {} ===", id.to_uppercase(), title);
            println!("{}", table.render());
            write_json(s, id, &summary);
            if violations > 0 {
                eprintln!("E23: {violations} gate violation(s) — failing the run");
                return false;
            }
        }
        "e23-violation" => {
            // The induced lease violation: sabotaged skew margins under the
            // partition adversary MUST trip the StaleRead watchdog, and this
            // run exits non-zero when it does — CI asserts that exit, so a
            // silently broken detector fails the pipeline.
            let (stale, total, dump) = e_read::e23_violation(7);
            println!("\n=== E23-VIOLATION — induced lease violation (detector check) ===");
            println!("stale-read alarms: {stale} (total alarms: {total})");
            if stale > 0 {
                eprintln!("{dump}");
                eprintln!("E23-VIOLATION: StaleRead fired as induced — exiting non-zero");
                return false;
            }
            eprintln!("E23-VIOLATION: the sabotaged run did NOT trip StaleRead — detector broken");
        }
        other => eprintln!("unknown experiment id: {other} (expected e1..e23 or all)"),
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut out_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out-dir" {
            match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out-dir requires a path");
                    std::process::exit(2);
                }
            }
        } else if let Some(dir) = a.strip_prefix("--out-dir=") {
            out_dir = Some(PathBuf::from(dir));
        } else if !a.starts_with("--") {
            ids.push(a.clone());
        }
    }
    let scale = if quick {
        Scale {
            seeds: 3,
            horizon: 30_000,
            long_horizon: 60_000,
            sizes: vec![3, 5, 10],
            quick: true,
            out_dir,
        }
    } else {
        Scale {
            seeds: 10,
            horizon: 60_000,
            long_horizon: 300_000,
            sizes: vec![3, 5, 10, 20, 40],
            quick: false,
            out_dir,
        }
    };
    let mut ok = true;
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        for id in [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23",
        ] {
            ok &= run(id, &scale);
        }
    } else {
        for id in &ids {
            ok &= run(id, &scale);
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
