//! Experiment E23: leader leases and the linearizable fast read path.
//!
//! Every prior throughput experiment paid a full replication round trip
//! per *read* — the log-read baseline. E23 measures the lease plane
//! ([`consensus::LeaseParams`]) end to end through the kvstore:
//!
//! 1. **Fast-path speedup** — on netsim, the same offered read load is
//!    drained twice: leases on (the stable leader serves every read from
//!    its local store, zero log traffic) and leases off (each read
//!    replicates through the log). The gate: lease-read throughput must
//!    be ≥ 5× the log-read baseline, with both runs draining completely.
//! 2. **Zero stale reads** — three adversarial safety scenarios on netsim
//!    (lease expiry under a partition, a widened clock-skew bound, the
//!    leader killed mid-lease) plus a kill-the-leader round workload on
//!    threadnet and wirenet. A *stale* read is one whose observed value
//!    predates a write that committed before the read was issued. The
//!    gate: zero stale reads and zero watchdog alarms
//!    ([`lls_obs::AlarmKind::StaleRead`] / `LeaseOverlap`) everywhere.
//! 3. **Ω traffic unchanged** — lease grants ride the existing retry
//!    cadence as their own message kinds, so netsim's deterministic
//!    `ALIVE` counter must stay flat (±10%) with leases on vs off.
//!
//! The deliberately *broken* counterpart — [`e23_violation`] — inverts
//! the skew margins ([`consensus::LeaseParams::unsafe_skew_inversion`])
//! and drives an E12-style adversary: partition the leaseholder mid-lease
//! so a successor is elected *inside* the sabotaged overlap window, write
//! at the successor, then inject reads at the deposed leader. The stale
//! serves must trip the [`StaleRead`](lls_obs::AlarmKind::StaleRead)
//! watchdog with flight-recorder dumps attached; the CLI's
//! `e23-violation` id runs it and exits non-zero when the alarm fires —
//! and CI asserts exactly that exit, proving the detector catches a real
//! lease violation rather than vacuously staying quiet.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{classify_rsm_msg, BatchParams, ConsensusParams, LeaseParams};
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, KvResponse, Tagged};
use lls_obs::{
    AlarmKind, NodeRecorders, RecordingProbe, Registry, Watchdog, WatchdogConfig, WatchdogProbe,
};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Simulator, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::percentile;
use crate::table::Table;

/// The acceptance threshold: netsim lease-read throughput over the
/// log-read baseline.
const SPEEDUP_GATE: f64 = 5.0;

/// Allowed relative drift of the Ω `ALIVE` counter, leases on vs off.
const OMEGA_FLATNESS: f64 = 0.10;

/// The monotone register every scenario reads and writes.
const KEY: &str = "reg";

/// Client identity of the single writer (its seq *is* the write index).
const WRITER: ClientId = ClientId(1);

/// Client identity of the throughput-run reader.
const READER: ClientId = ClientId(2);

/// The replica type every run spawns: recorded probes routed through the
/// shared watchdog.
type WallReplica = KvReplica<WatchdogProbe<RecordingProbe>>;

/// Reader client identity for reads served at node `p` (one session per
/// serving node keeps sequence numbers independent).
fn reader_at(p: ProcessId) -> ClientId {
    ClientId(100 + u64::from(p.0))
}

/// Lease plane on, batching pinned to the strict one-command-per-round-trip
/// baseline so the only axis under test is the read path.
fn lease_params() -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch: 1,
            pipeline_depth: 1,
        },
        lease: LeaseParams::enabled(),
        ..ConsensusParams::default()
    }
}

/// The log-read baseline: identical in every respect except the lease
/// plane, so reads replicate through the log.
fn log_params() -> ConsensusParams {
    ConsensusParams {
        lease: LeaseParams {
            enabled: false,
            ..LeaseParams::default()
        },
        ..lease_params()
    }
}

/// Monotone register values: write `i` stores `v{i}`.
fn value_of(i: u64) -> String {
    format!("v{i}")
}

/// Inverse of [`value_of`], tolerating `None` (no write observed yet).
fn index_of(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One measured row of the E23 table.
struct ReadRow {
    substrate: &'static str,
    /// `lease` / `log` for the throughput runs, the scenario name for the
    /// safety runs.
    mode: String,
    /// Reads offered (whose serves the checker could judge).
    reads: u64,
    /// Reads served before the deadline.
    served: u64,
    /// Served reads per unit of `unit` (0 for pure safety rows).
    throughput: f64,
    unit: &'static str,
    /// Issue-to-serve latency percentiles in `lat_unit`.
    p50: u64,
    p99: u64,
    lat_unit: &'static str,
    /// Served reads whose value predates a write committed before issue.
    stale: u64,
    /// Watchdog alarms raised during the run.
    alarms: u64,
    /// Ω heartbeat messages observed (netsim only; 0 on wall clock).
    omega_alive: u64,
}

fn row_json(row: &ReadRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("mode", JsonValue::str(row.mode.clone())),
        ("reads", JsonValue::U64(row.reads)),
        ("served", JsonValue::U64(row.served)),
        ("throughput", JsonValue::F64(row.throughput)),
        ("throughput_unit", JsonValue::str(row.unit)),
        ("latency_p50", JsonValue::U64(row.p50)),
        ("latency_p99", JsonValue::U64(row.p99)),
        ("latency_unit", JsonValue::str(row.lat_unit)),
        ("stale", JsonValue::U64(row.stale)),
        ("alarms", JsonValue::U64(row.alarms)),
        ("omega_alive", JsonValue::U64(row.omega_alive)),
    ])
}

/// A read injected into a netsim safety scenario: where, who, and when.
struct IssuedRead {
    node: ProcessId,
    client: ClientId,
    seq: u64,
    at: u64,
}

/// Counts served and stale reads from a deterministic run's outputs.
///
/// The freshness witness: a read issued at tick `t` that observed write
/// `i` is stale iff write `i + 1` had already committed — anywhere — at
/// `t`. That is exactly the real-time obligation linearizability puts on
/// a read, and exactly what a correct leader lease upholds.
fn count_stale(
    outputs: &[(ProcessId, u64, KvEvent)],
    issued: &[IssuedRead],
) -> (u64, u64, Vec<u64>) {
    let mut commit_at: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, at, ev) in outputs {
        if let KvEvent::Applied {
            client,
            seq,
            response: KvResponse::Applied { .. },
            ..
        } = ev
        {
            if *client == WRITER {
                let t = commit_at.entry(*seq).or_insert(*at);
                *t = (*t).min(*at);
            }
        }
    }
    let mut served = 0u64;
    let mut stale = 0u64;
    let mut latencies = Vec::new();
    for read in issued {
        let serve = outputs.iter().find_map(|(p, at, ev)| match ev {
            KvEvent::Applied {
                client,
                seq,
                response: KvResponse::Value { value },
                ..
            } if *p == read.node && *client == read.client && *seq == read.seq => {
                Some((*at, index_of(value.as_deref())))
            }
            _ => None,
        });
        let Some((at, observed)) = serve else {
            continue; // Unserved (e.g. addressed to a dead node): not stale.
        };
        served += 1;
        latencies.push(at.saturating_sub(read.at));
        if commit_at
            .get(&(observed + 1))
            .is_some_and(|&commit| commit <= read.at)
        {
            stale += 1;
        }
    }
    (served, stale, latencies)
}

/// Flattens a netsim run's outputs into the triples the checker consumes.
fn sim_outputs(sim: &Simulator<WallReplica>) -> Vec<(ProcessId, u64, KvEvent)> {
    sim.outputs()
        .iter()
        .map(|e| (e.process, e.at.ticks(), e.output.clone()))
        .collect()
}

/// Deterministic throughput run: a warm cluster, one seed write, then
/// `reads` read commands injected at the leader at two per tick. With
/// leases on the leaseholder serves each the tick it arrives; off, each
/// replicates through the log at `(1, 1)` batching — one read per round
/// trip. Both run to the same horizon so the Ω counters are comparable.
fn netsim_throughput_run(
    n: usize,
    reads: u64,
    leases: bool,
    seed: u64,
    registry: &Registry,
) -> ReadRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let params = if leases { lease_params() } else { log_params() };
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .classify(classify_rsm_msg)
        .build_with(|env| KvReplica::new_with_probe(env, params, recorders.probe_for(env.id())));
    let issue_base = 3_000u64;
    sim.run_until(Instant::from_ticks(issue_base));
    let leader = sim.node(ProcessId(0)).omega().leader();
    sim.schedule_request(
        Instant::from_ticks(issue_base),
        leader,
        Tagged {
            client: WRITER,
            seq: 1,
            cmd: KvCmd::put(KEY, value_of(1)),
        },
    );
    let issue_tick = |i: u64| issue_base + 100 + i / 2;
    for i in 0..reads {
        sim.schedule_request(
            Instant::from_ticks(issue_tick(i)),
            leader,
            Tagged {
                client: READER,
                seq: i + 1,
                cmd: KvCmd::read(KEY),
            },
        );
    }
    // Identical horizon for the lease and log runs: the Ω comparison needs
    // equal simulated time, and the slow path needs the slack anyway.
    sim.run_until(Instant::from_ticks(issue_base + 100 + reads * 14 + 4_000));
    let mut serve_at: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in sim.outputs() {
        if ev.process != leader {
            continue;
        }
        if let KvEvent::Applied {
            client,
            seq,
            response: KvResponse::Value { .. },
            ..
        } = &ev.output
        {
            if *client == READER {
                serve_at.entry(*seq).or_insert(ev.at.ticks());
            }
        }
    }
    let served = serve_at.len() as u64;
    let mut latencies: Vec<u64> = serve_at
        .iter()
        .map(|(&seq, &at)| at.saturating_sub(issue_tick(seq - 1)))
        .collect();
    latencies.sort_unstable();
    let span = serve_at
        .values()
        .max()
        .map_or(0, |last| last.saturating_sub(issue_tick(0)));
    let throughput = if span == 0 {
        0.0
    } else {
        served as f64 * 1_000.0 / span as f64
    };
    let mode = if leases { "lease" } else { "log" };
    let name = format!("e23_netsim_{mode}_read_latency_ticks");
    registry.describe(&name, "E23 issue-to-serve read latency");
    let hist = registry.histogram(&name);
    for &l in &latencies {
        hist.record(l);
    }
    let (p50, p99) = if latencies.is_empty() {
        (0, 0)
    } else {
        (percentile(&latencies, 50.0), percentile(&latencies, 99.0))
    };
    ReadRow {
        substrate: "netsim",
        mode: mode.to_owned(),
        reads,
        served,
        throughput,
        unit: "reads/ktick",
        p50,
        p99,
        lat_unit: "ticks",
        stale: 0,
        alarms: 0,
        omega_alive: sim.stats().kind_counts().get("ALIVE").copied().unwrap_or(0),
    }
}

/// One of the three deterministic safety scenarios. Shared skeleton:
/// writes 1–3 at the stable leaseholder, a disruption mid-lease
/// (`expiry`: partition + heal; `skew`: the same under a 3× skew bound;
/// `kill`: crash), writes 4–6 at the successor, and reads injected at
/// every phase on every relevant node — including the cut-off leaseholder,
/// whose conservatively-expiring window is precisely what is under test.
fn netsim_safety_scenario(kind: &'static str, n: usize, seed: u64) -> ReadRow {
    let params = match kind {
        // Triple the skew bound: the serving window shrinks, the granter
        // holdoff grows, and the no-overlap argument must still hold.
        "skew" => ConsensusParams {
            lease: LeaseParams {
                skew: Duration::from_ticks(24),
                ..LeaseParams::enabled()
            },
            ..lease_params()
        },
        _ => lease_params(),
    };
    let base = Topology::all_timely(n, Duration::from_ticks(2));
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(base.clone())
        .classify(classify_rsm_msg)
        .build_with(|env| {
            KvReplica::new_with_probe(env, params, watchdog.probe(recorders.probe_for(env.id())))
        });
    let mut issued: Vec<IssuedRead> = Vec::new();
    let mut seqs: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let mut read_at = |sim: &mut Simulator<WallReplica>, p: ProcessId, t: u64| {
        let seq = seqs.entry(p).or_insert(0);
        *seq += 1;
        issued.push(IssuedRead {
            node: p,
            client: reader_at(p),
            seq: *seq,
            at: t,
        });
        sim.schedule_request(
            Instant::from_ticks(t),
            p,
            Tagged {
                client: reader_at(p),
                seq: *seq,
                cmd: KvCmd::read(KEY),
            },
        );
    };
    sim.run_until(Instant::from_ticks(3_000));
    let old = sim.node(ProcessId(0)).omega().leader();
    for i in 1..=3u64 {
        sim.schedule_request(
            Instant::from_ticks(3_000 + i * 60),
            old,
            Tagged {
                client: WRITER,
                seq: i,
                cmd: KvCmd::put(KEY, value_of(i)),
            },
        );
    }
    sim.run_until(Instant::from_ticks(3_300));
    // Phase 1: a lease read at the leaseholder, read-index at followers.
    for &p in &all {
        read_at(&mut sim, p, 3_300);
    }
    sim.run_until(Instant::from_ticks(3_400));
    match kind {
        "kill" => sim.crash_now(old),
        _ => sim.partition_now(&[old]),
    }
    // Reads *during* the disruption window. Whatever the cut-off
    // leaseholder still serves inside its conservative window must be
    // fresh (the granter holdoff blocks any new commit meanwhile), and
    // past its local expiry it must serve nothing at all.
    for t in [3_450u64, 3_550, 3_700, 3_900] {
        for &p in &all {
            if kind == "kill" && p == old {
                continue;
            }
            read_at(&mut sim, p, t);
        }
    }
    // Wait out the granter holdoff and the election of a successor.
    let observer = all.iter().copied().find(|&p| p != old).expect("n >= 2");
    let mut t = 4_400u64;
    sim.run_until(Instant::from_ticks(t));
    let mut successor = sim.node(observer).omega().leader();
    while successor == old && t < 12_000 {
        t += 400;
        sim.run_until(Instant::from_ticks(t));
        successor = sim.node(observer).omega().leader();
    }
    for i in 4..=6u64 {
        sim.schedule_request(
            Instant::from_ticks(t + (i - 3) * 60),
            successor,
            Tagged {
                client: WRITER,
                seq: i,
                cmd: KvCmd::put(KEY, value_of(i)),
            },
        );
    }
    sim.run_until(Instant::from_ticks(t + 400));
    for &p in &all {
        if p != old {
            read_at(&mut sim, p, t + 400);
        }
    }
    if kind != "kill" {
        // Heal, then read at the deposed leader: it must abdicate on the
        // successor's higher ballot and serve through the new lease, never
        // from its stale local state.
        sim.schedule_topology_change(Instant::from_ticks(t + 800), base.clone());
        sim.run_until(Instant::from_ticks(t + 1_400));
        read_at(&mut sim, old, t + 1_400);
    }
    sim.run_until(Instant::from_ticks(t + 3_000));
    let outputs = sim_outputs(&sim);
    let (served, stale, mut latencies) = count_stale(&outputs, &issued);
    latencies.sort_unstable();
    let (p50, p99) = if latencies.is_empty() {
        (0, 0)
    } else {
        (percentile(&latencies, 50.0), percentile(&latencies, 99.0))
    };
    ReadRow {
        substrate: "netsim",
        mode: kind.to_owned(),
        reads: issued.len() as u64,
        served,
        throughput: 0.0,
        unit: "-",
        p50,
        p99,
        lat_unit: "ticks",
        stale,
        alarms: watchdog.alarm_count() as u64,
        omega_alive: 0,
    }
}

/// Maps a replica cluster's latest outputs to the leader view
/// [`await_unanimity`] polls.
fn leader_view(latest: Vec<Option<KvEvent>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(KvEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Polls `poll` until it yields, re-invoking `reissue` on a client-style
/// retry cadence (forwarded read-index messages may race a leader change
/// and drop; the retry is the liveness story, exactly as a real client).
fn await_settle(
    poll: impl Fn() -> Option<KvResponse>,
    reissue: impl Fn(),
    timeout: StdDuration,
) -> Option<KvResponse> {
    let deadline = StdInstant::now() + timeout;
    let mut last_issue = StdInstant::now();
    loop {
        if let Some(r) = poll() {
            return Some(r);
        }
        if StdInstant::now() > deadline {
            return None;
        }
        if last_issue.elapsed() >= StdDuration::from_millis(400) {
            reissue();
            last_issue = StdInstant::now();
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

/// First settlement of `(client, seq)` observed at `node` on the thread
/// mesh (the full output log is scannable live).
fn find_threadnet(
    cluster: &Cluster<WallReplica>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    cluster
        .outputs_so_far()
        .into_iter()
        .find_map(|t| match t.output {
            KvEvent::Applied {
                client: c,
                seq: s,
                response,
                ..
            } if t.process == node && c == client && s == seq => Some(response),
            _ => None,
        })
}

/// Settlement of `(client, seq)` at `node` over TCP, read off the node's
/// latest output (the round workload keeps at most one op in flight per
/// node, so the newest output is the settlement being awaited).
fn find_wirenet(
    cluster: &WireCluster<WallReplica>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    match cluster.latest_outputs().into_iter().nth(node.as_usize())? {
        Some(KvEvent::Applied {
            client: c,
            seq: s,
            response,
            ..
        }) if c == client && s == seq => Some(response),
        _ => None,
    }
}

/// Wall-clock accumulator shared by the two substrate drivers.
#[derive(Default)]
struct WallTally {
    reads: u64,
    served: u64,
    stale: u64,
    latencies_us: Vec<u64>,
}

impl WallTally {
    /// Folds one read's outcome in: `round` is the write index the read
    /// must observe (the round's write settled before the read was
    /// issued, so anything older is stale).
    fn settle(&mut self, round: u64, issued: StdInstant, response: Option<KvResponse>) {
        self.reads += 1;
        match response {
            Some(KvResponse::Value { value }) => {
                self.served += 1;
                self.latencies_us
                    .push(u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX));
                if index_of(value.as_deref()) < round {
                    self.stale += 1;
                }
            }
            // A `Duplicate` settle means a log-path retry got deduped
            // after the first serve was missed by the latest-output poll:
            // settled, but its value is unobservable — served, not stale.
            Some(_) => self.served += 1,
            None => {}
        }
    }

    fn into_row(mut self, substrate: &'static str, alarms: u64) -> ReadRow {
        self.latencies_us.sort_unstable();
        let (p50, p99) = if self.latencies_us.is_empty() {
            (0, 0)
        } else {
            (
                percentile(&self.latencies_us, 50.0),
                percentile(&self.latencies_us, 99.0),
            )
        };
        ReadRow {
            substrate,
            mode: "kill".to_owned(),
            reads: self.reads,
            served: self.served,
            throughput: 0.0,
            unit: "-",
            p50,
            p99,
            lat_unit: "us",
            stale: self.stale,
            alarms,
            omega_alive: 0,
        }
    }
}

/// Lockstep round workload on the thread mesh: per round, one write
/// settled at the leader, then a lease read at the leader and a
/// read-index read at a follower — with the leader killed halfway through
/// the rounds. Freshness is by construction: round `i`'s reads are only
/// issued after write `i` settled, so observing anything older is stale.
fn threadnet_safety_run(n: usize, rounds: u64, seed: u64) -> ReadRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        KvReplica::new_with_probe(
            env,
            lease_params(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let mut alive = all.clone();
    let timeout = StdDuration::from_secs(10);
    let mut tally = WallTally::default();
    let mut leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
    for round in 1..=rounds {
        if round == rounds / 2 + 1 {
            if let Some(victim) = leader {
                cluster.crash(victim);
                alive.retain(|p| *p != victim);
            }
            leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
        }
        let Some(l) = leader else { break };
        let write = Tagged {
            client: WRITER,
            seq: round,
            cmd: KvCmd::put(KEY, value_of(round)),
        };
        cluster.request(l, write.clone());
        if await_settle(
            || find_threadnet(&cluster, l, WRITER, round),
            || cluster.request(l, write.clone()),
            timeout,
        )
        .is_none()
        {
            continue; // Unsettled write: this round's reads cannot be judged.
        }
        let follower = alive.iter().copied().find(|&p| p != l);
        for node in [Some(l), follower].into_iter().flatten() {
            let read = Tagged {
                client: reader_at(node),
                seq: round,
                cmd: KvCmd::read(KEY),
            };
            let issued = StdInstant::now();
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_threadnet(&cluster, node, reader_at(node), round),
                || cluster.request(node, read.clone()),
                timeout,
            );
            tally.settle(round, issued, response);
        }
    }
    cluster.stop();
    tally.into_row("threadnet", watchdog.alarm_count() as u64)
}

/// The same lockstep round workload over real TCP loopback, with the
/// leader's sockets torn down mid-run ([`WireCluster::kill`]).
fn wirenet_safety_run(n: usize, rounds: u64) -> ReadRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let Ok(mut cluster) = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        KvReplica::new_with_probe(
            env,
            lease_params(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    }) else {
        // No loopback listeners (sandboxed environment): report an empty,
        // violation-free row rather than failing the whole experiment.
        return WallTally::default().into_row("wirenet", 0);
    };
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let mut alive = all.clone();
    let timeout = StdDuration::from_secs(10);
    let mut tally = WallTally::default();
    let mut leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
    for round in 1..=rounds {
        if round == rounds / 2 + 1 {
            if let Some(victim) = leader {
                cluster.kill(victim);
                alive.retain(|p| *p != victim);
            }
            leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
        }
        let Some(l) = leader else { break };
        let write = Tagged {
            client: WRITER,
            seq: round,
            cmd: KvCmd::put(KEY, value_of(round)),
        };
        cluster.request(l, write.clone());
        if await_settle(
            || find_wirenet(&cluster, l, WRITER, round),
            || cluster.request(l, write.clone()),
            timeout,
        )
        .is_none()
        {
            continue;
        }
        let follower = alive.iter().copied().find(|&p| p != l);
        for node in [Some(l), follower].into_iter().flatten() {
            let read = Tagged {
                client: reader_at(node),
                seq: round,
                cmd: KvCmd::read(KEY),
            };
            let issued = StdInstant::now();
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_wirenet(&cluster, node, reader_at(node), round),
                || cluster.request(node, read.clone()),
                timeout,
            );
            tally.settle(round, issued, response);
        }
    }
    cluster.stop();
    tally.into_row("wirenet", watchdog.alarm_count() as u64)
}

/// The E12-style lease adversary, parameterized by the sabotage switch.
///
/// Fat margins (duration 2000, skew 600) stretch the windows so the
/// timeline is unambiguous: with `invert` the deposed leader's local
/// window runs *past* the granters' holdoff, so a successor acquires
/// while the old leader still serves — the overlap a correct skew bound
/// makes impossible. Returns `(stale_read_alarms, total_alarms, dump)`.
fn violation_run(invert: bool, seed: u64) -> (usize, usize, String) {
    let n = 3;
    let params = ConsensusParams {
        lease: LeaseParams {
            enabled: true,
            duration: Duration::from_ticks(2_000),
            skew: Duration::from_ticks(600),
            unsafe_skew_inversion: invert,
        },
        ..lease_params()
    };
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .classify(classify_rsm_msg)
        .build_with(|env| {
            KvReplica::new_with_probe(env, params, watchdog.probe(recorders.probe_for(env.id())))
        });
    sim.run_until(Instant::from_ticks(3_400));
    let old = sim.node(ProcessId(0)).omega().leader();
    sim.schedule_request(
        Instant::from_ticks(3_400),
        old,
        Tagged {
            client: WRITER,
            seq: 1,
            cmd: KvCmd::put(KEY, value_of(1)),
        },
    );
    sim.run_until(Instant::from_ticks(3_800));
    sim.partition_now(&[old]);
    // Walk forward until the majority side's successor holds an *active*
    // lease (under the inverted margins this lands inside the deposed
    // leader's still-open local window; under correct margins it cannot).
    let observer = (0..n as u32)
        .map(ProcessId)
        .find(|&p| p != old)
        .expect("n >= 2");
    let mut t = 3_800u64;
    let successor = loop {
        t += 100;
        sim.run_until(Instant::from_ticks(t));
        let s = sim.node(observer).omega().leader();
        if s != old && sim.node(s).log().lease_read_allowed(Instant::from_ticks(t)) {
            break s;
        }
        if t >= 9_000 {
            break observer;
        }
    };
    // New state the deposed leader has never seen...
    sim.schedule_request(
        Instant::from_ticks(t + 10),
        successor,
        Tagged {
            client: WRITER,
            seq: 2,
            cmd: KvCmd::put(KEY, value_of(2)),
        },
    );
    sim.run_until(Instant::from_ticks(t + 200));
    // ...then reads injected at the deposed leader, dense across the
    // overlap window. With the sabotage on, it happily lease-serves v1.
    for (k, seq) in (1..=4u64).enumerate() {
        sim.schedule_request(
            Instant::from_ticks(t + 200 + k as u64 * 20),
            old,
            Tagged {
                client: reader_at(old),
                seq,
                cmd: KvCmd::read(KEY),
            },
        );
    }
    sim.run_until(Instant::from_ticks(t + 600));
    let alarms = watchdog.alarms();
    let stale = alarms
        .iter()
        .filter(|a| a.kind == AlarmKind::StaleRead)
        .count();
    let mut dump = String::new();
    for alarm in &alarms {
        dump.push_str(&format!(
            "WATCHDOG ALARM {:?} on {}: {}\n{}",
            alarm.kind, alarm.node, alarm.detail, alarm.dump
        ));
    }
    (stale, alarms.len(), dump)
}

/// **E23's induced violation** — the proof the test plane detects real
/// lease violations. Runs the adversary with the skew margins inverted
/// and returns `(stale_read_alarms, total_alarms, flight_dump)`; the
/// stale-read count must be non-zero (the CLI exits non-zero on it, and
/// CI asserts that exit).
pub fn e23_violation(seed: u64) -> (usize, usize, String) {
    violation_run(true, seed)
}

/// **E23** — the fast read path on every substrate. Returns the table,
/// the JSON summary written as `BENCH_E23.json`, and the gate-violation
/// count (non-zero fails the CLI).
pub fn e23_read(n: usize, reads: u64, rounds: u64, seed: u64) -> (Table, JsonValue, usize) {
    let registry = Registry::new();
    let mut rows = vec![
        netsim_throughput_run(n, reads, true, seed, &registry),
        netsim_throughput_run(n, reads, false, seed, &registry),
    ];
    for kind in ["expiry", "skew", "kill"] {
        rows.push(netsim_safety_scenario(kind, n, seed));
    }
    rows.push(threadnet_safety_run(n, rounds, seed));
    rows.push(wirenet_safety_run(n, rounds));
    let lease_tp = rows[0].throughput;
    let log_tp = rows[1].throughput;
    let speedup = if log_tp > 0.0 { lease_tp / log_tp } else { 0.0 };
    let complete = rows[0].served == rows[0].reads && rows[1].served == rows[1].reads;
    let alive_drift = {
        let (a, b) = (rows[0].omega_alive as f64, rows[1].omega_alive as f64);
        (a - b).abs() / b.max(1.0)
    };
    let stale: u64 = rows.iter().map(|r| r.stale).sum();
    let alarms: u64 = rows.iter().map(|r| r.alarms).sum();
    let mut violations = 0usize;
    if !(complete && speedup >= SPEEDUP_GATE) {
        violations += 1;
    }
    if alive_drift > OMEGA_FLATNESS {
        violations += 1;
    }
    if stale > 0 || alarms > 0 {
        violations += 1;
    }
    let mut t = Table::new(vec![
        "substrate",
        "mode",
        "served",
        "throughput",
        "latency p50/p99",
        "stale",
        "alarms",
        "omega alive",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            row.mode.clone(),
            format!("{}/{}", row.served, row.reads),
            if row.throughput > 0.0 {
                format!("{:.1} {}", row.throughput, row.unit)
            } else {
                "-".to_owned()
            },
            format!("{}/{} {}", row.p50, row.p99, row.lat_unit),
            row.stale.to_string(),
            row.alarms.to_string(),
            row.omega_alive.to_string(),
        ]);
    }
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e23")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("reads", JsonValue::U64(reads)),
        ("rounds", JsonValue::U64(rounds)),
        ("speedup_gate", JsonValue::F64(SPEEDUP_GATE)),
        ("speedup", JsonValue::F64(speedup)),
        ("omega_flatness_bound", JsonValue::F64(OMEGA_FLATNESS)),
        ("omega_alive_drift", JsonValue::F64(alive_drift)),
        ("stale_reads", JsonValue::U64(stale)),
        ("watchdog_alarms", JsonValue::U64(alarms)),
        ("pass", JsonValue::Bool(violations == 0)),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
        ("metrics", JsonValue::Raw(registry.snapshot_json())),
    ]);
    (t, json, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_bench_summary;

    #[test]
    fn lease_reads_beat_log_reads_five_fold_on_netsim() {
        let registry = Registry::new();
        let lease = netsim_throughput_run(3, 120, true, 7, &registry);
        let log = netsim_throughput_run(3, 120, false, 7, &registry);
        assert_eq!(lease.served, 120, "lease path must drain the full load");
        assert_eq!(log.served, 120, "log path must drain the full load");
        assert!(
            lease.throughput >= SPEEDUP_GATE * log.throughput,
            "speedup gate: lease {:.1} vs log {:.1}",
            lease.throughput,
            log.throughput
        );
        assert!(
            lease.p50 < log.p50,
            "a local serve must beat a round trip: {} vs {}",
            lease.p50,
            log.p50
        );
    }

    #[test]
    fn omega_alive_traffic_is_flat_with_leases_on_vs_off() {
        let registry = Registry::new();
        let lease = netsim_throughput_run(3, 120, true, 11, &registry);
        let log = netsim_throughput_run(3, 120, false, 11, &registry);
        assert!(lease.omega_alive > 0, "heartbeats must flow");
        let drift =
            (lease.omega_alive as f64 - log.omega_alive as f64).abs() / log.omega_alive as f64;
        assert!(
            drift <= OMEGA_FLATNESS,
            "ALIVE drift {drift:.3} exceeds {OMEGA_FLATNESS} (lease: {}, log: {})",
            lease.omega_alive,
            log.omega_alive
        );
    }

    #[test]
    fn safety_scenarios_serve_zero_stale_reads() {
        for kind in ["expiry", "skew", "kill"] {
            let row = netsim_safety_scenario(kind, 3, 7);
            assert!(row.served > 0, "{kind}: some reads must settle");
            assert_eq!(row.stale, 0, "{kind}: stale reads");
            assert_eq!(row.alarms, 0, "{kind}: watchdog alarms");
        }
    }

    #[test]
    fn induced_violation_trips_the_stale_read_watchdog() {
        let (stale, total, dump) = e23_violation(7);
        assert!(stale > 0, "the sabotaged run must trip StaleRead");
        assert!(total >= stale);
        assert!(
            dump.contains("StaleRead"),
            "the dump names the alarm:\n{dump}"
        );
        assert!(
            dump.contains("--- node"),
            "the dump carries a flight recorder:\n{dump}"
        );
        // The same adversary under the *correct* margins is silent: the
        // detector convicts the sabotage, not the scenario.
        let (safe_stale, safe_total, _) = violation_run(false, 7);
        assert_eq!((safe_stale, safe_total), (0, 0));
    }

    #[test]
    fn violation_is_reproducible_seed_for_seed() {
        let a = e23_violation(13);
        let b = e23_violation(13);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn netsim_summary_conforms_to_the_bench_shape() {
        // The wall substrates run under the CLI and the integration
        // suites; two rounds here keep the unit test fast.
        let (_, json, violations) = e23_read(3, 120, 2, 7);
        assert_eq!(violations, 0, "reduced E23 must pass its gates");
        validate_bench_summary(&json).expect("E23 summary must validate");
    }
}
