//! Experiment E22: command-lifecycle latency attribution + the timeline
//! telemetry plane, gated end to end.
//!
//! E19/E20 measured *how fast* the batched/pipelined/sharded command path
//! goes; E22 measures *where the time goes*. Every client command is
//! tagged with a [`lls_obs::CmdId`] at the submit queue and the probe plane stamps
//! each stage it crosses — enqueue → shard-route → batch-seal → propose →
//! WAL group-commit → decide → apply → reply. This experiment
//! reconstructs the per-command critical paths from the recorder streams
//! ([`lls_obs::reconstruct_paths`]), attributes latency per stage
//! ([`lls_obs::attribute`]), and gates the whole instrument on three
//! claims:
//!
//! 1. **The attribution adds up.** On every substrate, the sum of
//!    per-stage latencies over all completed commands must land within
//!    `GATE_PCT` of the end-to-end latency the harness measures through
//!    its *own* bookkeeping (sim output log on netsim, unquantized wall
//!    durations on threadnet/wirenet). This is what catches clock-anchor
//!    drift between the client and replica tick domains.
//! 2. **The dominant stage is identified** per `(batch, pipeline, shard)`
//!    configuration — the evidence the ROADMAP's next optimisations
//!    (async wirenet I/O, leader leases) are bets about.
//! 3. **The timeline plane is live.** The wirenet run serves
//!    [`lls_obs::TimelineSampler`] frames over the `/timeline` scrape
//!    route while the cluster is running; the served body must equal the
//!    in-process sampler's rendering and carry at least
//!    `MIN_LIVE_FRAMES` frames.
//!
//! A fourth check costs nothing and closes the overhead question: the
//! netsim leg is re-run with [`NoopProbe`] and must commit the same
//! commands with the same final-commit tick — in virtual time the traced
//! and untraced runs are *identical*, so the only possible overhead is
//! the wall-clock cost of the (monomorphized-away) `P::ENABLED` branches.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{BatchParams, ConsensusParams, PlacementManager, PlacementMap};
use kvstore::{
    ClientId, KvCmd, KvEvent, KvReplica, KvResponse, ShardedKvEvent, ShardedKvNode,
    ShardedSubmitQueue, SubmitQueue, Tagged,
};
use lls_obs::{
    attribute, fold_into_registry, reconstruct_paths, Attribution, CmdPath, NodeRecorders,
    NoopProbe, Probe, Registry, TimelineSampler,
};
use lls_primitives::{Duration, Instant, ProcessId, StorageHandle};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{scrape, BackoffConfig, ScrapeRoutes, ScrapeServer, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::table::Table;

/// The `(max_batch, pipeline_depth, shards)` grid. The sharded
/// configuration runs on netsim only (the wall substrates reuse E20 for
/// shard scaling; here they carry the clock-anchoring and live-timeline
/// gates on the unsharded path).
const CONFIGS: &[(usize, usize, u32)] = &[(1, 1, 1), (8, 4, 1), (8, 4, 2)];

/// Acceptance: attributed stage sums must land within this percentage of
/// the harness-measured end-to-end latency.
const GATE_PCT: f64 = 15.0;

/// Acceptance: the live `/timeline` scrape must return at least this many
/// frames.
const MIN_LIVE_FRAMES: u64 = 8;

/// The tag every harness-issued command carries.
const CLIENT: ClientId = ClientId(7);

fn put(seq: u64) -> Tagged<KvCmd> {
    Tagged {
        client: CLIENT,
        seq,
        cmd: KvCmd::put(format!("k{seq}"), format!("v{seq}")),
    }
}

fn params(max_batch: usize, depth: usize) -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch,
            pipeline_depth: depth,
        },
        ..ConsensusParams::default()
    }
}

/// One substrate × configuration measurement.
struct LatencyRow {
    substrate: &'static str,
    max_batch: usize,
    depth: usize,
    shards: u32,
    commands: u64,
    /// Paths with both endpoints observed (enqueue *and* reply).
    complete: u64,
    partial: u64,
    /// Sum of per-stage attributed latencies over the complete paths, in
    /// client-domain ticks.
    attributed_ticks: u64,
    /// The same commands' end-to-end latency summed from the harness's own
    /// bookkeeping (fractional on the wall substrates).
    measured_ticks: f64,
    /// `|attributed - measured| / measured`, in percent.
    gap_pct: f64,
    /// Stage carrying the largest attributed total, e.g. `"decide"`.
    dominant: String,
    /// That stage's share of the attributed total.
    dominant_share: f64,
    pass: bool,
}

/// Attribution + gate arithmetic shared by every run: reconstruct paths
/// from the recorder streams, fold the per-stage histograms into the
/// shared registry under a per-run prefix, and compare against the
/// harness-measured end-to-end sums.
#[allow(clippy::too_many_arguments)]
fn close_row(
    registry: &Registry,
    substrate: &'static str,
    (max_batch, depth, shards): (usize, usize, u32),
    commands: u64,
    recorders: &NodeRecorders,
    submit_at: &BTreeMap<u64, f64>,
    reply_at: &BTreeMap<u64, f64>,
) -> LatencyRow {
    let paths = reconstruct_paths(&recorders.all_events());
    let paths: Vec<CmdPath> = paths
        .into_iter()
        .filter(|p| p.cmd.client == CLIENT.0)
        .collect();
    let attr: Attribution = attribute(&paths);
    let run_reg = Registry::new();
    fold_into_registry(&paths, &run_reg, "ticks");
    registry.absorb_prefixed(
        &format!("e22_{substrate}_b{max_batch}_d{depth}_s{shards}_"),
        &run_reg,
    );
    // The independent side of the gate: sum the harness's own end-to-end
    // measurements over exactly the commands whose paths closed.
    let measured_ticks: f64 = paths
        .iter()
        .filter(|p| p.is_complete())
        .filter_map(|p| {
            let s = submit_at.get(&p.cmd.seq)?;
            let r = reply_at.get(&p.cmd.seq)?;
            Some((r - s).max(0.0))
        })
        .sum();
    let attributed_ticks = attr.attributed_total();
    let gap_pct = if measured_ticks > 0.0 {
        (attributed_ticks as f64 - measured_ticks).abs() * 100.0 / measured_ticks
    } else {
        100.0
    };
    let (dominant, dominant_share) = match attr.dominant() {
        Some((stage, total)) => (
            stage.label().to_owned(),
            total as f64 / attributed_ticks.max(1) as f64,
        ),
        None => ("-".to_owned(), 0.0),
    };
    let complete = attr.complete as u64;
    let pass = complete == commands && gap_pct <= GATE_PCT && dominant != "-";
    LatencyRow {
        substrate,
        max_batch,
        depth,
        shards,
        commands,
        complete,
        partial: attr.partial as u64,
        attributed_ticks,
        measured_ticks,
        gap_pct,
        dominant,
        dominant_share,
        pass,
    }
}

/// What a netsim drive leaves behind (also the NoopProbe parity evidence).
struct NetsimDrive {
    committed: u64,
    last_commit: u64,
    submit_at: BTreeMap<u64, f64>,
    reply_at: BTreeMap<u64, f64>,
}

/// Drives `commands` PUTs through an unsharded kv cluster on the
/// deterministic simulator at two commands per tick, settling replies off
/// the leader's `Applied` outputs. Generic over the probe so the exact
/// same loop produces both the traced run and the NoopProbe parity run.
#[allow(clippy::too_many_arguments)]
fn netsim_drive<P: Probe>(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
    node_probe: impl Fn(ProcessId) -> P,
    mut queue: SubmitQueue<P>,
    mut on_tick: impl FnMut(u64),
) -> NetsimDrive {
    let p = params(max_batch, depth);
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .build_with(|env| {
            KvReplica::with_storage_and_probe(
                env,
                p,
                StorageHandle::in_memory(),
                node_probe(env.id()),
            )
            .expect("open in-memory store")
        });
    let issue_base = 2_000u64;
    sim.run_until(Instant::from_ticks(issue_base));
    let leader = sim.node(ProcessId(0)).omega().leader();
    let mut now = issue_base;
    let mut submitted = 0u64;
    let mut submit_at = BTreeMap::new();
    let mut reply_at = BTreeMap::new();
    let mut last_commit = 0u64;
    let mut seen = 0usize;
    let horizon = issue_base + commands * 20 + 20_000;
    while now < horizon && (reply_at.len() as u64) < commands {
        now += 1;
        queue.set_now(Instant::from_ticks(now));
        // Offered load: two commands per tick, as in E19.
        for _ in 0..2 {
            if submitted < commands {
                submitted += 1;
                submit_at.insert(submitted, now as f64);
                queue.submit(put(submitted));
            }
        }
        for cmd in queue.drain() {
            sim.schedule_request(Instant::from_ticks(now), leader, cmd);
        }
        for cmd in queue.on_tick() {
            sim.schedule_request(Instant::from_ticks(now), leader, cmd);
        }
        sim.run_until(Instant::from_ticks(now));
        let outputs = sim.outputs();
        for ev in &outputs[seen..] {
            if ev.process != leader {
                continue;
            }
            if let KvEvent::Applied {
                client,
                seq,
                response,
                ..
            } = &ev.output
            {
                if *client == CLIENT && !reply_at.contains_key(seq) {
                    // Stamp the reply at the tick the response exists, not
                    // at the (coarser) harness observation point.
                    queue.set_now(ev.at);
                    if queue.settle(*client, *seq, response).is_some() {
                        reply_at.insert(*seq, ev.at.ticks() as f64);
                        last_commit = last_commit.max(ev.at.ticks());
                    }
                }
            }
        }
        seen = outputs.len();
        on_tick(now);
    }
    NetsimDrive {
        committed: reply_at.len() as u64,
        last_commit,
        submit_at,
        reply_at,
    }
}

/// Traced netsim run: recorder probes on every node *and* on the client's
/// submit queue, a timeline sample every 64 ticks.
fn netsim_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
    registry: &Registry,
    sampler: &mut TimelineSampler,
) -> (LatencyRow, NetsimDrive) {
    let recorders = Arc::new(NodeRecorders::new(n, (commands as usize * 16).max(4_096)));
    let rec = Arc::clone(&recorders);
    let queue = SubmitQueue::with_probe(
        commands as usize,
        ProcessId(0),
        recorders.probe_for(ProcessId(0)),
    );
    let reg = recorders.registry();
    let drive = netsim_drive(
        n,
        commands,
        max_batch,
        depth,
        seed,
        |id| rec.probe_for(id),
        queue,
        |now| {
            if now % 64 == 0 {
                sampler.sample(&reg, now);
            }
        },
    );
    let row = close_row(
        registry,
        "netsim",
        (max_batch, depth, 1),
        commands,
        &recorders,
        &drive.submit_at,
        &drive.reply_at,
    );
    (row, drive)
}

/// The NoopProbe parity run: identical drive, no instrumentation. In
/// virtual time the two runs must be indistinguishable.
fn netsim_noop_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
) -> NetsimDrive {
    netsim_drive(
        n,
        commands,
        max_batch,
        depth,
        seed,
        |_| NoopProbe,
        SubmitQueue::new(commands as usize),
        |_| {},
    )
}

/// Sharded netsim run: `shards` groups under one shared Ω, commands routed
/// by the placement map's key hash through a [`ShardedSubmitQueue`], so
/// the `ShardRoute` stage stamps every path with its true group.
fn netsim_sharded_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    shards: u32,
    seed: u64,
    registry: &Registry,
) -> LatencyRow {
    let recorders = Arc::new(NodeRecorders::new(n, (commands as usize * 16).max(4_096)));
    let rec = Arc::clone(&recorders);
    let p = params(max_batch, depth);
    let map = PlacementMap::uniform(shards, n);
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .build_with(|env| {
            ShardedKvNode::new_with_probe(
                env,
                p,
                PlacementManager::with_all_attached(map.clone()),
                rec.probe_for(env.id()),
            )
        });
    let mut queue = ShardedSubmitQueue::with_probe(
        map,
        commands as usize,
        ProcessId(0),
        recorders.probe_for(ProcessId(0)),
    );
    let issue_base = 2_000u64;
    sim.run_until(Instant::from_ticks(issue_base));
    let leader = sim.node(ProcessId(0)).omega().leader();
    let mut now = issue_base;
    let mut submitted = 0u64;
    let mut submit_at = BTreeMap::new();
    let mut reply_at = BTreeMap::new();
    let mut seen = 0usize;
    let horizon = issue_base + commands * 20 + 20_000;
    while now < horizon && (reply_at.len() as u64) < commands {
        now += 1;
        queue.set_now(Instant::from_ticks(now));
        for _ in 0..2 {
            if submitted < commands {
                submitted += 1;
                submit_at.insert(submitted, now as f64);
                queue.submit(put(submitted));
            }
        }
        for (_, cmds) in queue.drain().into_iter().chain(queue.on_tick()) {
            for cmd in cmds {
                sim.schedule_request(Instant::from_ticks(now), leader, cmd);
            }
        }
        sim.run_until(Instant::from_ticks(now));
        let outputs = sim.outputs();
        for ev in &outputs[seen..] {
            if ev.process != leader {
                continue;
            }
            if let ShardedKvEvent::Applied {
                client,
                seq,
                response,
                ..
            } = &ev.output
            {
                if *client == CLIENT && !reply_at.contains_key(seq) {
                    queue.set_now(ev.at);
                    if queue.settle(*client, *seq, response).is_some() {
                        reply_at.insert(*seq, ev.at.ticks() as f64);
                    }
                }
            }
        }
        seen = outputs.len();
    }
    close_row(
        registry,
        "netsim",
        (max_batch, depth, shards),
        commands,
        &recorders,
        &submit_at,
        &reply_at,
    )
}

/// Leader view for [`await_unanimity`] over a kv cluster's latest outputs.
fn leader_view(latest: Vec<Option<KvEvent>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(KvEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Maps a wall-clock instant into the cluster's tick domain — the same
/// `(now - epoch) / tick` formula every node applies, so client-side probe
/// events land on the replicas' timeline.
fn to_ticks(epoch: StdInstant, tick: StdDuration, at: StdInstant) -> u64 {
    (at.saturating_duration_since(epoch).as_nanos() / tick.as_nanos().max(1)) as u64
}

/// Post-processes a stopped wall-clock run: finds each command's earliest
/// leader-side `Applied`, settles it through the queue (stamping the
/// `Reply` stage at that tick), and returns the harness's unquantized
/// end-to-end measurements in fractional ticks.
fn settle_wall_outputs<P: Probe>(
    outputs: &[(ProcessId, StdDuration, KvEvent)],
    leader: ProcessId,
    tick: StdDuration,
    submit_wall: &BTreeMap<u64, StdDuration>,
    queue: &mut SubmitQueue<P>,
) -> (BTreeMap<u64, f64>, BTreeMap<u64, f64>) {
    let tick_nanos = tick.as_nanos().max(1);
    let mut applied: BTreeMap<u64, (StdDuration, KvResponse)> = BTreeMap::new();
    for (p, at, ev) in outputs {
        if *p != leader {
            continue;
        }
        if let KvEvent::Applied {
            client,
            seq,
            response,
            ..
        } = ev
        {
            if *client == CLIENT {
                applied.entry(*seq).or_insert((*at, response.clone()));
            }
        }
    }
    let mut submit_at = BTreeMap::new();
    let mut reply_at = BTreeMap::new();
    for (seq, (at, response)) in &applied {
        let Some(&sub) = submit_wall.get(seq) else {
            continue;
        };
        queue.set_now(Instant::from_ticks((at.as_nanos() / tick_nanos) as u64));
        if queue.settle(CLIENT, *seq, response).is_some() {
            submit_at.insert(*seq, sub.as_nanos() as f64 / tick_nanos as f64);
            reply_at.insert(*seq, at.as_nanos() as f64 / tick_nanos as f64);
        }
    }
    (submit_at, reply_at)
}

/// Thread-mesh run: burst the commands at the elected leader, poll the
/// shared output log, sample the timeline while polling, then settle and
/// attribute from the stopped report.
fn threadnet_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
    registry: &Registry,
    sampler: &mut TimelineSampler,
) -> LatencyRow {
    let recorders = Arc::new(NodeRecorders::new(n, (commands as usize * 16).max(4_096)));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let p = params(max_batch, depth);
    let rec = Arc::clone(&recorders);
    let cluster = Cluster::spawn(config, move |env| {
        KvReplica::with_storage_and_probe(
            env,
            p,
            StorageHandle::in_memory(),
            rec.probe_for(env.id()),
        )
        .expect("open in-memory store")
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let (epoch, tick) = (cluster.epoch(), cluster.tick());
    let mut queue = SubmitQueue::with_probe(
        commands as usize,
        ProcessId(0),
        recorders.probe_for(ProcessId(0)),
    );
    let mut submit_wall: BTreeMap<u64, StdDuration> = BTreeMap::new();
    for seq in 1..=commands {
        let now = StdInstant::now();
        queue.set_now(Instant::from_ticks(to_ticks(epoch, tick, now)));
        queue.submit(put(seq));
        submit_wall.insert(seq, now.saturating_duration_since(epoch));
    }
    for cmd in queue.drain() {
        cluster.request(leader, cmd);
    }
    let reg = recorders.registry();
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let done = cluster
            .outputs_so_far()
            .iter()
            .filter(|o| {
                o.process == leader
                    && matches!(&o.output, KvEvent::Applied { client, .. } if *client == CLIENT)
            })
            .count() as u64;
        sampler.sample(&reg, to_ticks(epoch, tick, StdInstant::now()));
        if done >= commands || StdInstant::now() > deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let report = cluster.stop();
    let outputs: Vec<(ProcessId, StdDuration, KvEvent)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (submit_at, reply_at) =
        settle_wall_outputs(&outputs, leader, tick, &submit_wall, &mut queue);
    close_row(
        registry,
        "threadnet",
        (max_batch, depth, 1),
        commands,
        &recorders,
        &submit_at,
        &reply_at,
    )
}

/// What the wirenet leg reports beyond its attribution row.
struct LiveTimeline {
    /// Frames the in-process sampler retained when the run ended.
    frames: u64,
    /// The served `/timeline` body equalled the sampler's own rendering.
    matched: bool,
    /// The sampler's JSON, embedded in BENCH output.
    json: String,
}

/// TCP run: same burst shape over real sockets, with the timeline sampler
/// served *live* on the `/timeline` scrape route while commands commit.
fn wirenet_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    registry: &Registry,
) -> (LatencyRow, LiveTimeline) {
    let recorders = Arc::new(NodeRecorders::new(n, (commands as usize * 16).max(4_096)));
    let sampler = Arc::new(Mutex::new(TimelineSampler::new(64)));
    let server = ScrapeServer::spawn(
        ScrapeRoutes::for_recorders(Arc::clone(&recorders)).with_timeline(Arc::clone(&sampler)),
    )
    .expect("bind scrape listener");
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let p = params(max_batch, depth);
    let rec = Arc::clone(&recorders);
    let cluster = WireCluster::try_spawn(config, move |env| {
        KvReplica::with_storage_and_probe(
            env,
            p,
            StorageHandle::in_memory(),
            rec.probe_for(env.id()),
        )
        .expect("open in-memory store")
    })
    .expect("bind 127.0.0.1 listeners");
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let (epoch, tick) = (cluster.epoch(), cluster.tick());
    let mut queue = SubmitQueue::with_probe(
        commands as usize,
        ProcessId(0),
        recorders.probe_for(ProcessId(0)),
    );
    let mut submit_wall: BTreeMap<u64, StdDuration> = BTreeMap::new();
    for seq in 1..=commands {
        let now = StdInstant::now();
        queue.set_now(Instant::from_ticks(to_ticks(epoch, tick, now)));
        queue.submit(put(seq));
        submit_wall.insert(seq, now.saturating_duration_since(epoch));
    }
    for cmd in queue.drain() {
        cluster.request(leader, cmd);
    }
    // The socket substrate exposes only each node's *latest* output, so
    // completion is the leader's newest apply reaching the last command
    // (a stable leader applies in submission order).
    let reg = recorders.registry();
    let sample_now = |s: &Arc<Mutex<TimelineSampler>>| {
        s.lock()
            .expect("sampler lock")
            .sample(&reg, to_ticks(epoch, tick, StdInstant::now()));
    };
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        sample_now(&sampler);
        let newest = cluster.latest_outputs().into_iter().nth(leader.as_usize());
        if matches!(
            newest,
            Some(Some(KvEvent::Applied { seq, .. })) if seq == commands
        ) || StdInstant::now() > deadline
        {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(5));
    }
    // Guarantee the live gate has enough frames even on an instant run.
    while sampler.lock().expect("sampler lock").total() < MIN_LIVE_FRAMES {
        sample_now(&sampler);
        std::thread::sleep(StdDuration::from_millis(2));
    }
    // Sampling has stopped; the served body must now be byte-identical to
    // the in-process rendering.
    let local = sampler.lock().expect("sampler lock").to_json();
    let served = scrape(server.addr(), "/timeline");
    let matched = served.is_ok_and(|body| body == local);
    let frames = sampler.lock().expect("sampler lock").len() as u64;
    server.stop();
    let report = cluster.stop();
    report.export(registry);
    let outputs: Vec<(ProcessId, StdDuration, KvEvent)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (submit_at, reply_at) =
        settle_wall_outputs(&outputs, leader, tick, &submit_wall, &mut queue);
    let row = close_row(
        registry,
        "wirenet",
        (max_batch, depth, 1),
        commands,
        &recorders,
        &submit_at,
        &reply_at,
    );
    (
        row,
        LiveTimeline {
            frames,
            matched,
            json: local,
        },
    )
}

fn row_json(row: &LatencyRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("max_batch", JsonValue::U64(row.max_batch as u64)),
        ("pipeline_depth", JsonValue::U64(row.depth as u64)),
        ("shards", JsonValue::U64(u64::from(row.shards))),
        ("commands", JsonValue::U64(row.commands)),
        ("complete_paths", JsonValue::U64(row.complete)),
        ("partial_paths", JsonValue::U64(row.partial)),
        ("attributed_ticks", JsonValue::U64(row.attributed_ticks)),
        ("measured_ticks", JsonValue::F64(row.measured_ticks)),
        ("gap_pct", JsonValue::F64(row.gap_pct)),
        ("dominant_stage", JsonValue::str(row.dominant.clone())),
        ("dominant_share", JsonValue::F64(row.dominant_share)),
        ("pass", JsonValue::Bool(row.pass)),
    ])
}

/// **E22** — per-command latency attribution on every substrate plus the
/// live timeline plane. Returns the human table and the JSON summary the
/// CLI writes as `BENCH_E22.json`.
pub fn e22_latency(n: usize, commands: u64, seed: u64, quick: bool) -> (Table, JsonValue) {
    let registry = Registry::new();
    let mut rows: Vec<LatencyRow> = Vec::new();
    let mut netsim_timeline = TimelineSampler::new(64);

    // netsim: the full grid, including the sharded configuration.
    let mut traced_ref: Option<NetsimDrive> = None;
    for &(b, d, s) in CONFIGS {
        if s == 1 {
            let (row, drive) = netsim_run(n, commands, b, d, seed, &registry, &mut netsim_timeline);
            if (b, d) == (8, 4) {
                traced_ref = Some(drive);
            }
            rows.push(row);
        } else {
            rows.push(netsim_sharded_run(n, commands, b, d, s, seed, &registry));
        }
    }
    // NoopProbe parity: the untraced run of the (8,4) config must be
    // tick-for-tick identical to the traced one.
    let noop = netsim_noop_run(n, commands, 8, 4, seed);
    let noop_parity = traced_ref
        .as_ref()
        .is_some_and(|t| t.committed == noop.committed && t.last_commit == noop.last_commit);

    // Wall substrates: the unsharded configs (all of them on a full run,
    // the batched one only under --quick).
    let wall_configs: Vec<(usize, usize)> = if quick {
        vec![(8, 4)]
    } else {
        vec![(1, 1), (8, 4)]
    };
    let mut threadnet_timeline = TimelineSampler::new(64);
    for &(b, d) in &wall_configs {
        rows.push(threadnet_run(
            n,
            commands,
            b,
            d,
            seed,
            &registry,
            &mut threadnet_timeline,
        ));
    }
    let mut live: Option<LiveTimeline> = None;
    for &(b, d) in &wall_configs {
        let (row, timeline) = wirenet_run(n, commands, b, d, &registry);
        rows.push(row);
        // The last wirenet leg's timeline carries the live gate.
        live = Some(timeline);
    }
    let live = live.expect("at least one wirenet leg runs");
    let timeline_live = live.matched && live.frames >= MIN_LIVE_FRAMES;

    let pass = rows.iter().all(|r| r.pass) && noop_parity && timeline_live;
    let mut t = Table::new(vec![
        "substrate",
        "batch x depth x shards",
        "complete",
        "attributed vs measured",
        "gap",
        "dominant stage",
        "verdict",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            format!("{} x {} x {}", row.max_batch, row.depth, row.shards),
            format!("{}/{}", row.complete, row.commands),
            format!(
                "{} vs {:.0} ticks",
                row.attributed_ticks, row.measured_ticks
            ),
            format!("{:.1}%", row.gap_pct),
            format!("{} ({:.0}%)", row.dominant, row.dominant_share * 100.0),
            if row.pass { "PASS" } else { "FAIL" }.to_owned(),
        ]);
    }
    t.row(vec![
        "netsim".to_owned(),
        "8 x 4 (NoopProbe)".to_owned(),
        format!("{}/{}", noop.committed, commands),
        format!("last commit @{}", noop.last_commit),
        "-".to_owned(),
        "untraced parity".to_owned(),
        if noop_parity { "PASS" } else { "FAIL" }.to_owned(),
    ]);
    t.row(vec![
        "wirenet".to_owned(),
        "/timeline live".to_owned(),
        format!("{} frames", live.frames),
        if live.matched {
            "body == sampler"
        } else {
            "MISMATCH"
        }
        .to_owned(),
        "-".to_owned(),
        format!(">= {MIN_LIVE_FRAMES} frames"),
        if timeline_live { "PASS" } else { "FAIL" }.to_owned(),
    ]);

    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e22")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("commands", JsonValue::U64(commands)),
        ("gate_pct", JsonValue::F64(GATE_PCT)),
        ("noop_parity", JsonValue::Bool(noop_parity)),
        (
            "timeline",
            JsonValue::obj(vec![
                ("live_frames", JsonValue::U64(live.frames)),
                ("served_matches", JsonValue::Bool(live.matched)),
                ("min_frames", JsonValue::U64(MIN_LIVE_FRAMES)),
                ("pass", JsonValue::Bool(timeline_live)),
            ]),
        ),
        ("pass", JsonValue::Bool(pass)),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
        (
            "timelines",
            JsonValue::obj(vec![
                ("netsim", JsonValue::Raw(netsim_timeline.to_json())),
                ("threadnet", JsonValue::Raw(threadnet_timeline.to_json())),
                ("wirenet", JsonValue::Raw(live.json)),
            ]),
        ),
        ("metrics", JsonValue::Raw(registry.snapshot_json())),
    ]);
    (t, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance path on the deterministic substrate: every path
    /// closes, the telescoped stage sums match the sim-measured end-to-end
    /// latencies exactly, and a dominant stage is named.
    #[test]
    fn netsim_attribution_telescopes_within_gate() {
        let registry = Registry::new();
        let mut tl = TimelineSampler::new(32);
        let (row, drive) = netsim_run(3, 120, 8, 4, 7, &registry, &mut tl);
        assert_eq!(row.complete, 120, "every path must close");
        assert!(row.pass, "gap {:.2}% exceeds the gate", row.gap_pct);
        assert!(row.gap_pct < 1.0, "netsim clocks are exact");
        assert_ne!(row.dominant, "-");
        assert_eq!(drive.committed, 120);
        assert!(!tl.is_empty(), "the drive must sample the timeline");
        // The folded histograms landed under the per-run prefix.
        assert!(registry
            .snapshot_json()
            .contains("e22_netsim_b8_d4_s1_lifecycle_e2e_ticks"));
    }

    /// The sharded path stamps true shard ids: with 2 groups both shard
    /// histogram families must appear.
    #[test]
    fn netsim_sharded_paths_carry_their_shard() {
        let registry = Registry::new();
        let row = netsim_sharded_run(3, 120, 8, 4, 2, 11, &registry);
        assert_eq!(row.complete, 120);
        assert!(row.pass, "gap {:.2}%", row.gap_pct);
        let snap = registry.snapshot_json();
        assert!(snap.contains("e22_netsim_b8_d4_s2_shard0_lifecycle_e2e_ticks"));
        assert!(snap.contains("e22_netsim_b8_d4_s2_shard1_lifecycle_e2e_ticks"));
    }

    /// The untraced (NoopProbe) run is tick-for-tick identical to the
    /// traced one: tracing costs nothing in virtual time, so the only
    /// possible overhead is the monomorphized-away `P::ENABLED` branch.
    #[test]
    fn noop_probe_run_is_tick_identical_to_traced() {
        let registry = Registry::new();
        let mut tl = TimelineSampler::new(32);
        let (_, traced) = netsim_run(3, 120, 8, 4, 7, &registry, &mut tl);
        let noop = netsim_noop_run(3, 120, 8, 4, 7);
        assert_eq!(traced.committed, noop.committed);
        assert_eq!(traced.last_commit, noop.last_commit);
        assert_eq!(traced.reply_at, noop.reply_at);
    }
}
