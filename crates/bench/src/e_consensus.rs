//! Experiments E6–E7: the consensus claims.

use consensus::checker::{check_consensus_safety, DecisionRecord};
use consensus::{classify_rsm_msg, Consensus, ConsensusEvent, ConsensusParams, ReplicatedLog};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, Simulator, SystemSParams, Topology};

use crate::percentile;
use crate::table::Table;

fn decisions(sim: &Simulator<Consensus<u64>>) -> Vec<DecisionRecord<u64>> {
    sim.outputs()
        .iter()
        .filter_map(|e| match &e.output {
            ConsensusEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect()
}

/// **E6** — consensus safety (always) and liveness (with a correct majority)
/// across sizes, loss rates and minority-crash schedules.
pub fn e6_consensus(seeds: u64, horizon: u64) -> Table {
    let mut t = Table::new(vec![
        "n",
        "mesh_loss",
        "crashes",
        "safety_violations",
        "all_correct_decided",
        "decide_t(p50)",
        "decide_t(p95)",
    ]);
    for &n in &[3usize, 5, 7] {
        for &loss in &[0.1, 0.4] {
            for crash_minority in [false, true] {
                let crashes = if crash_minority { (n - 1) / 2 } else { 0 };
                let mut violations = 0usize;
                let mut all_decided = 0usize;
                let mut decide_times = Vec::new();
                for seed in 0..seeds {
                    let source = (seed % n as u64) as u32;
                    let topo = Topology::system_s(
                        n,
                        ProcessId(source),
                        SystemSParams {
                            mesh_loss: loss,
                            ..SystemSParams::default()
                        },
                    );
                    let mut builder = SimBuilder::new(n).seed(seed).topology(topo);
                    let mut crashed = vec![false; n];
                    let mut scheduled = 0usize;
                    for p in 0..n as u32 {
                        if scheduled == crashes {
                            break;
                        }
                        if p != source {
                            crashed[p as usize] = true;
                            scheduled += 1;
                            // Crash early — before typical decision times —
                            // so the crash arm genuinely stresses liveness.
                            builder = builder
                                .crash_at(ProcessId(p), Instant::from_ticks(40 * (p as u64 + 1)));
                        }
                    }
                    let mut sim = builder.build_with(|env| {
                        Consensus::new(
                            env,
                            ConsensusParams::default(),
                            Some(100 + env.id().0 as u64),
                        )
                    });
                    sim.run_until(Instant::from_ticks(horizon));
                    let ds = decisions(&sim);
                    let proposals: Vec<u64> = (0..n as u64).map(|p| 100 + p).collect();
                    if check_consensus_safety(&ds, &proposals).is_err() {
                        violations += 1;
                    }
                    let correct_decided = (0..n as u32)
                        .filter(|&p| !crashed[p as usize])
                        .all(|p| ds.iter().any(|d| d.process == ProcessId(p)));
                    if correct_decided {
                        all_decided += 1;
                    }
                    decide_times.extend(ds.iter().map(|d| d.at.ticks()));
                }
                decide_times.sort_unstable();
                t.row(vec![
                    n.to_string(),
                    format!("{loss:.1}"),
                    crashes.to_string(),
                    violations.to_string(),
                    format!("{all_decided}/{seeds}"),
                    if decide_times.is_empty() {
                        "-".into()
                    } else {
                        percentile(&decide_times, 50.0).to_string()
                    },
                    if decide_times.is_empty() {
                        "-".into()
                    } else {
                        percentile(&decide_times, 95.0).to_string()
                    },
                ]);
            }
        }
    }
    t
}

/// **E7** — replicated-log steady state: messages per committed command by
/// kind, and the size of the sender set, once the leader is established.
pub fn e7_steady_state(n: usize, commands: u64, horizon_pad: u64) -> Table {
    let mut t = Table::new(vec![
        "mesh_loss",
        "committed",
        "prepares(steady)",
        "msgs/cmd",
        "theory 4(n-1)",
        "senders",
    ]);
    for &loss in &[0.0, 0.2] {
        let topo = if loss == 0.0 {
            Topology::all_timely(n, lls_primitives::Duration::from_ticks(2))
        } else {
            Topology::system_s(
                n,
                ProcessId(0),
                SystemSParams {
                    mesh_loss: loss,
                    gst: 200,
                    ..SystemSParams::default()
                },
            )
        };
        let mut sim = SimBuilder::new(n)
            .seed(5)
            .topology(topo)
            .classify(classify_rsm_msg)
            .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
        // Establish the leader.
        sim.run_until(Instant::from_ticks(10_000));
        let leader = sim.node(ProcessId(0)).omega().leader();
        let prepares_before = sim
            .stats()
            .kind_counts()
            .get("PREPARE")
            .copied()
            .unwrap_or(0);
        let total_before = sim.stats().total_sent();
        for k in 0..commands {
            sim.schedule_request(Instant::from_ticks(10_001 + 150 * k), leader, k);
        }
        let end = 10_000 + 150 * commands + horizon_pad;
        sim.run_until(Instant::from_ticks(end));
        let prepares_after = sim
            .stats()
            .kind_counts()
            .get("PREPARE")
            .copied()
            .unwrap_or(0);
        let committed = sim.node(leader).committed_len();
        // Subtract the constant Ω heartbeat background from the marginal
        // message cost.
        let eta = ConsensusParams::default().omega.eta.ticks();
        let alive_background = ((end - 10_000) / eta) * (n as u64 - 1);
        let marginal = sim
            .stats()
            .total_sent()
            .saturating_sub(total_before)
            .saturating_sub(alive_background);
        let senders = sim
            .stats()
            .senders_since(Instant::from_ticks(end.saturating_sub(2_000)));
        t.row(vec![
            format!("{loss:.1}"),
            format!("{committed}/{commands}"),
            (prepares_after - prepares_before).to_string(),
            format!("{:.1}", marginal as f64 / commands as f64),
            (4 * (n - 1)).to_string(),
            format!("{senders:?}"),
        ]);
    }
    t
}

/// Messages sent up to (and including) the stats window containing `t` —
/// so post-decision background traffic does not distort the comparison.
fn msgs_until(stats: &netsim::Stats, t: u64) -> u64 {
    let w = stats.window_len().ticks();
    stats
        .windows()
        .iter()
        .enumerate()
        .take_while(|(i, _)| (*i as u64) * w <= t)
        .map(|(_, win)| win.messages)
        .sum()
}

/// **E14** — Ω-gated consensus vs the rotating-coordinator baseline
/// (Chandra–Toueg ◇S style), same substrate and adversary: decision
/// latency, total messages until everyone has decided, and churn
/// (ballots/rounds burned). The comparison the paper's consensus section
/// implies: Ω-gating removes coordinator roulette.
pub fn e14_vs_rotating(n: usize, seeds: u64, horizon: u64) -> Table {
    use consensus::{RotEvent, RotatingConsensus};
    let mut t = Table::new(vec![
        "algorithm",
        "mesh_loss",
        "gst",
        "all_decided",
        "decide_t(p50)",
        "decide_t(p95)",
        "msgs_to_decide(mean)",
        "churn(mean)",
    ]);
    for &(loss, gst) in &[(0.1, 200u64), (0.4, 2_000)] {
        let topo = |seed: u64| {
            Topology::system_s(
                n,
                ProcessId((seed % n as u64) as u32),
                SystemSParams {
                    mesh_loss: loss,
                    gst,
                    ..SystemSParams::default()
                },
            )
        };
        // Ω-gated.
        let mut times = Vec::new();
        let mut msgs = 0u64;
        let mut churn = 0u64;
        let mut decided_runs = 0usize;
        for seed in 0..seeds {
            let mut sim = SimBuilder::new(n)
                .seed(seed)
                .topology(topo(seed))
                .build_with(|env| {
                    Consensus::new(
                        env,
                        ConsensusParams::default(),
                        Some(100 + env.id().0 as u64),
                    )
                });
            sim.run_until(Instant::from_ticks(horizon));
            let ds = decisions(&sim);
            if ds.len() == n {
                decided_runs += 1;
                let last = ds.iter().map(|d| d.at.ticks()).max().unwrap();
                times.push(last);
                msgs += msgs_until(sim.stats(), last);
                churn += (0..n as u32)
                    .map(|p| sim.node(ProcessId(p)).promised().round())
                    .max()
                    .unwrap();
            }
        }
        times.sort_unstable();
        t.row(vec![
            "omega-gated".to_owned(),
            format!("{loss:.1}"),
            gst.to_string(),
            format!("{decided_runs}/{seeds}"),
            if times.is_empty() {
                "-".into()
            } else {
                percentile(&times, 50.0).to_string()
            },
            if times.is_empty() {
                "-".into()
            } else {
                percentile(&times, 95.0).to_string()
            },
            format!("{:.0}", msgs as f64 / decided_runs.max(1) as f64),
            format!("{:.1}", churn as f64 / decided_runs.max(1) as f64),
        ]);
        // Rotating coordinator.
        let mut times = Vec::new();
        let mut msgs = 0u64;
        let mut churn = 0u64;
        let mut decided_runs = 0usize;
        for seed in 0..seeds {
            let mut sim = SimBuilder::new(n)
                .seed(seed)
                .topology(topo(seed))
                .build_with(|env| {
                    RotatingConsensus::new(env, ConsensusParams::default(), 100 + env.id().0 as u64)
                });
            sim.run_until(Instant::from_ticks(horizon));
            let ds: Vec<Instant> = sim
                .outputs()
                .iter()
                .filter_map(|e| match &e.output {
                    RotEvent::Decided(_) => Some(e.at),
                    _ => None,
                })
                .collect();
            if ds.len() == n {
                decided_runs += 1;
                let last = ds.iter().map(|t| t.ticks()).max().unwrap();
                times.push(last);
                msgs += msgs_until(sim.stats(), last);
                churn += (0..n as u32)
                    .map(|p| sim.node(ProcessId(p)).rounds_entered())
                    .max()
                    .unwrap();
            }
        }
        times.sort_unstable();
        t.row(vec![
            "rotating-coord".to_owned(),
            format!("{loss:.1}"),
            gst.to_string(),
            format!("{decided_runs}/{seeds}"),
            if times.is_empty() {
                "-".into()
            } else {
                percentile(&times, 50.0).to_string()
            },
            if times.is_empty() {
                "-".into()
            } else {
                percentile(&times, 95.0).to_string()
            },
            format!("{:.0}", msgs as f64 / decided_runs.max(1) as f64),
            format!("{:.1}", churn as f64 / decided_runs.max(1) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_small_run_has_no_violations() {
        let t = e6_consensus(1, 60_000);
        let s = t.render();
        for line in s.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[3], "0", "safety violation reported:\n{s}");
        }
    }

    #[test]
    fn e7_steady_state_runs_no_prepares() {
        let t = e7_steady_state(3, 10, 5_000);
        let s = t.render();
        let loss0 = s.lines().nth(2).unwrap();
        let cols: Vec<&str> = loss0.split_whitespace().collect();
        assert_eq!(cols[1], "10/10", "all commands must commit:\n{s}");
        assert_eq!(cols[2], "0", "steady state must not re-prepare:\n{s}");
    }
}
