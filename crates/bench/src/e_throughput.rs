//! Experiment E19: the batched/pipelined throughput path, measured.
//!
//! E7 established the steady-state *per-slot* cost (one round trip per
//! command with a stable leader). E19 measures what the throughput path
//! buys on top of it: with [`BatchParams`] enabling command batching
//! (many client commands per decided slot) and slot pipelining (up to
//! `pipeline_depth` proposals in flight), a closed burst of `M` commands
//! must decide at a multiple of the batch-size-1 / depth-1 baseline rate.
//!
//! Each substrate runs the same grid of `(max_batch, pipeline_depth)`
//! configurations — always including the mandatory `(1, 1)` baseline —
//! against the same offered load:
//!
//! * **netsim** — deterministic ticks over an all-timely topology; two
//!   commands are injected per tick at the established leader, so the
//!   baseline is round-trip-bound while the batched path is offered-load
//!   bound. Throughput is reported in committed commands per kilotick and
//!   latencies (issue → leader commit) in ticks, exactly reproducible
//!   from the seed.
//! * **threadnet** and **wirenet** — wall clock; the whole burst is fired
//!   at once and the run is timed until the leader has committed every
//!   command. Throughput is commands per second, latencies in
//!   microseconds measured against the burst start.
//!
//! Every run records into the shared [`Registry`]: per-configuration
//! latency histograms, committed-command counters, and the
//! `probe_batch_commit_total` counter bumped by the
//! [`BatchCommit`](lls_obs::ProbeEvent::BatchCommit) probe (surfaced here
//! as the number of multi-command slots the run decided). The registry
//! snapshot is embedded in `BENCH_E19.json` alongside the per-row
//! results, the cross-substrate `max_speedup`, and the ≥ 3× acceptance
//! verdict.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{classify_rsm_msg, BatchParams, ConsensusParams, ReplicatedLog, RsmEvent};
use lls_obs::{NodeRecorders, Registry};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::percentile;
use crate::table::Table;

/// The measured grid: the mandatory baseline plus two batched/pipelined
/// configurations.
const CONFIGS: &[(usize, usize)] = &[(1, 1), (8, 4), (32, 8)];

/// The acceptance threshold: best batched throughput over the baseline.
const SPEEDUP_GATE: f64 = 3.0;

/// One substrate × configuration measurement.
struct ThroughputRow {
    substrate: &'static str,
    max_batch: usize,
    depth: usize,
    /// Commands offered in the burst.
    commands: u64,
    /// Commands the leader committed before the deadline.
    committed: u64,
    /// Multi-command slots decided (from `probe_batch_commit_total`).
    batched_slots: u64,
    /// Committed commands per unit of `unit`.
    throughput: f64,
    /// `"cmds/ktick"` on netsim, `"cmds/s"` on the wall-clock substrates.
    unit: &'static str,
    /// Issue-to-commit latency percentiles, in `lat_unit`.
    p50: u64,
    p99: u64,
    /// `"ticks"` on netsim, `"us"` on the wall-clock substrates.
    lat_unit: &'static str,
    /// Throughput relative to the same substrate's `(1, 1)` baseline.
    speedup: f64,
}

fn rsm_params(max_batch: usize, depth: usize) -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch,
            pipeline_depth: depth,
        },
        ..ConsensusParams::default()
    }
}

/// Records one run's latency distribution and counters into the shared
/// registry and returns the percentiles.
fn record_run(
    registry: &Registry,
    substrate: &'static str,
    lat_unit: &'static str,
    (max_batch, depth): (usize, usize),
    latencies: &mut [u64],
    committed: u64,
    batched_slots: u64,
) -> (u64, u64) {
    let hist_name = format!("e19_{substrate}_b{max_batch}_d{depth}_latency_{lat_unit}");
    registry.describe(
        &hist_name,
        "E19 issue-to-commit latency for one configuration",
    );
    let hist = registry.histogram(&hist_name);
    for &l in latencies.iter() {
        hist.record(l);
    }
    registry.describe(
        "e19_commands_committed_total",
        "E19 commands committed across all runs",
    );
    registry
        .counter("e19_commands_committed_total")
        .add(committed);
    registry.describe(
        "e19_batched_slots_total",
        "E19 decided slots that carried more than one command",
    );
    registry
        .counter("e19_batched_slots_total")
        .add(batched_slots);
    latencies.sort_unstable();
    if latencies.is_empty() {
        (0, 0)
    } else {
        (percentile(latencies, 50.0), percentile(latencies, 99.0))
    }
}

/// Deterministic run: two commands per tick are injected at the
/// established leader; the decided timeline is read back from the
/// simulator's output log.
fn netsim_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
    registry: &Registry,
) -> ThroughputRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let params = rsm_params(max_batch, depth);
    let rec = Arc::clone(&recorders);
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .classify(classify_rsm_msg)
        .build_with(move |env| {
            ReplicatedLog::<u64, _>::new_with_probe(env, params, rec.probe_for(env.id()))
        });
    // Let the initial leader establish its ballot before offering load.
    let issue_base = 2_000u64;
    sim.run_until(Instant::from_ticks(issue_base));
    let leader = sim.node(ProcessId(0)).omega().leader();
    // Offered load: two commands per tick. The baseline (one slot per
    // round trip) cannot keep up; the pipelined path can.
    let issue_tick = |i: u64| issue_base + 1 + i / 2;
    for i in 0..commands {
        sim.schedule_request(Instant::from_ticks(issue_tick(i)), leader, i);
    }
    sim.run_until(Instant::from_ticks(issue_base + commands * 10 + 10_000));
    // Commit times observed at the leader, keyed by command value.
    let mut commit_at: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in sim.outputs() {
        if ev.process != leader {
            continue;
        }
        if let RsmEvent::Committed { cmd: Some(v), .. } = ev.output {
            commit_at.entry(v).or_insert(ev.at.ticks());
        }
    }
    let committed = commit_at.len() as u64;
    let mut latencies: Vec<u64> = commit_at
        .iter()
        .map(|(&v, &at)| at.saturating_sub(issue_tick(v)))
        .collect();
    let span = commit_at
        .values()
        .max()
        .map_or(0, |&last| last.saturating_sub(issue_base));
    let throughput = if span == 0 {
        0.0
    } else {
        committed as f64 * 1_000.0 / span as f64
    };
    let batched_slots = recorders
        .registry()
        .counter_value("probe_batch_commit_total");
    let (p50, p99) = record_run(
        registry,
        "netsim",
        "ticks",
        (max_batch, depth),
        &mut latencies,
        committed,
        batched_slots,
    );
    ThroughputRow {
        substrate: "netsim",
        max_batch,
        depth,
        commands,
        committed,
        batched_slots,
        throughput,
        unit: "cmds/ktick",
        p50,
        p99,
        lat_unit: "ticks",
        speedup: 1.0,
    }
}

/// Maps a replicated-log cluster's latest outputs to the leader view
/// [`await_unanimity`] polls: in a request-free warmup the only outputs
/// are `Leader` events.
fn leader_view(latest: Vec<Option<RsmEvent<u64>>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(RsmEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Timeline bookkeeping shared by the wall-clock substrates: latencies
/// are measured against the burst start, re-anchored onto the report's
/// since-spawn clock via the last commit (`anchor = last_commit -
/// measured_wall`), which confines the error to the polling granularity.
fn wall_latencies(
    outputs: &[(ProcessId, StdDuration, RsmEvent<u64>)],
    leader: ProcessId,
    total_wall: StdDuration,
) -> (u64, Vec<u64>) {
    let mut commit_at: BTreeMap<u64, StdDuration> = BTreeMap::new();
    for (p, at, ev) in outputs {
        if *p != leader {
            continue;
        }
        if let RsmEvent::Committed { cmd: Some(v), .. } = ev {
            commit_at.entry(*v).or_insert(*at);
        }
    }
    let committed = commit_at.len() as u64;
    let anchor = commit_at
        .values()
        .max()
        .map_or(StdDuration::ZERO, |&last| last.saturating_sub(total_wall));
    let latencies = commit_at
        .values()
        .map(|&at| at.saturating_sub(anchor).as_micros() as u64)
        .collect();
    (committed, latencies)
}

/// Thread-mesh run: fire the whole burst at the elected leader, poll the
/// shared output log until every command committed there, then time it.
fn threadnet_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    seed: u64,
    registry: &Registry,
) -> ThroughputRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let params = rsm_params(max_batch, depth);
    let rec = Arc::clone(&recorders);
    let cluster = Cluster::spawn(config, move |env| {
        ReplicatedLog::<u64, _>::new_with_probe(env, params, rec.probe_for(env.id()))
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let burst_start = StdInstant::now();
    for i in 0..commands {
        cluster.request(leader, i);
    }
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let done = cluster
            .outputs_so_far()
            .iter()
            .filter(|o| {
                o.process == leader && matches!(o.output, RsmEvent::Committed { cmd: Some(_), .. })
            })
            .count() as u64;
        if done >= commands || StdInstant::now() > deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(1));
    }
    let total_wall = burst_start.elapsed();
    let report = cluster.stop();
    let outputs: Vec<(ProcessId, StdDuration, RsmEvent<u64>)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (committed, mut latencies) = wall_latencies(&outputs, leader, total_wall);
    let throughput = committed as f64 / total_wall.as_secs_f64().max(f64::EPSILON);
    let batched_slots = recorders
        .registry()
        .counter_value("probe_batch_commit_total");
    let (p50, p99) = record_run(
        registry,
        "threadnet",
        "us",
        (max_batch, depth),
        &mut latencies,
        committed,
        batched_slots,
    );
    ThroughputRow {
        substrate: "threadnet",
        max_batch,
        depth,
        commands,
        committed,
        batched_slots,
        throughput,
        unit: "cmds/s",
        p50,
        p99,
        lat_unit: "us",
        speedup: 1.0,
    }
}

/// TCP run: same shape as threadnet, except completion is detected from
/// the leader's *latest* output (the socket substrate exposes no running
/// output log) and the report's socket counters are exported into the
/// shared registry.
fn wirenet_run(
    n: usize,
    commands: u64,
    max_batch: usize,
    depth: usize,
    registry: &Registry,
) -> ThroughputRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let params = rsm_params(max_batch, depth);
    let rec = Arc::clone(&recorders);
    let cluster = WireCluster::try_spawn(config, move |env| {
        ReplicatedLog::<u64, _>::new_with_probe(env, params, rec.probe_for(env.id()))
    })
    .expect("bind 127.0.0.1 listeners");
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let burst_start = StdInstant::now();
    for i in 0..commands {
        cluster.request(leader, i);
    }
    // Under a stable leader commands commit in submission order, so the
    // burst is done when the leader's newest output is the last command.
    let last = commands.saturating_sub(1);
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let newest = cluster.latest_outputs().into_iter().nth(leader.as_usize());
        if matches!(
            newest,
            Some(Some(RsmEvent::Committed { cmd: Some(v), .. })) if v == last
        ) || StdInstant::now() > deadline
        {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
    let total_wall = burst_start.elapsed();
    let report = cluster.stop();
    report.export(registry);
    let outputs: Vec<(ProcessId, StdDuration, RsmEvent<u64>)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (committed, mut latencies) = wall_latencies(&outputs, leader, total_wall);
    let throughput = committed as f64 / total_wall.as_secs_f64().max(f64::EPSILON);
    let batched_slots = recorders
        .registry()
        .counter_value("probe_batch_commit_total");
    let (p50, p99) = record_run(
        registry,
        "wirenet",
        "us",
        (max_batch, depth),
        &mut latencies,
        committed,
        batched_slots,
    );
    ThroughputRow {
        substrate: "wirenet",
        max_batch,
        depth,
        commands,
        committed,
        batched_slots,
        throughput,
        unit: "cmds/s",
        p50,
        p99,
        lat_unit: "us",
        speedup: 1.0,
    }
}

/// Fills in per-substrate speedups relative to the `(1, 1)` baseline row
/// and returns the best complete-run speedup across all substrates.
fn compute_speedups(rows: &mut [ThroughputRow]) -> f64 {
    let mut max_speedup = 0.0f64;
    let baselines: Vec<(&'static str, f64, bool)> = rows
        .iter()
        .filter(|r| r.max_batch == 1 && r.depth == 1)
        .map(|r| (r.substrate, r.throughput, r.committed == r.commands))
        .collect();
    for row in rows.iter_mut() {
        let Some(&(_, base, base_ok)) = baselines.iter().find(|(s, _, _)| *s == row.substrate)
        else {
            continue;
        };
        row.speedup = if base > 0.0 {
            row.throughput / base
        } else {
            0.0
        };
        let complete = base_ok && row.committed == row.commands;
        if complete && !(row.max_batch == 1 && row.depth == 1) {
            max_speedup = max_speedup.max(row.speedup);
        }
    }
    max_speedup
}

fn row_json(row: &ThroughputRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("max_batch", JsonValue::U64(row.max_batch as u64)),
        ("pipeline_depth", JsonValue::U64(row.depth as u64)),
        ("commands", JsonValue::U64(row.commands)),
        ("committed", JsonValue::U64(row.committed)),
        ("batched_slots", JsonValue::U64(row.batched_slots)),
        ("throughput", JsonValue::F64(row.throughput)),
        ("throughput_unit", JsonValue::str(row.unit)),
        ("latency_p50", JsonValue::U64(row.p50)),
        ("latency_p99", JsonValue::U64(row.p99)),
        ("latency_unit", JsonValue::str(row.lat_unit)),
        ("speedup", JsonValue::F64(row.speedup)),
    ])
}

/// **E19** — measure the batched/pipelined throughput path on every
/// substrate: a closed burst of `commands` commands against the
/// `(max_batch, pipeline_depth)` grid (baseline `(1,1)`, `(8,4)`,
/// `(32,8)`), reporting decided-commands/sec (per kilotick on netsim),
/// p50/p99 issue-to-commit latency, multi-command slot counts, the
/// cross-substrate `max_speedup`, and the ≥ 3× verdict. Returns the
/// human table and the JSON summary the CLI writes as `BENCH_E19.json`.
pub fn e19_throughput(n: usize, commands: u64, seed: u64) -> (Table, JsonValue) {
    let registry = Registry::new();
    let mut rows = Vec::new();
    for &(b, d) in CONFIGS {
        rows.push(netsim_run(n, commands, b, d, seed, &registry));
    }
    for &(b, d) in CONFIGS {
        rows.push(threadnet_run(n, commands, b, d, seed, &registry));
    }
    for &(b, d) in CONFIGS {
        rows.push(wirenet_run(n, commands, b, d, &registry));
    }
    let max_speedup = compute_speedups(&mut rows);
    let pass = max_speedup >= SPEEDUP_GATE;
    let mut t = Table::new(vec![
        "substrate",
        "batch x depth",
        "committed",
        "batched slots",
        "throughput",
        "latency p50/p99",
        "speedup",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            format!("{} x {}", row.max_batch, row.depth),
            format!("{}/{}", row.committed, row.commands),
            row.batched_slots.to_string(),
            format!("{:.1} {}", row.throughput, row.unit),
            format!("{}/{} {}", row.p50, row.p99, row.lat_unit),
            format!("{:.2}x", row.speedup),
        ]);
    }
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e19")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("commands", JsonValue::U64(commands)),
        ("speedup_gate", JsonValue::F64(SPEEDUP_GATE)),
        ("max_speedup", JsonValue::F64(max_speedup)),
        ("pass", JsonValue::Bool(pass)),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
        ("metrics", JsonValue::Raw(registry.snapshot_json())),
    ]);
    (t, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance path on the deterministic substrate: the batched
    /// configurations commit the full burst and beat the baseline by the
    /// gate margin, reproducibly from the seed.
    #[test]
    fn netsim_batched_beats_baseline_by_3x() {
        let registry = Registry::new();
        let base = netsim_run(3, 240, 1, 1, 7, &registry);
        let fast = netsim_run(3, 240, 32, 8, 7, &registry);
        assert_eq!(base.committed, 240, "baseline must commit the burst");
        assert_eq!(fast.committed, 240, "batched run must commit the burst");
        assert!(
            fast.batched_slots > 0,
            "the batched run must decide multi-command slots"
        );
        assert_eq!(base.batched_slots, 0, "the baseline must never batch");
        assert!(
            fast.throughput >= SPEEDUP_GATE * base.throughput,
            "batched throughput {:.1} must be >= 3x baseline {:.1}",
            fast.throughput,
            base.throughput
        );
    }

    /// Same seed, same configuration, same numbers: the netsim rows are
    /// deterministic.
    #[test]
    fn netsim_rows_are_reproducible() {
        let registry = Registry::new();
        let a = netsim_run(3, 120, 8, 4, 11, &registry);
        let b = netsim_run(3, 120, 8, 4, 11, &registry);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p99, b.p99);
        assert!((a.throughput - b.throughput).abs() < 1e-9);
    }
}
