//! Minimal aligned-column table rendering for experiment output.

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["3", "1"]).row(vec!["100", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "n    value");
        assert_eq!(lines[2], "3    1");
        assert_eq!(lines[3], "100  22");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a", "b"]).row(vec!["1"]);
    }
}
