//! Experiment E21: bounded recovery under sustained chaos — snapshots,
//! WAL compaction, and snapshot-install catch-up, measured end to end.
//!
//! E16 established that durable state keeps the checkers green across
//! crash–restart compositions. E21 extends that campaign along the axis the
//! paper's "communication-efficient steady state" implies for long
//! deployments: a replica's restart cost must not grow with its uptime.
//! Each netsim scenario is a compressed week of uptime: an E19-style
//! pipelined client workload (a [`SubmitQueue`] keeping a full window in
//! flight, with jittered re-submission after leader changes) runs across
//! repeated leader-biased kill/restart cycles while every replica
//! auto-compacts its segmented on-disk WAL behind KV-state snapshots — so
//! compaction races the pipeline, and snapshot-install races failover.
//!
//! Two netsim modes run the *same* seeded campaign:
//!
//! * **kv+snapshots** — segmented WAL + snapshot store, auto-compaction
//!   every `COMPACT_EVERY` applied commands. Restart replay bytes are
//!   measured at every recovery; the final WAL must stay within
//!   `WAL_BOUND` (snapshot + active segments) no matter how many cycles
//!   ran. One cycle per scenario *wipes* the victim's disk — the fresh
//!   node must catch up by snapshot-install and converge.
//! * **full-WAL** — the control: same workload, same kills, no snapshot
//!   store. Its restart replay bytes grow with uptime; the ratio
//!   `full / snapshots` is the experiment's headline gate.
//!
//! The wall-clock substrates (threadnet, wirenet) each run a lighter
//! kill → durable-restart → kill → wipe-restart cycle under injected loss
//! and delay, gating that snapshot-install completes and the wiped node
//! rejoins the session (its re-issued command answers `Duplicate`, proving
//! the snapshot carried the dedup table).
//!
//! Every scenario routes probes through per-node flight recorders and the
//! online [`Watchdog`] (counter monotonicity is enforced throughout; a
//! wiped node gets a *fresh* watchdog context, because a new identity
//! legitimately restarts its accusation counter from zero). Violations
//! gate the CLI exit status exactly like E16.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, SubmitQueue, Tagged};
use lls_obs::{NodeRecorders, Watchdog, WatchdogConfig};
use lls_primitives::{Env, Instant, ProcessId, SnapshotHandle, StorageHandle};
use netsim::{SimBuilder, SystemSParams, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, FaultConfig, WireCluster, WireConfig};

use crate::json::{self, JsonValue};
use crate::table::Table;

/// Segment budget of every on-disk WAL in the campaign.
const SEGMENT_BUDGET: u64 = 8 * 1024;
/// Auto-compaction cadence (applied commands between snapshots).
const COMPACT_EVERY: u64 = 8;
/// The steady-state disk bound under test: snapshot + active segments —
/// one full segment plus the in-progress one.
const WAL_BOUND: u64 = 2 * SEGMENT_BUDGET;
/// The single chaos client.
const CLIENT: ClientId = ClientId(9);

/// splitmix64 — every schedule choice derives from the scenario seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-substrate tally of the campaign.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    scenarios: usize,
    kills: usize,
    wipes: usize,
    installs: u64,
    checks: usize,
    violations: usize,
    successes: usize,
}

fn violation_dump(context: &str, recorders: &NodeRecorders, nodes: &[ProcessId]) -> String {
    let mut out = format!("E21 VIOLATION ({context}) — flight-recorder post-mortem:\n");
    for &p in nodes {
        out.push_str(&recorders.dump(p));
    }
    out
}

/// Folds the watchdog's alarms into the tally as one checked invariant.
fn gate_on_watchdog(context: &str, watchdog: &Watchdog, tally: &mut Tally) {
    let alarms = watchdog.alarms();
    tally.checks += 1;
    if !alarms.is_empty() {
        tally.violations += 1;
        for alarm in &alarms {
            eprintln!(
                "WATCHDOG ALARM ({context}) {:?} on {}: {}\n{}",
                alarm.kind, alarm.node, alarm.detail, alarm.dump
            );
        }
    }
}

/// Per-scenario on-disk layout, removed on drop (best effort).
struct ScenarioDirs {
    base: PathBuf,
}

impl ScenarioDirs {
    fn new(tag: &str) -> Self {
        let base = std::env::temp_dir().join(format!("lls-e21-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        ScenarioDirs { base }
    }

    fn wal(&self, p: usize) -> PathBuf {
        self.base.join(format!("p{p}-wal"))
    }

    fn snap(&self, p: usize) -> PathBuf {
        self.base.join(format!("p{p}-snap"))
    }
}

impl Drop for ScenarioDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

/// What one netsim scenario measured.
#[derive(Debug, Default)]
struct NetsimStats {
    /// WAL bytes scanned at each durable (non-wipe) restart.
    replay_bytes: Vec<u64>,
    /// Largest per-node WAL live-byte figure at the end of the run.
    wal_max: u64,
    /// `SnapshotInstalled` events observed across the run.
    installs: u64,
    /// `recovery_replay_bytes` from the unified registries.
    replay_counter: u64,
    /// `snapshot_install_total` from the unified registries.
    install_counter: u64,
    /// Registry snapshot (probe counters), for the JSON artifact.
    metrics: String,
}

fn put(seq: u64) -> Tagged<KvCmd> {
    Tagged {
        client: CLIENT,
        seq,
        cmd: KvCmd::put(format!("k{seq}"), format!("v{seq}")),
    }
}

/// Lowest-id live process, skipping `skip` — the driver's observation point
/// for leadership and reference state.
fn alive_probe<S: lls_primitives::Sm>(
    sim: &netsim::Simulator<S>,
    n: usize,
    skip: Option<ProcessId>,
) -> ProcessId {
    (0..n as u32)
        .map(ProcessId)
        .find(|&p| sim.is_alive(p) && Some(p) != skip)
        .expect("a quorum stays alive")
}

/// One seeded netsim campaign: pipelined load, leader-biased kill/restart
/// cycles (the last one a disk wipe in snapshot mode), then convergence,
/// exactly-once, WAL-bound, and watchdog gates.
fn netsim_scenario(
    n: usize,
    seed: u64,
    commands: u64,
    compacted: bool,
    tally: &mut Tally,
) -> NetsimStats {
    let dirs = ScenarioDirs::new(&format!(
        "{}-{}-{}",
        seed,
        if compacted { "snap" } else { "full" },
        n
    ));
    let mut stores: Vec<StorageHandle> = (0..n)
        .map(|p| StorageHandle::segmented_wal(dirs.wal(p), SEGMENT_BUDGET).expect("create WAL"))
        .collect();
    let mut snaps: Vec<SnapshotHandle> = (0..n)
        .map(|p| SnapshotHandle::file(dirs.snap(p)).expect("create snapshot dir"))
        .collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    // A wiped node is a new identity: its accusation counter legitimately
    // restarts at zero, so it reports into a fresh watchdog context instead
    // of tripping the old one's monotonicity invariant.
    let wipe_recorders = Arc::new(NodeRecorders::new(n, 256));
    let wipe_watchdog =
        Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&wipe_recorders));
    let params = ConsensusParams::default();
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(1)],
        SystemSParams {
            gst: 100,
            ..SystemSParams::default()
        },
    );
    let build = |env: &Env,
                 store: StorageHandle,
                 snap: SnapshotHandle,
                 probe: lls_obs::WatchdogProbe<lls_obs::RecordingProbe>| {
        if compacted {
            let mut r =
                KvReplica::with_storage_snapshots_and_probe(env, params, store, snap, probe)
                    .expect("open stores");
            r.set_compact_every(COMPACT_EVERY);
            r
        } else {
            KvReplica::with_storage_and_probe(env, params, store, probe).expect("open store")
        }
    };
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .build_with(|env| {
            build(
                env,
                stores[env.id().as_usize()].clone(),
                snaps[env.id().as_usize()].clone(),
                watchdog.probe(recorders.probe_for(env.id())),
            )
        });
    tally.scenarios += 1;

    let mut now = 8_000u64;
    sim.run_until(Instant::from_ticks(now));

    let mut queue = SubmitQueue::new(8);
    queue.set_retry_backoff(400, seed ^ 0x5eed);
    for i in 0..commands {
        queue.submit(put(i + 1));
    }

    // Kill thresholds in settled commands; the last cycle wipes the victim
    // (snapshot mode only — the control has no install path to exercise).
    let mut plan: Vec<(u64, bool)> = vec![
        (commands / 4, false),
        (commands / 2, false),
        (3 * commands / 4, false),
    ];
    if compacted {
        plan.push((commands * 9 / 10, true));
    }
    let mut next_kill = 0usize;
    let mut down: Option<(ProcessId, u64, bool)> = None;
    let mut settled: BTreeMap<u64, u32> = BTreeMap::new();
    let mut seen = 0usize;
    let mut stats = NetsimStats::default();
    let mut leader = sim.node(alive_probe(&sim, n, None)).omega().leader();
    let horizon = now + commands * 400 + 200_000;
    let slice = 100u64;
    while now < horizon {
        let target = if sim.is_alive(leader) {
            leader
        } else {
            alive_probe(&sim, n, down.map(|(v, _, _)| v))
        };
        for cmd in queue.drain() {
            sim.schedule_request(Instant::from_ticks(now + 1), target, cmd);
        }
        for _ in 0..slice {
            for cmd in queue.on_tick() {
                sim.schedule_request(Instant::from_ticks(now + 1), target, cmd);
            }
        }
        now += slice;
        sim.run_until(Instant::from_ticks(now));

        let outputs = sim.outputs();
        for ev in &outputs[seen..] {
            match &ev.output {
                KvEvent::Applied {
                    client: c,
                    seq,
                    response,
                    ..
                } if *c == CLIENT && queue.settle(*c, *seq, response).is_some() => {
                    *settled.entry(*seq).or_default() += 1;
                }
                KvEvent::SnapshotInstalled { .. } => stats.installs += 1,
                _ => {}
            }
        }
        seen = outputs.len();

        // Restart a due victim: recover from its (possibly wiped) disk.
        if let Some((victim, at, wipe)) = down {
            if now >= at {
                let v = victim.as_usize();
                if wipe {
                    let _ = std::fs::remove_dir_all(dirs.wal(v));
                    let _ = std::fs::remove_dir_all(dirs.snap(v));
                    stores[v] = StorageHandle::segmented_wal(dirs.wal(v), SEGMENT_BUDGET)
                        .expect("recreate WAL");
                    snaps[v] = SnapshotHandle::file(dirs.snap(v)).expect("recreate snapshots");
                }
                let env = Env::new(victim, n);
                let probe = if wipe {
                    wipe_watchdog.probe(wipe_recorders.probe_for(victim))
                } else {
                    watchdog.probe(recorders.probe_for(victim))
                };
                let recovered = build(&env, stores[v].clone(), snaps[v].clone(), probe);
                if !wipe {
                    stats
                        .replay_bytes
                        .push(recovered.log().wal_stats().live_bytes);
                }
                sim.restart(victim, recovered);
                down = None;
            }
        }
        // Fire the next kill once enough commands settled and nobody is
        // down: the victim is whoever currently leads (the most disruptive
        // choice), discovered through a surviving observer.
        if down.is_none() && next_kill < plan.len() && settled.len() as u64 >= plan[next_kill].0 {
            let (_, wipe) = plan[next_kill];
            let victim = if sim.is_alive(leader) {
                leader
            } else {
                alive_probe(&sim, n, None)
            };
            sim.kill(victim);
            tally.kills += 1;
            if wipe {
                tally.wipes += 1;
            }
            down = Some((
                victim,
                now + 6_000 + mix(seed ^ next_kill as u64) % 2_000,
                wipe,
            ));
            next_kill += 1;
        }
        let probe_node = alive_probe(&sim, n, down.map(|(v, _, _)| v));
        let believed = sim.node(probe_node).omega().leader();
        if believed != leader {
            leader = believed;
            queue.on_leader_change();
        }
        if queue.is_idle() && next_kill == plan.len() && down.is_none() {
            break;
        }
    }
    // Let the tail drain: straggler Decides, catch-ups, final compactions.
    now += 20_000;
    sim.run_until(Instant::from_ticks(now));
    for ev in &sim.outputs()[seen..] {
        match &ev.output {
            KvEvent::Applied {
                client: c,
                seq,
                response,
                ..
            } if *c == CLIENT && queue.settle(*c, *seq, response).is_some() => {
                *settled.entry(*seq).or_default() += 1;
            }
            KvEvent::SnapshotInstalled { .. } => stats.installs += 1,
            _ => {}
        }
    }

    let mut ok = true;
    tally.checks += 1;
    if !(queue.is_idle() && next_kill == plan.len() && down.is_none()) {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump(
                &format!(
                    "netsim seed {seed}: campaign stalled ({} queued, {} in flight, {next_kill}/{} kills)",
                    queue.queued_len(),
                    queue.released_len(),
                    plan.len()
                ),
                &recorders,
                &[alive_probe(&sim, n, None)]
            )
        );
    }
    tally.checks += 1;
    let missing: Vec<u64> = (1..=commands)
        .filter(|s| settled.get(s).copied().unwrap_or(0) != 1)
        .collect();
    if !missing.is_empty() {
        tally.violations += 1;
        ok = false;
        eprintln!("E21 VIOLATION (netsim seed {seed}): seqs not settled exactly once: {missing:?}");
    }
    // Convergence: every replica (the wiped one included) materializes the
    // same store and the full client session.
    tally.checks += 1;
    let reference = alive_probe(&sim, n, None);
    let expect: Vec<(String, String)> = sim
        .node(reference)
        .state()
        .iter()
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    let mut converged = expect.len() as u64 == commands;
    for p in (0..n as u32).map(ProcessId) {
        let state = sim.node(p).state();
        let got: Vec<(String, String)> = state
            .iter()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        if got != expect || state.session_seq(CLIENT) != Some(commands) {
            converged = false;
            eprintln!(
                "{}",
                violation_dump(
                    &format!(
                        "netsim seed {seed}: replica {p} diverged \
                         ({} keys vs {} expected, session {:?} vs {commands})",
                        got.len(),
                        expect.len(),
                        state.session_seq(CLIENT)
                    ),
                    &recorders,
                    &[p]
                )
            );
        }
    }
    if !converged {
        tally.violations += 1;
        ok = false;
    }
    stats.wal_max = (0..n as u32)
        .map(|p| sim.node(ProcessId(p)).log().wal_stats().live_bytes)
        .max()
        .unwrap_or(0);
    if compacted {
        // The tentpole bound: steady-state disk stays within snapshot +
        // active segments regardless of uptime and kill count.
        tally.checks += 1;
        if stats.wal_max > WAL_BOUND {
            tally.violations += 1;
            ok = false;
            eprintln!(
                "E21 VIOLATION (netsim seed {seed}): WAL {} exceeds bound {WAL_BOUND}",
                stats.wal_max
            );
        }
        // The wiped node (and any far-behind restart) must have caught up
        // by state transfer at least once.
        tally.checks += 1;
        if stats.installs == 0 {
            tally.violations += 1;
            ok = false;
            eprintln!("E21 VIOLATION (netsim seed {seed}): no snapshot-install observed");
        }
        tally.installs += stats.installs;
    }
    gate_on_watchdog(&format!("netsim seed {seed}"), &watchdog, tally);
    gate_on_watchdog(
        &format!("netsim seed {seed} (wiped node)"),
        &wipe_watchdog,
        tally,
    );
    if ok {
        tally.successes += 1;
    }
    let reg = recorders.registry();
    let wipe_reg = wipe_recorders.registry();
    stats.replay_counter = reg.counter_value("recovery_replay_bytes")
        + wipe_reg.counter_value("recovery_replay_bytes");
    stats.install_counter = reg.counter_value("snapshot_install_total")
        + wipe_reg.counter_value("snapshot_install_total");
    stats.metrics = reg.snapshot_json();
    stats
}

/// Polls `applied(seq_done_per_node)` until every member reaches `target`,
/// re-issuing the target command each round (replicas answer re-issues with
/// `Duplicate`, so even a fully caught-up cluster keeps emitting evidence).
fn await_seq(
    mut refresh: impl FnMut(&mut BTreeMap<ProcessId, u64>),
    resubmit: impl Fn(),
    members: &[ProcessId],
    target: u64,
    timeout: StdDuration,
) -> bool {
    let deadline = StdInstant::now() + timeout;
    let mut done: BTreeMap<ProcessId, u64> = BTreeMap::new();
    loop {
        resubmit();
        refresh(&mut done);
        if members
            .iter()
            .all(|p| done.get(p).copied().unwrap_or(0) >= target)
        {
            return true;
        }
        if StdInstant::now() > deadline {
            return false;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

fn note_applied(done: &mut BTreeMap<ProcessId, u64>, p: ProcessId, ev: &KvEvent) {
    if let KvEvent::Applied { client, seq, .. } = ev {
        if *client == CLIENT {
            let entry = done.entry(p).or_default();
            *entry = (*entry).max(*seq);
        }
    }
}

/// One wall-clock cycle shared by both substrates, expressed through
/// closures over the concrete cluster: pipelined load, a durable restart,
/// then a wipe restart that must finish with a snapshot-install.
struct WallHooks<'a> {
    request: &'a dyn Fn(ProcessId, Tagged<KvCmd>),
    refresh: &'a mut dyn FnMut(&mut BTreeMap<ProcessId, u64>),
}

fn wall_phase(
    hooks: &mut WallHooks<'_>,
    members: &[ProcessId],
    from: u64,
    to: u64,
    timeout: StdDuration,
) -> bool {
    for s in from..=to {
        for &p in members {
            (hooks.request)(p, put(s));
        }
    }
    let request = hooks.request;
    await_seq(
        &mut *hooks.refresh,
        || {
            for &p in members {
                request(p, put(to));
            }
        },
        members,
        to,
        timeout,
    )
}

/// One threadnet scenario: in-memory stores with snapshots, loss and delay
/// injected, kill → durable restart → kill → wipe restart.
fn threadnet_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let mut stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let mut snaps: Vec<SnapshotHandle> = (0..n).map(|_| SnapshotHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let wipe_recorders = Arc::new(NodeRecorders::new(n, 256));
    let wipe_watchdog =
        Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&wipe_recorders));
    let params = ConsensusParams::default();
    let config = NetConfig {
        n,
        loss: 0.02,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let make = |env: &Env, store: StorageHandle, snap: SnapshotHandle, probe| {
        let mut r = KvReplica::with_storage_snapshots_and_probe(env, params, store, snap, probe)
            .expect("open stores");
        r.set_compact_every(COMPACT_EVERY);
        r
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        make(
            env,
            stores[env.id().as_usize()].clone(),
            snaps[env.id().as_usize()].clone(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    });
    tally.scenarios += 1;
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(15);
    let mut ok = true;
    {
        let mut refresh = |done: &mut BTreeMap<ProcessId, u64>| {
            for t in cluster.outputs_so_far() {
                note_applied(done, t.process, &t.output);
            }
        };
        let request = |p: ProcessId, cmd: Tagged<KvCmd>| cluster.request(p, cmd);
        let mut hooks = WallHooks {
            request: &request,
            refresh: &mut refresh,
        };
        let gate = |tally: &mut Tally, ok: &mut bool, passed: bool, context: &str| {
            tally.checks += 1;
            if !passed {
                tally.violations += 1;
                *ok = false;
                eprintln!("{}", violation_dump(context, &recorders, &all));
            }
        };

        let passed = wall_phase(&mut hooks, &all, 1, 16, timeout);
        gate(tally, &mut ok, passed, "threadnet warm-up convergence");

        let victim1 = ProcessId((mix(seed) % n as u64) as u32);
        cluster.kill(victim1);
        tally.kills += 1;
        let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim1).collect();
        let passed = wall_phase(&mut hooks, &survivors, 17, 28, timeout);
        gate(tally, &mut ok, passed, "threadnet progress during outage");

        let env = Env::new(victim1, n);
        cluster.restart(
            victim1,
            make(
                &env,
                stores[victim1.as_usize()].clone(),
                snaps[victim1.as_usize()].clone(),
                watchdog.probe(recorders.probe_for(victim1)),
            ),
        );
        let passed = wall_phase(&mut hooks, &all, 29, 29, timeout);
        gate(tally, &mut ok, passed, "threadnet durable-restart rejoin");

        let victim2 = ProcessId(((mix(seed) + 1) % n as u64) as u32);
        cluster.kill(victim2);
        tally.kills += 1;
        tally.wipes += 1;
        let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim2).collect();
        let passed = wall_phase(&mut hooks, &survivors, 30, 40, timeout);
        gate(
            tally,
            &mut ok,
            passed,
            "threadnet progress during wipe outage",
        );

        stores[victim2.as_usize()] = StorageHandle::in_memory();
        snaps[victim2.as_usize()] = SnapshotHandle::in_memory();
        let env = Env::new(victim2, n);
        cluster.restart(
            victim2,
            make(
                &env,
                stores[victim2.as_usize()].clone(),
                snaps[victim2.as_usize()].clone(),
                wipe_watchdog.probe(wipe_recorders.probe_for(victim2)),
            ),
        );
        let passed = wall_phase(&mut hooks, &all, 41, 41, timeout);
        gate(tally, &mut ok, passed, "threadnet wipe-restart catch-up");
    }
    let outputs = cluster.stop().outputs;
    let installs = outputs
        .iter()
        .filter(|t| matches!(t.output, KvEvent::SnapshotInstalled { .. }))
        .count() as u64;
    tally.checks += 1;
    if installs == 0 {
        tally.violations += 1;
        ok = false;
        eprintln!("E21 VIOLATION (threadnet seed {seed}): no snapshot-install observed");
    }
    tally.installs += installs;
    gate_on_watchdog("threadnet monotonicity", &watchdog, tally);
    gate_on_watchdog("threadnet monotonicity (wiped node)", &wipe_watchdog, tally);
    if ok {
        tally.successes += 1;
    }
}

/// One wirenet scenario: the same cycle over real TCP — the wiped node's
/// catch-up crosses actual reconnecting sockets under injected faults.
fn wirenet_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let mut stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let mut snaps: Vec<SnapshotHandle> = (0..n).map(|_| SnapshotHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let wipe_recorders = Arc::new(NodeRecorders::new(n, 256));
    let wipe_watchdog =
        Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&wipe_recorders));
    let params = ConsensusParams::default();
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: Some(FaultConfig {
            loss: 0.02,
            min_delay: StdDuration::from_micros(100),
            max_delay: StdDuration::from_micros(900),
            seed,
        }),
    };
    let make = |env: &Env, store: StorageHandle, snap: SnapshotHandle, probe| {
        let mut r = KvReplica::with_storage_snapshots_and_probe(env, params, store, snap, probe)
            .expect("open stores");
        r.set_compact_every(COMPACT_EVERY);
        r
    };
    let mut cluster = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        make(
            env,
            stores[env.id().as_usize()].clone(),
            snaps[env.id().as_usize()].clone(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    })
    .expect("bind 127.0.0.1 listeners");
    tally.scenarios += 1;
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(15);
    let mut ok = true;

    // wirenet only exposes the *latest* output per node, so progress is
    // tracked as a sticky per-node high-water mark across polls; the
    // re-issued target command keeps fresh `Duplicate` evidence flowing.
    macro_rules! phase {
        ($members:expr, $from:expr, $to:expr, $context:expr) => {{
            let members: &[ProcessId] = $members;
            for s in $from..=$to {
                for &p in members {
                    cluster.request(p, put(s));
                }
            }
            let passed = await_seq(
                |done| {
                    for (i, out) in cluster.latest_outputs().iter().enumerate() {
                        if let Some(ev) = out {
                            note_applied(done, ProcessId(i as u32), ev);
                        }
                    }
                },
                || {
                    for &p in members {
                        cluster.request(p, put($to));
                    }
                },
                members,
                $to,
                timeout,
            );
            tally.checks += 1;
            if !passed {
                tally.violations += 1;
                ok = false;
                eprintln!("{}", violation_dump($context, &recorders, &all));
            }
        }};
    }

    phase!(&all, 1, 16, "wirenet warm-up convergence");

    let victim1 = ProcessId((mix(seed) % n as u64) as u32);
    cluster.kill(victim1);
    tally.kills += 1;
    let survivors1: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim1).collect();
    phase!(&survivors1, 17, 28, "wirenet progress during outage");

    let env = Env::new(victim1, n);
    let recovered = make(
        &env,
        stores[victim1.as_usize()].clone(),
        snaps[victim1.as_usize()].clone(),
        watchdog.probe(recorders.probe_for(victim1)),
    );
    if cluster.restart(victim1, recovered).is_err() {
        tally.checks += 1;
        tally.violations += 1;
        ok = false;
        eprintln!("E21 VIOLATION (wirenet seed {seed}): restart rebind failed");
    } else {
        phase!(&all, 29, 29, "wirenet durable-restart rejoin");
    }

    let victim2 = ProcessId(((mix(seed) + 1) % n as u64) as u32);
    cluster.kill(victim2);
    tally.kills += 1;
    tally.wipes += 1;
    let survivors2: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim2).collect();
    phase!(&survivors2, 30, 40, "wirenet progress during wipe outage");

    stores[victim2.as_usize()] = StorageHandle::in_memory();
    snaps[victim2.as_usize()] = SnapshotHandle::in_memory();
    let env = Env::new(victim2, n);
    let fresh = make(
        &env,
        stores[victim2.as_usize()].clone(),
        snaps[victim2.as_usize()].clone(),
        wipe_watchdog.probe(wipe_recorders.probe_for(victim2)),
    );
    if cluster.restart(victim2, fresh).is_err() {
        tally.checks += 1;
        tally.violations += 1;
        ok = false;
        eprintln!("E21 VIOLATION (wirenet seed {seed}): wipe-restart rebind failed");
    } else {
        phase!(&all, 41, 41, "wirenet wipe-restart catch-up");
    }

    let outputs = cluster.stop().outputs;
    let installs = outputs
        .iter()
        .filter(|t| matches!(t.output, KvEvent::SnapshotInstalled { .. }))
        .count() as u64;
    tally.checks += 1;
    if installs == 0 {
        tally.violations += 1;
        ok = false;
        eprintln!("E21 VIOLATION (wirenet seed {seed}): no snapshot-install observed");
    }
    tally.installs += installs;
    gate_on_watchdog("wirenet monotonicity", &watchdog, tally);
    gate_on_watchdog("wirenet monotonicity (wiped node)", &wipe_watchdog, tally);
    if ok {
        tally.successes += 1;
    }
}

fn mean(v: &[u64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<u64>() as f64 / v.len() as f64
}

fn tally_row(t: &mut Table, substrate: &str, tally: Tally, replay: &str, wal: &str, outcome: &str) {
    t.row(vec![
        substrate.to_owned(),
        tally.scenarios.to_string(),
        tally.kills.to_string(),
        tally.wipes.to_string(),
        tally.installs.to_string(),
        replay.to_owned(),
        wal.to_owned(),
        tally.checks.to_string(),
        tally.violations.to_string(),
        format!("{} {}/{}", outcome, tally.successes, tally.scenarios),
    ]);
}

/// **E21** — the bounded-recovery campaign. Returns the table, the
/// machine-readable summary for `BENCH_E21.json`, and the total violation
/// count so the CLI can gate its exit status.
pub fn e21_recovery(
    scenarios: u64,
    commands: u64,
    wall_seeds: u64,
    ratio_gate: f64,
) -> (Table, JsonValue, usize) {
    let n = 5;
    let wall_n = 3;
    let mut snap_tally = Tally::default();
    let mut snap_replays: Vec<u64> = Vec::new();
    let mut snap_wal_max = 0u64;
    let mut last_metrics = String::from("{}");
    let mut replay_counter = 0u64;
    let mut install_counter = 0u64;
    for seed in 0..scenarios {
        let stats = netsim_scenario(n, seed, commands, true, &mut snap_tally);
        snap_replays.extend(&stats.replay_bytes);
        snap_wal_max = snap_wal_max.max(stats.wal_max);
        replay_counter += stats.replay_counter;
        install_counter += stats.install_counter;
        last_metrics = stats.metrics;
    }
    let mut full_tally = Tally::default();
    let mut full_replays: Vec<u64> = Vec::new();
    let mut full_wal_max = 0u64;
    for seed in 0..scenarios {
        let stats = netsim_scenario(n, seed, commands, false, &mut full_tally);
        full_replays.extend(&stats.replay_bytes);
        full_wal_max = full_wal_max.max(stats.wal_max);
    }
    // The headline gate: restarting from a snapshot replays a fraction of
    // the bytes a full-WAL restart scans, on the same seeded workload.
    let snap_mean = mean(&snap_replays);
    let full_mean = mean(&full_replays);
    let ratio = if snap_mean > 0.0 {
        full_mean / snap_mean
    } else {
        0.0
    };
    snap_tally.checks += 1;
    let ratio_pass = ratio >= ratio_gate;
    if !ratio_pass {
        snap_tally.violations += 1;
        eprintln!(
            "E21 VIOLATION: replay ratio {ratio:.1}x below gate {ratio_gate:.1}x \
             (snapshot mean {snap_mean:.0} B, full-WAL mean {full_mean:.0} B)"
        );
    }

    let mut thread_tally = Tally::default();
    for seed in 0..wall_seeds {
        threadnet_scenario(wall_n, seed, &mut thread_tally);
    }
    let mut wire_tally = Tally::default();
    for seed in 0..wall_seeds {
        wirenet_scenario(wall_n, seed, &mut wire_tally);
    }

    let mut t = Table::new(vec![
        "substrate",
        "scenarios",
        "kills",
        "wipes",
        "installs",
        "replay B/restart",
        "wal max B",
        "checks",
        "violations",
        "outcome",
    ]);
    tally_row(
        &mut t,
        "netsim/kv+snapshots",
        snap_tally,
        &format!("{snap_mean:.0}"),
        &format!("{snap_wal_max} (≤{WAL_BOUND})"),
        "recovered",
    );
    tally_row(
        &mut t,
        "netsim/kv full-WAL",
        full_tally,
        &format!("{full_mean:.0}"),
        &full_wal_max.to_string(),
        &format!("baseline ({ratio:.1}x)"),
    );
    tally_row(&mut t, "threadnet/kv", thread_tally, "-", "-", "agreed");
    tally_row(&mut t, "wirenet/kv", wire_tally, "-", "-", "agreed");
    let total_violations = snap_tally.violations
        + full_tally.violations
        + thread_tally.violations
        + wire_tally.violations;
    let total_kills = snap_tally.kills + full_tally.kills + thread_tally.kills + wire_tally.kills;
    let total_installs = snap_tally.installs + thread_tally.installs + wire_tally.installs;

    let wal_pass = snap_wal_max <= WAL_BOUND;
    let summary = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e21")),
        (
            "pass",
            JsonValue::Bool(ratio_pass && wal_pass && total_violations == 0),
        ),
        ("rows", json::table_rows_json(&t)),
        (
            "title",
            JsonValue::str(
                "bounded recovery: snapshots, WAL compaction, snapshot-install under chaos",
            ),
        ),
        (
            "config",
            JsonValue::obj(vec![
                ("scenarios", JsonValue::U64(scenarios)),
                ("commands", JsonValue::U64(commands)),
                ("wall_seeds", JsonValue::U64(wall_seeds)),
                ("n", JsonValue::U64(n as u64)),
                ("wall_n", JsonValue::U64(wall_n as u64)),
                ("segment_budget", JsonValue::U64(SEGMENT_BUDGET)),
                ("compact_every", JsonValue::U64(COMPACT_EVERY)),
                ("ratio_gate", JsonValue::F64(ratio_gate)),
            ]),
        ),
        ("kills", JsonValue::U64(total_kills as u64)),
        (
            "wipes",
            JsonValue::U64((snap_tally.wipes + thread_tally.wipes + wire_tally.wipes) as u64),
        ),
        ("snapshot_installs", JsonValue::U64(total_installs)),
        (
            "replay_bytes_per_restart",
            JsonValue::obj(vec![
                ("snapshot_mode", JsonValue::F64(snap_mean)),
                ("full_wal_mode", JsonValue::F64(full_mean)),
                ("ratio", JsonValue::F64(ratio)),
                ("gate", JsonValue::F64(ratio_gate)),
                ("pass", JsonValue::Bool(ratio_pass)),
            ]),
        ),
        (
            "wal_live_bytes",
            JsonValue::obj(vec![
                ("snapshot_mode_max", JsonValue::U64(snap_wal_max)),
                ("full_wal_mode_max", JsonValue::U64(full_wal_max)),
                ("bound", JsonValue::U64(WAL_BOUND)),
                ("pass", JsonValue::Bool(snap_wal_max <= WAL_BOUND)),
            ]),
        ),
        (
            "registry",
            JsonValue::obj(vec![
                ("recovery_replay_bytes", JsonValue::U64(replay_counter)),
                ("snapshot_install_total", JsonValue::U64(install_counter)),
            ]),
        ),
        ("violations", JsonValue::U64(total_violations as u64)),
        ("metrics", JsonValue::Raw(last_metrics)),
        ("table", json::table_json(&t)),
    ]);
    (t, summary, total_violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced netsim campaign (both modes, one seed, a small workload)
    /// must come out clean: every gate green, at least one snapshot
    /// install, and a replay advantage for the snapshot mode.
    #[test]
    fn e21_reduced_netsim_campaign_is_clean() {
        let commands = 40;
        let mut snap_tally = Tally::default();
        let stats = netsim_scenario(3, 1, commands, true, &mut snap_tally);
        assert_eq!(snap_tally.violations, 0, "snapshot-mode violations");
        assert!(stats.installs >= 1, "the wiped node must snapshot-install");
        assert!(stats.wal_max <= WAL_BOUND, "WAL bound: {}", stats.wal_max);
        assert!(
            stats.install_counter >= 1,
            "snapshot_install_total must flow through the registry"
        );
        let mut full_tally = Tally::default();
        let full = netsim_scenario(3, 1, commands, false, &mut full_tally);
        assert_eq!(full_tally.violations, 0, "full-WAL-mode violations");
        assert!(
            mean(&full.replay_bytes) > mean(&stats.replay_bytes),
            "full-WAL restarts must replay more: {:?} vs {:?}",
            full.replay_bytes,
            stats.replay_bytes
        );
    }

    /// Full-size campaign reproduction harness (debug aid — run explicitly
    /// with `--ignored` to chase a seed that failed in the CLI campaign).
    #[test]
    #[ignore]
    fn e21_full_size_netsim_seeds() {
        for seed in 0..3 {
            let mut tally = Tally::default();
            let stats = netsim_scenario(5, seed, 400, true, &mut tally);
            eprintln!(
                "seed {seed}: violations={} installs={} wal_max={}",
                tally.violations, stats.installs, stats.wal_max
            );
            assert_eq!(tally.violations, 0, "seed {seed}");
        }
    }
}
