//! Experiment E15: the communication-efficiency shape over real TCP
//! sockets.

use std::time::Duration as StdDuration;

use lls_primitives::ProcessId;
use omega::{CommEffOmega, OmegaParams};
use wirenet::{BackoffConfig, FaultConfig, WireCluster, WireConfig};

use crate::table::Table;

/// **E15** — run the election over real localhost TCP connections (framed
/// wire codec, per-peer sockets, injected loss at the socket layer) and
/// sample the sender set every `window_ms`: the series must collapse toward
/// a single sender, matching E2 (simulator) and E10 (thread mesh). The
/// final rows add socket-level totals the other substrates cannot measure:
/// real bytes on the wire, reconnects, and decode failures.
pub fn e15_wirenet(n: usize, loss: f64, windows: usize, window_ms: u64) -> Table {
    // A generous tick (η = 5 ms, suspicion timeout = 15 ms): on a loaded
    // machine, millisecond-scale scheduler jitter must stay well inside the
    // timeout or false accusations keep the sender set churning.
    let config = WireConfig {
        n,
        tick: StdDuration::from_micros(500),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: (loss > 0.0).then_some(FaultConfig {
            loss,
            min_delay: StdDuration::from_micros(100),
            max_delay: StdDuration::from_micros(900),
            seed: 9,
        }),
    };
    let cluster = WireCluster::spawn(config, |env| CommEffOmega::new(env, OmegaParams::default()));
    let mut t = Table::new(vec!["t(ms)", "msgs_in_window", "senders"]);
    let mut prev = vec![0u64; n];
    for step in 1..=windows {
        std::thread::sleep(StdDuration::from_millis(window_ms));
        let (sent, _) = cluster.traffic_snapshot();
        let window: Vec<u64> = sent.iter().zip(&prev).map(|(a, b)| a - b).collect();
        let senders = window.iter().filter(|c| **c > 0).count();
        t.row(vec![
            (step as u64 * window_ms).to_string(),
            window.iter().sum::<u64>().to_string(),
            senders.to_string(),
        ]);
        prev = sent;
    }
    let report = cluster.stop();
    // Final agreement across all processes, as in E10.
    let leader = report.final_output_of(ProcessId(0)).copied();
    let agreed = (0..n as u32)
        .map(ProcessId)
        .all(|p| report.final_output_of(p).copied() == leader);
    t.row(vec![
        "final".into(),
        format!(
            "leader={}",
            leader.map(|l| l.to_string()).unwrap_or("-".into())
        ),
        format!("agreement={agreed}"),
    ]);
    // Socket-level totals: what actually crossed the wire.
    let totals = (0..n as u32)
        .map(|p| report.node_links_total(ProcessId(p)))
        .fold(wirenet::LinkStats::default(), |acc, s| acc.merge(s));
    t.row(vec![
        "wire".into(),
        format!("bytes_sent={}", totals.bytes_sent),
        format!("frames={}", totals.msgs_sent),
    ]);
    t.row(vec![
        "faults".into(),
        format!(
            "injected_drops={} queue_drops={}",
            totals.injected_drops, totals.queue_drops
        ),
        format!(
            "reconnects={} decode_errors={}",
            totals.reconnects, totals.decode_errors
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_produces_series_and_agreement() {
        let t = e15_wirenet(3, 0.02, 3, 150);
        let s = t.render();
        assert!(s.contains("agreement=true"), "{s}");
        assert!(s.contains("bytes_sent="), "{s}");
    }
}
