//! Experiment E16: a deterministic, seed-driven chaos campaign of
//! crash–restart scenarios across all three substrates.
//!
//! Every scenario boots a cluster whose processes carry durable storage
//! (`StorageHandle`), then composes kill/restart cycles with the existing
//! adversity injectors (mesh loss, a transient partition, link delay). The
//! victim is biased toward the *current leader* — the most disruptive
//! choice. After every recovery the relevant spec checker runs:
//!
//! * **netsim / Ω** — [`omega::spec::stabilization`] over the output trace
//!   (all correct processes trust the same correct process);
//! * **netsim / consensus** — [`check_consensus_safety`] over every decision
//!   emitted so far (agreement, integrity, validity survive the restart);
//! * **threadnet, wirenet / Ω** — the wall-clock analogue of the Ω checker:
//!   unanimity of the latest outputs, held stable, within a deadline.
//!
//! All schedules derive from the scenario seed (splitmix64), so a campaign
//! is reproducible run-to-run on the simulator and statistically stable on
//! the wall-clock substrates.
//!
//! Every scenario's machines carry a [`lls_obs::RecordingProbe`] into a per-node
//! flight recorder; when a checker trips, the campaign prints the relevant
//! nodes' recorders to stderr — the post-mortem is produced at the moment
//! of the violation, not reconstructed afterwards.
//!
//! Every scenario also routes its probe stream through the online
//! [`Watchdog`]: counter monotonicity is enforced live throughout the chaos
//! (a regression anywhere is a violation), and on the deterministic
//! simulator each Ω scenario ends with an *armed* steady tail — after the
//! final re-stabilization the watchdog's flap/accusation-flatness invariants
//! must hold for a quiet window. Watchdog alarms count as checker
//! violations, so they gate the campaign (and CI) exactly like the post-hoc
//! checkers.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use std::sync::Arc;

use consensus::checker::{check_consensus_safety, DecisionRecord};
use consensus::{Consensus, ConsensusEvent, ConsensusParams};
use lls_obs::{NodeRecorders, Probe, Watchdog, WatchdogConfig};
use lls_primitives::{Env, Instant, ProcessId, StorageHandle};
use netsim::{SimBuilder, Simulator, SystemSParams, Topology};
use omega::spec::{stabilization, LeaderRecord};
use omega::{CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, FaultConfig, WireCluster, WireConfig};

use crate::table::Table;

/// splitmix64: all per-scenario schedule choices derive from this, so the
/// campaign is a pure function of its seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-configuration tally of a chaos campaign slice.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    scenarios: usize,
    kills: usize,
    checks: usize,
    violations: usize,
    successes: usize,
}

/// The post-mortem artifact: the flight-recorder contents of the nodes
/// implicated in a checker violation, oldest event first. E16 prints this
/// to stderr the moment a checker trips.
fn violation_dump(context: &str, recorders: &NodeRecorders, nodes: &[ProcessId]) -> String {
    let mut out = format!("CHECKER VIOLATION ({context}) — flight-recorder post-mortem:\n");
    for &p in nodes {
        out.push_str(&recorders.dump(p));
    }
    out
}

/// Counts the watchdog's alarms raised since `seen` into the tally as one
/// checked invariant, printing each alarm (its captured flight dump
/// included) to stderr. Returns the new alarm count.
fn gate_on_watchdog(context: &str, watchdog: &Watchdog, seen: usize, tally: &mut Tally) -> usize {
    let alarms = watchdog.alarms();
    tally.checks += 1;
    if alarms.len() > seen {
        tally.violations += 1;
        for alarm in &alarms[seen..] {
            eprintln!(
                "WATCHDOG ALARM ({context}) {:?} on {}: {}\n{}",
                alarm.kind, alarm.node, alarm.detail, alarm.dump
            );
        }
    }
    alarms.len()
}

fn omega_records<P: Probe>(sim: &Simulator<CommEffOmega<P>>) -> Vec<LeaderRecord> {
    sim.outputs()
        .iter()
        .map(|e| LeaderRecord {
            at: e.at,
            process: e.process,
            leader: e.output,
        })
        .collect()
}

fn consensus_decisions<P: Probe>(sim: &Simulator<Consensus<u64, P>>) -> Vec<DecisionRecord<u64>> {
    sim.outputs()
        .iter()
        .filter_map(|e| match &e.output {
            ConsensusEvent::Decided(v) => Some(DecisionRecord {
                at: e.at,
                process: e.process,
                value: *v,
            }),
            _ => None,
        })
        .collect()
}

fn alive_set<S: lls_primitives::Sm>(sim: &Simulator<S>, n: usize) -> Vec<ProcessId> {
    (0..n as u32)
        .map(ProcessId)
        .filter(|&p| sim.is_alive(p))
        .collect()
}

/// One seeded Ω scenario on the simulator: two kill/restart cycles against
/// the current leader, under seed-chosen mesh loss and (on odd seeds) a
/// transient partition that heals before the first kill window closes.
fn netsim_omega_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let source = ProcessId((mix(seed) % n as u64) as u32);
    let mesh_loss = if seed.is_multiple_of(2) { 0.05 } else { 0.2 };
    let base = Topology::system_s(
        n,
        source,
        SystemSParams {
            mesh_loss,
            gst: 200,
            ..SystemSParams::default()
        },
    );
    let mut builder = SimBuilder::new(n).seed(seed).topology(base.clone());
    if seed % 2 == 1 {
        // Compose with the partition injector: isolate the highest id for a
        // while, then heal by restoring the base topology.
        builder = builder
            .partition_at(Instant::from_ticks(2_000), &[ProcessId(n as u32 - 1)])
            .set_topology_at(Instant::from_ticks(5_000), base.clone());
    }
    let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let mut sim = builder.build_with(|env| {
        CommEffOmega::with_storage_and_probe(
            env,
            OmegaParams::default(),
            stores[env.id().as_usize()].clone(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
        .expect("fresh in-memory store")
    });
    tally.scenarios += 1;
    let mut now = 8_000u64;
    sim.run_until(Instant::from_ticks(now));
    let mut stabilized = true;
    for cycle in 0..2u64 {
        // The most disruptive victim: whoever p0 currently trusts (all
        // processes are alive at the top of each cycle).
        let victim = sim.node(ProcessId(0)).leader();
        sim.kill(victim);
        tally.kills += 1;
        now += 6_000 + mix(seed ^ cycle) % 2_000;
        sim.run_until(Instant::from_ticks(now));
        // Survivors must have stabilized on a live leader.
        tally.checks += 1;
        if stabilization(&omega_records(&sim), &alive_set(&sim, n)).is_none() {
            tally.violations += 1;
            stabilized = false;
            eprintln!(
                "{}",
                violation_dump(
                    "netsim/omega post-kill stabilization",
                    &recorders,
                    &[victim]
                )
            );
        }
        let env = Env::new(victim, n);
        let recovered = CommEffOmega::with_storage_and_probe(
            &env,
            OmegaParams::default(),
            stores[victim.as_usize()].clone(),
            watchdog.probe(recorders.probe_for(victim)),
        )
        .expect("recover from the victim's log");
        sim.restart(victim, recovered);
        now += 10_000;
        sim.run_until(Instant::from_ticks(now));
        // After the recovery, the full membership must re-stabilize.
        tally.checks += 1;
        if stabilization(&omega_records(&sim), &alive_set(&sim, n)).is_none() {
            tally.violations += 1;
            stabilized = false;
            eprintln!(
                "{}",
                violation_dump(
                    "netsim/omega post-restart stabilization",
                    &recorders,
                    &[victim]
                )
            );
        }
    }
    // Armed steady tail: after the last recovery the watchdog's full
    // steady-state invariants (no flaps, flat accusation counters) must
    // hold for a quiet window — and the always-on monotonicity invariant
    // must not have tripped at any point during the chaos. The simulator
    // is deterministic, so this gate is reproducible seed-for-seed.
    watchdog.arm();
    sim.run_until(Instant::from_ticks(now + 2_000));
    gate_on_watchdog("netsim/omega armed tail", &watchdog, 0, tally);
    watchdog.disarm();
    if stabilized {
        tally.successes += 1;
    }
}

/// One seeded consensus scenario on the simulator: kill an acceptor (or the
/// coordinator) *mid-protocol*, check safety over everything decided so
/// far, restart it from its WAL, and repeat against a second victim. The
/// scenario succeeds when safety never broke and all `n` processes decided.
fn netsim_consensus_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let source = ProcessId((seed % n as u64) as u32);
    let mesh_loss = if seed.is_multiple_of(2) { 0.1 } else { 0.3 };
    let topo = Topology::system_s(
        n,
        source,
        SystemSParams {
            mesh_loss,
            ..SystemSParams::default()
        },
    );
    let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let params = ConsensusParams::default();
    let proposals: Vec<u64> = (0..n as u64).map(|p| 100 + p).collect();
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .build_with(|env| {
            Consensus::with_storage_and_probe(
                env,
                params,
                Some(100 + env.id().0 as u64),
                stores[env.id().as_usize()].clone(),
                watchdog.probe(recorders.probe_for(env.id())),
            )
            .expect("fresh in-memory store")
        });
    tally.scenarios += 1;
    // Crash inside the protocol's critical window, at a seed-chosen point.
    let mut now = 80 + mix(seed) % 240;
    sim.run_until(Instant::from_ticks(now));
    let mut safe = true;
    for cycle in 0..2u64 {
        let victim = if cycle == 0 {
            sim.node(ProcessId(0)).omega().leader()
        } else {
            // Second cycle: a different process, so both leader and
            // follower recovery paths are exercised.
            ProcessId((mix(seed ^ 0xC0FFEE) % n as u64) as u32)
        };
        sim.kill(victim);
        tally.kills += 1;
        now += 4_000;
        sim.run_until(Instant::from_ticks(now));
        tally.checks += 1;
        if check_consensus_safety(&consensus_decisions(&sim), &proposals).is_err() {
            tally.violations += 1;
            safe = false;
            eprintln!(
                "{}",
                violation_dump("netsim/consensus post-kill safety", &recorders, &[victim])
            );
        }
        let env = Env::new(victim, n);
        let recovered = Consensus::with_storage_and_probe(
            &env,
            params,
            Some(100 + victim.0 as u64),
            stores[victim.as_usize()].clone(),
            watchdog.probe(recorders.probe_for(victim)),
        )
        .expect("recover from the victim's log");
        sim.restart(victim, recovered);
        now += 10_000;
        sim.run_until(Instant::from_ticks(now));
        tally.checks += 1;
        if check_consensus_safety(&consensus_decisions(&sim), &proposals).is_err() {
            tally.violations += 1;
            safe = false;
            eprintln!(
                "{}",
                violation_dump(
                    "netsim/consensus post-restart safety",
                    &recorders,
                    &[victim]
                )
            );
        }
    }
    // The always-on monotonicity invariant must have held throughout.
    gate_on_watchdog("netsim/consensus monotonicity", &watchdog, 0, tally);
    // Liveness across the chaos: every process (restarted ones included)
    // decided at some point.
    let ds = consensus_decisions(&sim);
    let all_decided = (0..n as u32).all(|p| ds.iter().any(|d| d.process == ProcessId(p)));
    if safe && all_decided {
        tally.successes += 1;
    }
}

/// Polls `latest` until the members' outputs are unanimous and stay so for
/// 150 ms, or `timeout` elapses.
pub(crate) fn await_unanimity(
    latest: impl Fn() -> Vec<Option<ProcessId>>,
    members: &[ProcessId],
    timeout: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let outs = latest();
        let views: Vec<Option<ProcessId>> = members.iter().map(|p| outs[p.as_usize()]).collect();
        let unanimous = views
            .first()
            .and_then(|o| *o)
            .filter(|first| views.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= StdDuration::from_millis(150) {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// One Ω kill/restart cycle on the thread mesh (wall clock, injected loss
/// and delay).
fn threadnet_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = NetConfig {
        n,
        loss: 0.02,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        CommEffOmega::with_storage_and_probe(
            env,
            OmegaParams::default(),
            stores[env.id().as_usize()].clone(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
        .expect("fresh in-memory store")
    });
    tally.scenarios += 1;
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let mut ok = true;

    tally.checks += 1;
    let leader = await_unanimity(|| cluster.latest_outputs(), &all, timeout);
    if leader.is_none() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("threadnet initial unanimity", &recorders, &all)
        );
    }
    let victim = leader.unwrap_or(ProcessId(0));
    cluster.kill(victim);
    tally.kills += 1;
    let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim).collect();
    tally.checks += 1;
    if await_unanimity(|| cluster.latest_outputs(), &survivors, timeout).is_none() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("threadnet post-kill unanimity", &recorders, &[victim])
        );
    }
    let env = Env::new(victim, n);
    let recovered = CommEffOmega::with_storage_and_probe(
        &env,
        OmegaParams::default(),
        stores[victim.as_usize()].clone(),
        watchdog.probe(recorders.probe_for(victim)),
    )
    .expect("recover from the victim's log");
    cluster.restart(victim, recovered);
    tally.checks += 1;
    if await_unanimity(|| cluster.latest_outputs(), &all, timeout).is_none() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("threadnet post-restart unanimity", &recorders, &[victim])
        );
    }
    cluster.stop();
    // Wall-clock runs keep the watchdog disarmed (steady windows are not
    // deterministic here), but the always-on counter-monotonicity invariant
    // gates the scenario.
    gate_on_watchdog("threadnet monotonicity", &watchdog, 0, tally);
    if ok {
        tally.successes += 1;
    }
}

/// One Ω kill/restart cycle over real TCP: the victim's listener and
/// sockets are torn down, then re-bound, so the survivors' reconnect path
/// is exercised from the accepting side.
fn wirenet_scenario(n: usize, seed: u64, tally: &mut Tally) {
    let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: Some(FaultConfig {
            loss: 0.02,
            min_delay: StdDuration::from_micros(100),
            max_delay: StdDuration::from_micros(900),
            seed,
        }),
    };
    let mut cluster = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        CommEffOmega::with_storage_and_probe(
            env,
            OmegaParams::default(),
            stores[env.id().as_usize()].clone(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
        .expect("fresh in-memory store")
    })
    .expect("bind 127.0.0.1 listeners");
    tally.scenarios += 1;
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let mut ok = true;

    tally.checks += 1;
    let leader = await_unanimity(|| cluster.latest_outputs(), &all, timeout);
    if leader.is_none() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("wirenet initial unanimity", &recorders, &all)
        );
    }
    let victim = leader.unwrap_or(ProcessId(0));
    cluster.kill(victim);
    tally.kills += 1;
    let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim).collect();
    tally.checks += 1;
    if await_unanimity(|| cluster.latest_outputs(), &survivors, timeout).is_none() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("wirenet post-kill unanimity", &recorders, &[victim])
        );
    }
    let env = Env::new(victim, n);
    let recovered = CommEffOmega::with_storage_and_probe(
        &env,
        OmegaParams::default(),
        stores[victim.as_usize()].clone(),
        watchdog.probe(recorders.probe_for(victim)),
    )
    .expect("recover from the victim's log");
    if cluster.restart(victim, recovered).is_err() {
        tally.violations += 1;
        ok = false;
        eprintln!(
            "{}",
            violation_dump("wirenet restart rebind", &recorders, &[victim])
        );
    } else {
        tally.checks += 1;
        if await_unanimity(|| cluster.latest_outputs(), &all, timeout).is_none() {
            tally.violations += 1;
            ok = false;
            eprintln!(
                "{}",
                violation_dump("wirenet post-restart unanimity", &recorders, &[victim])
            );
        }
    }
    cluster.stop();
    gate_on_watchdog("wirenet monotonicity", &watchdog, 0, tally);
    if ok {
        tally.successes += 1;
    }
}

fn tally_row(t: &mut Table, substrate: &str, n: String, tally: Tally, outcome_label: &str) {
    t.row(vec![
        substrate.to_owned(),
        n,
        tally.scenarios.to_string(),
        tally.kills.to_string(),
        tally.checks.to_string(),
        tally.violations.to_string(),
        format!("{} {}/{}", outcome_label, tally.successes, tally.scenarios),
    ]);
}

/// **E16** — the chaos campaign. `seeds_per_config` seeded scenarios per
/// (substrate, n) cell on the simulator, `wall_seeds` per wall-clock
/// substrate. The claim under test: durable state plus the recovering
/// rejoin mode keep both theorems' checkers green across every
/// crash–restart composition — zero violations. Returns the table and the
/// campaign's total violation count (watchdog alarms included), so the CLI
/// can gate its exit status on it.
pub fn e16_chaos(seeds_per_config: u64, sizes: &[usize], wall_seeds: u64) -> (Table, usize) {
    let mut t = Table::new(vec![
        "substrate",
        "n",
        "scenarios",
        "kills",
        "checks",
        "violations",
        "outcome",
    ]);
    let mut total = Tally::default();
    let mut add = |t: &mut Table, substrate: &str, n: String, tally: Tally, label: &str| {
        total.scenarios += tally.scenarios;
        total.kills += tally.kills;
        total.checks += tally.checks;
        total.violations += tally.violations;
        total.successes += tally.successes;
        tally_row(t, substrate, n, tally, label);
    };
    for &n in sizes {
        let mut tally = Tally::default();
        for seed in 0..seeds_per_config {
            netsim_omega_scenario(n, seed, &mut tally);
        }
        add(&mut t, "netsim/omega", n.to_string(), tally, "stabilized");
    }
    for &n in sizes {
        let mut tally = Tally::default();
        for seed in 0..seeds_per_config {
            netsim_consensus_scenario(n, seed, &mut tally);
        }
        add(
            &mut t,
            "netsim/consensus",
            n.to_string(),
            tally,
            "safe+decided",
        );
    }
    let wall_n = sizes.first().copied().unwrap_or(3);
    let mut tally = Tally::default();
    for seed in 0..wall_seeds {
        threadnet_scenario(wall_n, seed, &mut tally);
    }
    add(
        &mut t,
        "threadnet/omega",
        wall_n.to_string(),
        tally,
        "agreed",
    );
    let mut tally = Tally::default();
    for seed in 0..wall_seeds {
        wirenet_scenario(wall_n, seed, &mut tally);
    }
    add(&mut t, "wirenet/omega", wall_n.to_string(), tally, "agreed");
    tally_row(&mut t, "TOTAL", "-".into(), total, "ok");
    (t, total.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance path for the flight recorder: force the same
    /// violation E16's Ω checker would report — kill the leader and run the
    /// stabilization check immediately, long before the survivors can have
    /// re-elected — and check the post-mortem dump carries the offending
    /// node's recent probe events.
    #[test]
    fn induced_violation_dumps_the_victims_probe_events() {
        let n = 3;
        let recorders = NodeRecorders::new(n, 64);
        // Source at p1: every node starts trusting p0, so stabilizing on the
        // ♦-source forces at least one LeaderChange into every ring.
        let topo = Topology::system_s(
            n,
            ProcessId(1),
            SystemSParams {
                mesh_loss: 0.05,
                gst: 200,
                ..SystemSParams::default()
            },
        );
        let mut sim = SimBuilder::new(n).seed(7).topology(topo).build_with(|env| {
            CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
        });
        sim.run_until(Instant::from_ticks(8_000));
        let victim = sim.node(ProcessId(0)).leader();
        sim.kill(victim);
        sim.run_until(Instant::from_ticks(8_010));
        assert!(
            stabilization(&omega_records(&sim), &alive_set(&sim, n)).is_none(),
            "ten ticks after the leader died the survivors cannot have re-stabilized"
        );
        let dump = violation_dump("induced", &recorders, &[victim]);
        assert!(dump.contains("CHECKER VIOLATION (induced)"));
        assert!(dump.contains(&format!("--- node {victim} ---")));
        assert!(
            dump.contains("LEADER"),
            "the victim's ring should retain its leader-change events:\n{dump}"
        );
        assert!(dump.contains("events retained of"));
    }

    #[test]
    fn e16_reduced_campaign_has_no_violations() {
        let (t, violations) = e16_chaos(1, &[3], 1);
        assert_eq!(violations, 0);
        let s = t.render();
        for line in s.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[5], "0", "checker violation reported:\n{s}");
        }
    }
}
