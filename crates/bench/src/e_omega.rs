//! Experiments E1–E5, E8, E9: the leader-election claims.

use lls_primitives::{Duration, Env, Instant, ProcessId, Sm};
use netsim::{FaultPlan, SimBuilder, Simulator, SystemSParams, Topology};
use omega::baseline::{AllToAllOmega, BroadcastSourceOmega};
use omega::spec::{stabilization, tail_cut, LeaderRecord, Stabilization};
use omega::{classify_msg, CommEffOmega, OmegaParams, TimeoutPolicy};

use crate::percentile;
use crate::table::Table;

/// Runs an Ω state machine and returns the simulator at `horizon`.
pub fn run_omega<S, F>(
    n: usize,
    seed: u64,
    topology: Topology,
    faults: FaultPlan,
    horizon: u64,
    make: F,
) -> Simulator<S>
where
    S: Sm<Output = ProcessId, Request = ()>,
    F: FnMut(&Env) -> S,
{
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topology)
        .faults(faults)
        .build_with(make);
    sim.run_until(Instant::from_ticks(horizon));
    sim
}

/// Leader-change trace of a finished run.
pub fn leader_trace<S: Sm<Output = ProcessId>>(sim: &Simulator<S>) -> Vec<LeaderRecord> {
    sim.outputs()
        .iter()
        .map(|e| LeaderRecord {
            at: e.at,
            process: e.process,
            leader: e.output,
        })
        .collect()
}

fn stab_of<S: Sm<Output = ProcessId>>(
    sim: &Simulator<S>,
    correct: &[ProcessId],
) -> Option<Stabilization> {
    stabilization(&leader_trace(sim), correct).filter(|s| s.at <= tail_cut(sim.now(), 20))
}

/// **E1** — Ω convergence in system S across sizes and seeds.
pub fn e1_convergence(sizes: &[usize], seeds: u64, horizon: u64) -> Table {
    let mut t = Table::new(vec![
        "n",
        "runs",
        "converged",
        "stab_t(p50)",
        "stab_t(p95)",
        "quiesce_t(p50)",
    ]);
    for &n in sizes {
        let mut stabs = Vec::new();
        let mut quiets = Vec::new();
        let mut ok = 0usize;
        for seed in 0..seeds {
            let source = ProcessId((seed % n as u64) as u32);
            let topo = Topology::system_s(n, source, SystemSParams::default());
            let sim = run_omega(n, seed, topo, FaultPlan::new(n), horizon, |env| {
                CommEffOmega::new(env, OmegaParams::default())
            });
            let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
            if let Some(s) = stab_of(&sim, &correct) {
                ok += 1;
                stabs.push(s.at.ticks());
                if let Some(q) = sim.stats().quiescence_time(1) {
                    quiets.push(q.ticks());
                }
            }
        }
        stabs.sort_unstable();
        quiets.sort_unstable();
        t.row(vec![
            n.to_string(),
            seeds.to_string(),
            format!("{}/{}", ok, seeds),
            if stabs.is_empty() {
                "-".into()
            } else {
                percentile(&stabs, 50.0).to_string()
            },
            if stabs.is_empty() {
                "-".into()
            } else {
                percentile(&stabs, 95.0).to_string()
            },
            if quiets.is_empty() {
                "-".into()
            } else {
                percentile(&quiets, 50.0).to_string()
            },
        ]);
    }
    t
}

/// **E2** — the sender-set series over time: communication-efficient
/// algorithm vs the gossiping baseline, same system.
pub fn e2_sender_series(n: usize, seed: u64, horizon: u64, window: u64) -> Table {
    let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
    let mut eff = SimBuilder::new(n)
        .seed(seed)
        .topology(topo.clone())
        .stats_window(Duration::from_ticks(window))
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    eff.run_until(Instant::from_ticks(horizon));
    let mut base = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .stats_window(Duration::from_ticks(window))
        .build_with(|env| BroadcastSourceOmega::new(env, OmegaParams::default()));
    base.run_until(Instant::from_ticks(horizon));

    let mut t = Table::new(vec!["t", "senders(comm-eff)", "senders(broadcast)"]);
    let we = eff.stats().windows();
    let wb = base.stats().windows();
    for (i, (a, b)) in we.iter().zip(wb).enumerate() {
        if (i as u64 * window) > horizon {
            break;
        }
        t.row(vec![
            (i as u64 * window).to_string(),
            a.sender_count.to_string(),
            b.sender_count.to_string(),
        ]);
    }
    t
}

/// **E3** — steady-state message complexity per heartbeat period η.
pub fn e3_message_complexity(sizes: &[usize], horizon: u64) -> Table {
    let eta = OmegaParams::default().eta.ticks();
    let mut t = Table::new(vec![
        "n",
        "comm-eff msgs/η",
        "theory n-1",
        "broadcast msgs/η",
        "all-to-all msgs/η",
        "theory n(n-1)",
        "reduction",
    ]);
    for &n in sizes {
        let tail_start = horizon / 2;
        let periods = (horizon - tail_start) / eta;
        let tail_rate = |stats: &netsim::Stats| -> f64 {
            let cut = Instant::from_ticks(tail_start);
            let total: u64 = stats
                .windows()
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u64 * stats.window_len().ticks()) >= cut.ticks())
                .map(|(_, w)| w.messages)
                .sum();
            total as f64 / periods as f64
        };

        let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
        let eff = run_omega(n, 7, topo.clone(), FaultPlan::new(n), horizon, |env| {
            CommEffOmega::new(env, OmegaParams::default())
        });
        let base_b = run_omega(n, 7, topo, FaultPlan::new(n), horizon, |env| {
            BroadcastSourceOmega::new(env, OmegaParams::default())
        });
        let base_a = run_omega(
            n,
            7,
            Topology::all_timely(n, Duration::from_ticks(2)),
            FaultPlan::new(n),
            horizon,
            |env| AllToAllOmega::new(env, OmegaParams::default()),
        );
        let (re, rb, ra) = (
            tail_rate(eff.stats()),
            tail_rate(base_b.stats()),
            tail_rate(base_a.stats()),
        );
        t.row(vec![
            n.to_string(),
            format!("{re:.1}"),
            (n - 1).to_string(),
            format!("{rb:.1}"),
            format!("{ra:.1}"),
            (n * (n - 1)).to_string(),
            format!("{:.1}x", rb / re),
        ]);
    }
    t
}

/// **E4** — robustness grid: stabilization vs mesh loss × GST.
pub fn e4_robustness(n: usize, seeds: u64, horizon: u64) -> Table {
    let mut t = Table::new(vec![
        "mesh_loss",
        "gst",
        "converged",
        "stab_t(p50)",
        "leader_changes(mean)",
        "max_counter",
    ]);
    for &loss in &[0.0, 0.2, 0.5, 0.8] {
        for &gst in &[0u64, 500, 2_000] {
            let mut stabs = Vec::new();
            let mut changes = 0usize;
            let mut max_counter = 0u64;
            let mut ok = 0usize;
            for seed in 0..seeds {
                let topo = Topology::system_s(
                    n,
                    ProcessId(2),
                    SystemSParams {
                        gst,
                        mesh_loss: loss,
                        ..SystemSParams::default()
                    },
                );
                let sim = run_omega(n, seed, topo, FaultPlan::new(n), horizon, |env| {
                    CommEffOmega::new(env, OmegaParams::default())
                });
                let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
                if let Some(s) = stab_of(&sim, &correct) {
                    ok += 1;
                    stabs.push(s.at.ticks());
                }
                changes += leader_trace(&sim).len().saturating_sub(n);
                for p in 0..n as u32 {
                    max_counter = max_counter.max(sim.node(ProcessId(p)).own_counter());
                }
            }
            stabs.sort_unstable();
            t.row(vec![
                format!("{loss:.1}"),
                gst.to_string(),
                format!("{ok}/{seeds}"),
                if stabs.is_empty() {
                    "-".into()
                } else {
                    percentile(&stabs, 50.0).to_string()
                },
                format!("{:.1}", changes as f64 / (seeds as f64 * n as f64)),
                max_counter.to_string(),
            ]);
        }
    }
    t
}

/// **E5** — counter boundedness over a long run.
pub fn e5_counter_stability(n: usize, seed: u64, horizon: u64) -> Table {
    let topo = Topology::system_s(n, ProcessId(2), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .classify(classify_msg)
        .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
    sim.run_until(Instant::from_ticks(horizon));
    let mut t = Table::new(vec![
        "process",
        "final_counter",
        "accusations_sent",
        "last_send_t",
        "timeout_on_leader",
    ]);
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = stabilization(&leader_trace(&sim), &correct)
        .map(|s| s.leader)
        .unwrap_or(ProcessId(0));
    for p in (0..n as u32).map(ProcessId) {
        let node = sim.node(p);
        t.row(vec![
            p.to_string(),
            node.own_counter().to_string(),
            node.accusations_sent().to_string(),
            sim.stats()
                .last_send(p)
                .map(|i| i.ticks().to_string())
                .unwrap_or_else(|| "-".into()),
            node.timeout_of(leader).ticks().to_string(),
        ]);
    }
    t
}

/// **E8** — synchrony crossover: how many ♦-timely processes does each
/// algorithm need? `k` = number of processes whose outgoing links are
/// ♦-timely; everything else is a fair-lossy mesh.
pub fn e8_crossover(n: usize, seeds: u64, horizon: u64) -> Table {
    let mut t = Table::new(vec![
        "timely_sources k",
        "timely links",
        "comm-eff converged",
        "all-to-all converged",
        "tail senders (eff)",
        "tail senders (a2a)",
    ]);
    for k in (0..=n).rev() {
        let mut eff_ok = 0usize;
        let mut a2a_ok = 0usize;
        let mut eff_senders = 0usize;
        let mut a2a_senders = 0usize;
        for seed in 0..seeds {
            let sources: Vec<ProcessId> = (0..k as u32).map(ProcessId).collect();
            let params = SystemSParams {
                mesh_loss: 0.4,
                gst: 500,
                ..SystemSParams::default()
            };
            let topo = Topology::system_s_multi(n, &sources, params);
            let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
            let eff = run_omega(n, seed, topo.clone(), FaultPlan::new(n), horizon, |env| {
                CommEffOmega::new(env, OmegaParams::default())
            });
            if stab_of(&eff, &correct).is_some() {
                eff_ok += 1;
            }
            eff_senders += eff.stats().senders_since(tail_cut(eff.now(), 10)).len();
            let a2a = run_omega(n, seed, topo, FaultPlan::new(n), horizon, |env| {
                AllToAllOmega::new(env, OmegaParams::default())
            });
            if stab_of(&a2a, &correct).is_some() {
                a2a_ok += 1;
            }
            a2a_senders += a2a.stats().senders_since(tail_cut(a2a.now(), 10)).len();
        }
        let links = k * (n - 1);
        t.row(vec![
            k.to_string(),
            format!("{links}/{}", n * (n - 1)),
            format!("{eff_ok}/{seeds}"),
            format!("{a2a_ok}/{seeds}"),
            format!("{:.1}", eff_senders as f64 / seeds as f64),
            format!("{:.1}", a2a_senders as f64 / seeds as f64),
        ]);
    }
    t
}

/// **E9** — ablation over the two implementation degrees of freedom.
pub fn e9_ablation(n: usize, seeds: u64, horizon: u64) -> Table {
    let variants: Vec<(&str, OmegaParams)> = vec![
        ("dedup+additive (paper)", OmegaParams::default()),
        (
            "dedup+multiplicative",
            OmegaParams {
                timeout_policy: TimeoutPolicy::Multiplicative { num: 3, den: 2 },
                ..OmegaParams::default()
            },
        ),
        (
            "no-dedup+additive",
            OmegaParams {
                dedup_accusations: false,
                ..OmegaParams::default()
            },
        ),
        (
            "dedup+frozen (broken)",
            OmegaParams {
                timeout_policy: TimeoutPolicy::Frozen,
                ..OmegaParams::default()
            },
        ),
    ];
    let mut t = Table::new(vec![
        "variant",
        "converged",
        "stab_t(p50)",
        "max_counter",
        "accusations(total)",
    ]);
    for (name, params) in variants {
        let mut ok = 0usize;
        let mut stabs = Vec::new();
        let mut max_counter = 0u64;
        let mut accusations = 0u64;
        for seed in 0..seeds {
            let topo = Topology::system_s(
                n,
                ProcessId(1),
                SystemSParams {
                    mesh_loss: 0.5,
                    ..SystemSParams::default()
                },
            );
            let sim = run_omega(n, seed, topo, FaultPlan::new(n), horizon, |env| {
                CommEffOmega::new(env, params)
            });
            let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
            if let Some(s) = stab_of(&sim, &correct) {
                ok += 1;
                stabs.push(s.at.ticks());
            }
            for p in 0..n as u32 {
                let node = sim.node(ProcessId(p));
                max_counter = max_counter.max(node.own_counter());
                accusations += node.accusations_sent();
            }
        }
        stabs.sort_unstable();
        t.row(vec![
            name.to_owned(),
            format!("{ok}/{seeds}"),
            if stabs.is_empty() {
                "-".into()
            } else {
                percentile(&stabs, 50.0).to_string()
            },
            max_counter.to_string(),
            accusations.to_string(),
        ]);
    }
    t
}

/// **E11** — message relaying (path synchrony): on a hub-and-spokes star
/// where spoke↔spoke links are dead, direct Ω cannot converge but relayed Ω
/// can; the relayed stack stays communication-efficient in the *origination*
/// sense only.
pub fn e11_relay(n: usize, seeds: u64, horizon: u64) -> Table {
    use omega::Relay;
    let hub = ProcessId((n as u32) / 2);
    let star = || {
        let mut topo = Topology::all_timely(n, Duration::from_ticks(2));
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (pa, pb) = (ProcessId(a), ProcessId(b));
                if a != b && pa != hub && pb != hub {
                    topo.set_link(pa, pb, netsim::LinkModel::Dead);
                }
            }
        }
        topo
    };
    let mut t = Table::new(vec![
        "variant",
        "converged",
        "late originators (mean)",
        "late forwarders (mean)",
    ]);
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    // Relayed.
    let mut ok = 0usize;
    let mut originators = 0usize;
    let mut forwarders = 0usize;
    for seed in 0..seeds {
        let sim = run_omega(n, seed, star(), FaultPlan::new(n), horizon, |env| {
            Relay::new(env, CommEffOmega::new(env, OmegaParams::default()))
        });
        if stab_of(&sim, &correct).is_some() {
            ok += 1;
        }
        // Approximate the late sets from total counters over the last half
        // by re-measuring via a second run would be wasteful; report the
        // full-run sets instead (origination is front-loaded, forwarding is
        // perpetual, so the contrast is still visible).
        originators += (0..n as u32)
            .filter(|&p| sim.node(ProcessId(p)).origination_count() > 0)
            .count();
        forwarders += (0..n as u32)
            .filter(|&p| sim.node(ProcessId(p)).forward_count() > 0)
            .count();
    }
    t.row(vec![
        "relayed comm-eff Ω".to_owned(),
        format!("{ok}/{seeds}"),
        format!("{:.1}", originators as f64 / seeds as f64),
        format!("{:.1}", forwarders as f64 / seeds as f64),
    ]);
    // Direct.
    let mut ok = 0usize;
    for seed in 0..seeds {
        let sim = run_omega(n, seed, star(), FaultPlan::new(n), horizon, |env| {
            CommEffOmega::new(env, OmegaParams::default())
        });
        if stab_of(&sim, &correct).is_some() {
            ok += 1;
        }
    }
    t.row(vec![
        "direct comm-eff Ω".to_owned(),
        format!("{ok}/{seeds}"),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    t
}

/// **E12** — the deterministic blink adversary versus timeout policies:
/// every process's outgoing links repeat 40-on/60-off; adaptive timeouts
/// eventually span the off phase, the frozen policy churns forever.
pub fn e12_blink(n: usize, seeds: u64, horizon: u64) -> Table {
    let variants: Vec<(&str, OmegaParams)> = vec![
        ("additive", OmegaParams::default()),
        (
            "multiplicative x2",
            OmegaParams {
                timeout_policy: TimeoutPolicy::Multiplicative { num: 2, den: 1 },
                ..OmegaParams::default()
            },
        ),
        (
            "frozen (broken)",
            OmegaParams {
                timeout_policy: TimeoutPolicy::Frozen,
                ..OmegaParams::default()
            },
        ),
    ];
    let blink_topo = || {
        let mut topo = Topology::all_timely(n, Duration::from_ticks(2));
        for p in 0..n as u32 {
            topo.set_outgoing(ProcessId(p), netsim::LinkModel::blink(40, 60, 2));
        }
        topo
    };
    let mut t = Table::new(vec!["policy", "converged", "leader_changes_in_tail (mean)"]);
    let correct: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    for (name, params) in variants {
        let mut ok = 0usize;
        let mut late_changes = 0usize;
        for seed in 0..seeds {
            let sim = run_omega(n, seed, blink_topo(), FaultPlan::new(n), horizon, |env| {
                CommEffOmega::new(env, params)
            });
            if stab_of(&sim, &correct).is_some() {
                ok += 1;
            }
            let cut = tail_cut(sim.now(), 20);
            late_changes += leader_trace(&sim).iter().filter(|r| r.at >= cut).count();
        }
        t.row(vec![
            name.to_owned(),
            format!("{ok}/{seeds}"),
            format!("{:.1}", late_changes as f64 / seeds as f64),
        ]);
    }
    t
}

/// **E13** — failure-detector quality of service: crash the established
/// leader and measure how long the survivors keep trusting it (detection
/// time) and how noisy the run was (wrongful demotions), sweeping the
/// initial timeout. The classic QoS trade-off: small timeouts detect fast
/// but make more mistakes.
pub fn e13_qos(n: usize, seeds: u64, horizon: u64) -> Table {
    use omega::qos::qos;
    let mut t = Table::new(vec![
        "initial_timeout",
        "detection_t(p50)",
        "detection_t(p95)",
        "wrongful_demotions(mean)",
        "changes(mean)",
    ]);
    for &timeout in &[20u64, 30, 60, 120, 240] {
        let params = OmegaParams {
            initial_timeout: Duration::from_ticks(timeout),
            ..OmegaParams::default()
        };
        let mut detections = Vec::new();
        let mut demotions = 0usize;
        let mut changes = 0usize;
        for seed in 0..seeds {
            // Two sources so the system stays admissible after the crash.
            let topo = Topology::system_s_multi(
                n,
                &[ProcessId(0), ProcessId(1)],
                SystemSParams {
                    gst: 200,
                    ..SystemSParams::default()
                },
            );
            // Phase 1: stabilize; find the leader; crash it mid-run.
            let mut sim = SimBuilder::new(n)
                .seed(seed)
                .topology(topo)
                .build_with(|env| CommEffOmega::new(env, params));
            sim.run_until(Instant::from_ticks(horizon / 2));
            let victim = sim.node(ProcessId(2)).leader();
            let crash_at = sim.now();
            sim.crash_now(victim);
            sim.run_until(Instant::from_ticks(horizon));
            let trace = leader_trace(&sim);
            let correct: Vec<ProcessId> = (0..n as u32)
                .map(ProcessId)
                .filter(|&p| p != victim)
                .collect();
            let report = qos(n, &trace, &correct, &[(victim, crash_at)]);
            detections.push(report.detections[0].detection.ticks());
            demotions += report.wrongful_demotions;
            changes += report.total_changes;
        }
        detections.sort_unstable();
        t.row(vec![
            timeout.to_string(),
            percentile(&detections, 50.0).to_string(),
            percentile(&detections, 95.0).to_string(),
            format!("{:.1}", demotions as f64 / seeds as f64),
            format!("{:.1}", changes as f64 / seeds as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_small_instance_converges() {
        // Horizon 60k, not 20k: stabilization time is finite but heavy-tailed
        // (see the metastability note in core/tests/properties.rs), and one of
        // the two checked seeds stabilizes around tick 25k. The run itself is
        // deterministic per seed; only the finite-horizon cut-off is loosened.
        let t = e1_convergence(&[3], 2, 60_000);
        let s = t.render();
        assert!(s.contains("2/2"), "small E1 must fully converge:\n{s}");
    }

    #[test]
    fn e3_shows_linear_vs_quadratic_gap() {
        let t = e3_message_complexity(&[5], 20_000);
        let s = t.render();
        // The reduction column must be present and > 1.
        assert!(s.contains('x'), "{s}");
    }

    #[test]
    fn e2_series_has_rows() {
        let t = e2_sender_series(4, 1, 5_000, 500);
        assert!(t.len() >= 8, "expected ~10 windows, got {}", t.len());
    }
}
