//! Experiment E17: election-stabilization QoS and a live check of the
//! steady-state communication-efficiency claim, measured through the
//! observability layer on all three substrates.
//!
//! Unlike E2/E3/E15 — which infer the sender-set collapse from substrate
//! traffic counters after the fact — E17 drives the measurement through the
//! new probe/metrics pipeline end to end:
//!
//! * **stabilization QoS** is the time of the *last* `LeaderChange` probe
//!   event any node emitted (taken from the per-node flight recorders);
//! * **steady state** is a suffix window starting well after stabilization;
//!   in it the sender set must be exactly `{leader}` and — on wirenet,
//!   where per-link counters exist — exactly `n − 1` directed links may
//!   carry traffic (the leader's heartbeat fan-out);
//! * **accusation flatness** is checked on the unified registry: the
//!   `probe_accusation_sent_total` / `probe_accusation_absorbed_total`
//!   counters must not move during the window.
//!
//! Each run also exports the substrate's own accounting into the same
//! registry, and the whole result — per-substrate verdicts plus the full
//! metrics snapshots — lands in `BENCH_E17.json`.

use std::time::Duration as StdDuration;

use lls_obs::{NodeRecorders, ProbeEvent};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::{classify_msg, CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::table::Table;

/// How long a sum of the two accusation counters is at some instant.
fn accusation_total(recorders: &NodeRecorders) -> u64 {
    let registry = recorders.registry();
    registry.counter_value("probe_accusation_sent_total")
        + registry.counter_value("probe_accusation_absorbed_total")
}

/// The time (in driver ticks) of the last `LeaderChange` any node emitted —
/// the stabilization instant as the probes saw it. `0` means no node ever
/// switched away from its initial candidate.
fn last_leader_change(recorders: &NodeRecorders) -> u64 {
    (0..recorders.n() as u32)
        .map(ProcessId)
        .flat_map(|p| recorders.events_of(p))
        .filter_map(|r| match r.event {
            ProbeEvent::LeaderChange { at, .. } => Some(at.ticks()),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// One substrate's measured row.
struct QosRow {
    substrate: &'static str,
    n: usize,
    /// Stabilization instant, with unit ("ticks" on the simulator, "ms" on
    /// the wall-clock substrates whose driver tick is 1 ms).
    stabilization: String,
    stab_value: u64,
    /// The steady-window sender set, rendered.
    senders: String,
    sender_count: usize,
    /// Active directed links in the steady window (only wirenet measures
    /// this directly; the others report the broadcast-implied figure).
    links: String,
    link_count: Option<u64>,
    accusation_delta: u64,
    pass: bool,
    /// The registry snapshot (probe counters + substrate accounting).
    metrics: String,
}

fn render_senders(senders: &[ProcessId]) -> String {
    if senders.is_empty() {
        "{}".to_owned()
    } else {
        let names: Vec<String> = senders.iter().map(|p| p.to_string()).collect();
        format!("{{{}}}", names.join(","))
    }
}

/// Simulator run: deterministic ticks, sender set from `Stats`.
fn netsim_qos(n: usize, horizon: u64, seed: u64) -> QosRow {
    let recorders = NodeRecorders::new(n, 1024);
    // Default system-S params, as in E2: the lossy mesh provokes the
    // accusations that raise every non-source rank, so the election
    // resolves quickly and the second half of the run is genuinely steady.
    let topo = Topology::system_s(
        n,
        ProcessId((seed % n as u64) as u32),
        SystemSParams::default(),
    );
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .classify(classify_msg)
        .build_with(|env| {
            CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
        });
    // First half: stabilize. Second half: the steady window under test.
    let cut = horizon / 2;
    sim.run_until(Instant::from_ticks(cut));
    let accusations_at_cut = accusation_total(&recorders);
    sim.run_until(Instant::from_ticks(horizon));
    let accusation_delta = accusation_total(&recorders) - accusations_at_cut;

    let leader = sim.node(ProcessId(0)).leader();
    let unanimous = (0..n as u32).all(|p| sim.node(ProcessId(p)).leader() == leader);
    let senders = sim.stats().senders_since(Instant::from_ticks(cut));
    let stab = last_leader_change(&recorders);
    let pass = unanimous && senders == vec![leader] && accusation_delta == 0 && stab < cut;

    sim.stats().export(&recorders.registry());
    QosRow {
        substrate: "netsim",
        n,
        stabilization: format!("{stab} ticks"),
        stab_value: stab,
        senders: render_senders(&senders),
        sender_count: senders.len(),
        links: format!("{} (broadcast)", n - 1),
        link_count: None,
        accusation_delta,
        pass,
        metrics: recorders.registry().snapshot_json(),
    }
}

/// Thread-mesh run: wall clock, sender set from per-process send deltas
/// over the steady window.
fn threadnet_qos(n: usize, seed: u64) -> QosRow {
    let recorders = NodeRecorders::new(n, 1024);
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let cluster = Cluster::spawn(config, |env| {
        CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || cluster.latest_outputs(),
        &all,
        StdDuration::from_secs(10),
    );
    // Let the election's tail traffic (final accusations in flight) drain
    // before opening the measurement window.
    std::thread::sleep(StdDuration::from_millis(400));
    let (sent_at_cut, _) = cluster.traffic_snapshot();
    let accusations_at_cut = accusation_total(&recorders);
    std::thread::sleep(StdDuration::from_millis(1_000));
    let (sent_at_end, _) = cluster.traffic_snapshot();
    let accusation_delta = accusation_total(&recorders) - accusations_at_cut;
    let report = cluster.stop();
    report.export(&recorders.registry());

    let senders: Vec<ProcessId> = (0..n as u32)
        .map(ProcessId)
        .filter(|p| sent_at_end[p.as_usize()] > sent_at_cut[p.as_usize()])
        .collect();
    let stab = last_leader_change(&recorders);
    let pass = leader.is_some()
        && senders == leader.into_iter().collect::<Vec<_>>()
        && accusation_delta == 0;
    QosRow {
        substrate: "threadnet",
        n,
        stabilization: format!("{stab} ms"),
        stab_value: stab,
        senders: render_senders(&senders),
        sender_count: senders.len(),
        links: format!("{} (broadcast)", n - 1),
        link_count: None,
        accusation_delta,
        pass,
        metrics: recorders.registry().snapshot_json(),
    }
}

/// TCP run: wall clock, and the only substrate where the claim's "exactly
/// n − 1 links" form is measured directly, from per-link frame counters.
fn wirenet_qos(n: usize) -> QosRow {
    let recorders = NodeRecorders::new(n, 1024);
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let cluster = WireCluster::spawn(config, |env| {
        CommEffOmega::new_with_probe(env, OmegaParams::default(), recorders.probe_for(env.id()))
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || cluster.latest_outputs(),
        &all,
        StdDuration::from_secs(10),
    );
    std::thread::sleep(StdDuration::from_millis(400));
    let links_at_cut = cluster.link_snapshot();
    let accusations_at_cut = accusation_total(&recorders);
    std::thread::sleep(StdDuration::from_millis(1_000));
    let links_at_end = cluster.link_snapshot();
    let accusation_delta = accusation_total(&recorders) - accusations_at_cut;
    let report = cluster.stop();
    report.export(&recorders.registry());

    // Directed links that carried at least one frame during the window.
    let mut active = 0u64;
    let mut active_sources: Vec<ProcessId> = Vec::new();
    for (i, (cut_row, end_row)) in links_at_cut.iter().zip(&links_at_end).enumerate() {
        for (cut_link, end_link) in cut_row.iter().zip(end_row) {
            if end_link.msgs_sent > cut_link.msgs_sent {
                active += 1;
                let p = ProcessId(i as u32);
                if !active_sources.contains(&p) {
                    active_sources.push(p);
                }
            }
        }
    }
    let stab = last_leader_change(&recorders);
    let pass = leader.is_some()
        && active == (n as u64 - 1)
        && active_sources == leader.into_iter().collect::<Vec<_>>()
        && accusation_delta == 0;
    QosRow {
        substrate: "wirenet",
        n,
        stabilization: format!("{stab} ms"),
        stab_value: stab,
        senders: render_senders(&active_sources),
        sender_count: active_sources.len(),
        links: format!("{active} measured"),
        link_count: Some(active),
        accusation_delta,
        pass,
        metrics: recorders.registry().snapshot_json(),
    }
}

fn row_json(row: &QosRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("n", JsonValue::U64(row.n as u64)),
        ("stabilization", JsonValue::U64(row.stab_value)),
        ("stabilization_rendered", JsonValue::str(&row.stabilization)),
        ("steady_senders", JsonValue::U64(row.sender_count as u64)),
        (
            "active_links",
            match row.link_count {
                Some(l) => JsonValue::U64(l),
                None => JsonValue::Null,
            },
        ),
        ("accusation_delta", JsonValue::U64(row.accusation_delta)),
        ("pass", JsonValue::Bool(row.pass)),
        ("metrics", JsonValue::Raw(row.metrics.clone())),
    ])
}

/// **E17** — election-stabilization QoS plus a live steady-state
/// communication-efficiency check on every substrate, measured through the
/// probe/metrics pipeline. Returns the human table and the full JSON
/// summary (written by the CLI as `BENCH_E17.json`).
pub fn e17_observability(n: usize, horizon: u64, seed: u64) -> (Table, JsonValue) {
    let rows = vec![
        netsim_qos(n, horizon, seed),
        threadnet_qos(n, seed),
        wirenet_qos(n),
    ];
    let mut t = Table::new(vec![
        "substrate",
        "n",
        "stabilized-at",
        "steady senders",
        "active links",
        "accuse Δ",
        "verdict",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            row.n.to_string(),
            row.stabilization.clone(),
            row.senders.clone(),
            row.links.clone(),
            row.accusation_delta.to_string(),
            if row.pass { "PASS" } else { "FAIL" }.to_owned(),
        ]);
    }
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e17")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("horizon_ticks", JsonValue::U64(horizon)),
        ("pass", JsonValue::Bool(rows.iter().all(|r| r.pass))),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
    ]);
    (t, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netsim_steady_state_is_communication_efficient() {
        let row = netsim_qos(4, 20_000, 11);
        assert!(
            row.pass,
            "netsim E17 row should pass: senders={} accuse_delta={} stab={}",
            row.senders, row.accusation_delta, row.stabilization
        );
        assert_eq!(row.sender_count, 1);
        assert!(row.metrics.contains("netsim_sent_total_p0"));
        assert!(row.metrics.contains("probe_leader_change_total"));
    }

    #[test]
    fn row_json_shape_is_stable() {
        let row = QosRow {
            substrate: "netsim",
            n: 3,
            stabilization: "5 ticks".into(),
            stab_value: 5,
            senders: "{p1}".into(),
            sender_count: 1,
            links: "2 (broadcast)".into(),
            link_count: None,
            accusation_delta: 0,
            pass: true,
            metrics: "{}".into(),
        };
        let j = row_json(&row).render();
        assert!(j.contains("\"substrate\":\"netsim\""));
        assert!(j.contains("\"active_links\":null"));
        assert!(j.contains("\"pass\":true"));
    }
}
