//! Machine-readable experiment summaries: `BENCH_E*.json`.
//!
//! Every experiment the CLI runs writes a JSON summary next to the human
//! table, so plots and regression tooling can consume results without
//! scraping aligned-column text. The writer is hand-rolled (the workspace
//! deliberately has no serde): a tiny value tree plus an escaper, enough
//! for flat summaries and for embedding the observability registry's own
//! [`lls_obs::Registry::snapshot_json`] output verbatim.

use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;

use crate::table::Table;

/// A JSON value tree. Construct with the helper constructors, render with
/// `Display` (or [`JsonValue::render`]).
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with `{:.6}`; NaN/infinite map to `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// Pre-rendered JSON spliced in verbatim — used to embed
    /// `Registry::snapshot_json()` without re-parsing it.
    Raw(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::U64(v) => write!(f, "{v}"),
            JsonValue::F64(v) if v.is_finite() => write!(f, "{v:.6}"),
            JsonValue::F64(_) => f.write_str("null"),
            JsonValue::Str(s) => escape(s, f),
            JsonValue::Raw(s) => f.write_str(s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A [`Table`] as JSON: `{"header": [...], "rows": [[...], ...]}`.
pub fn table_json(table: &Table) -> JsonValue {
    JsonValue::obj(vec![
        (
            "header",
            JsonValue::Arr(table.header().iter().map(JsonValue::str).collect()),
        ),
        (
            "rows",
            JsonValue::Arr(
                table
                    .rows()
                    .iter()
                    .map(|r| JsonValue::Arr(r.iter().map(JsonValue::str).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// The generic per-experiment summary the CLI writes: experiment id, title,
/// the scenario scale it ran at, and the rendered table.
///
/// Emits the shared `{experiment, pass, rows}` shape every BENCH writer
/// conforms to (see [`validate_bench_summary`]): `rows` are the table's
/// data rows, and `pass` is `true` — experiments without an inline gate
/// report through their tables and fail the CLI out-of-band (E16/E21
/// style) rather than here.
pub fn experiment_summary(
    id: &str,
    title: &str,
    scenario: Vec<(&str, JsonValue)>,
    table: &Table,
) -> JsonValue {
    JsonValue::obj(vec![
        ("experiment", JsonValue::str(id)),
        ("title", JsonValue::str(title)),
        ("scenario", JsonValue::obj(scenario)),
        ("pass", JsonValue::Bool(true)),
        ("rows", table_rows_json(table)),
        ("table", table_json(table)),
    ])
}

/// Just a [`Table`]'s data rows as a JSON array of string arrays — the
/// `rows` field experiments whose results live in their table use to meet
/// the shared summary shape.
pub fn table_rows_json(table: &Table) -> JsonValue {
    JsonValue::Arr(
        table
            .rows()
            .iter()
            .map(|r| JsonValue::Arr(r.iter().map(JsonValue::str).collect()))
            .collect(),
    )
}

/// Checks that a BENCH summary has the machine-readable shape regression
/// tooling depends on: a top-level object with `experiment` (string),
/// `pass` (bool), and `rows` (array), plus — when present — an object or
/// raw splice under `registry`/`metrics`. Everything else may vary per
/// experiment; this floor is what keeps E15–E22 outputs parseable as the
/// format grows.
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn validate_bench_summary(v: &JsonValue) -> Result<(), String> {
    let JsonValue::Obj(pairs) = v else {
        return Err("summary must be a JSON object".to_owned());
    };
    let field = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match field("experiment") {
        Some(JsonValue::Str(_)) => {}
        Some(_) => return Err("`experiment` must be a string".to_owned()),
        None => return Err("missing `experiment`".to_owned()),
    }
    match field("pass") {
        Some(JsonValue::Bool(_)) => {}
        Some(_) => return Err("`pass` must be a bool".to_owned()),
        None => return Err("missing `pass`".to_owned()),
    }
    match field("rows") {
        Some(JsonValue::Arr(_)) => {}
        Some(_) => return Err("`rows` must be an array".to_owned()),
        None => return Err("missing `rows`".to_owned()),
    }
    for name in ["registry", "metrics"] {
        match field(name) {
            None | Some(JsonValue::Obj(_) | JsonValue::Raw(_)) => {}
            Some(_) => return Err(format!("`{name}` must be an object or raw splice")),
        }
    }
    Ok(())
}

/// Writes `value` to `BENCH_<ID>.json` (id upper-cased) in the current
/// directory and returns the path.
///
/// # Errors
///
/// Fails if the file cannot be created or written.
pub fn write_bench_json(id: &str, value: &JsonValue) -> io::Result<PathBuf> {
    write_bench_json_in(None, id, value)
}

/// Like [`write_bench_json`], but into `dir` (created if missing) instead
/// of the current directory — the CLI's `--out-dir` flag, so CI can collect
/// every summary from one artifact directory.
///
/// # Errors
///
/// Fails if the directory cannot be created or the file cannot be written.
pub fn write_bench_json_in(
    dir: Option<&std::path::Path>,
    id: &str,
    value: &JsonValue,
) -> io::Result<PathBuf> {
    let name = format!("BENCH_{}.json", id.to_uppercase());
    let path = match dir {
        Some(dir) => {
            fs::create_dir_all(dir)?;
            dir.join(name)
        }
        None => PathBuf::from(name),
    };
    fs::write(&path, format!("{value}\n"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        let v = JsonValue::obj(vec![
            ("a", JsonValue::U64(3)),
            ("b", JsonValue::str("he said \"hi\"\n")),
            ("c", JsonValue::Bool(true)),
            ("d", JsonValue::Null),
            ("e", JsonValue::F64(0.5)),
            ("f", JsonValue::F64(f64::NAN)),
        ]);
        assert_eq!(
            v.render(),
            "{\"a\":3,\"b\":\"he said \\\"hi\\\"\\n\",\"c\":true,\"d\":null,\"e\":0.500000,\"f\":null}"
        );
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = JsonValue::obj(vec![("metrics", JsonValue::Raw("{\"x\":1}".into()))]);
        assert_eq!(v.render(), "{\"metrics\":{\"x\":1}}");
    }

    #[test]
    fn out_dir_is_created_and_used() {
        let dir = std::env::temp_dir().join(format!("bench-json-{}", std::process::id()));
        let value = JsonValue::obj(vec![("ok", JsonValue::Bool(true))]);
        let path = write_bench_json_in(Some(&dir), "e0", &value).expect("write into out dir");
        assert_eq!(path, dir.join("BENCH_E0.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_round_trips_to_json() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["3", "ok"]);
        let j = table_json(&t).render();
        assert_eq!(
            j,
            "{\"header\":[\"n\",\"value\"],\"rows\":[[\"3\",\"ok\"]]}"
        );
    }

    #[test]
    fn generic_summary_conforms_to_the_shared_shape() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["3", "ok"]);
        let v = experiment_summary("e1", "title", vec![("seeds", JsonValue::U64(3))], &t);
        validate_bench_summary(&v).expect("generic summary must validate");
    }

    #[test]
    fn validator_names_the_first_defect() {
        let ok = JsonValue::obj(vec![
            ("experiment", JsonValue::str("e22")),
            ("pass", JsonValue::Bool(true)),
            ("rows", JsonValue::Arr(vec![])),
            ("metrics", JsonValue::Raw("{}".into())),
        ]);
        assert_eq!(validate_bench_summary(&ok), Ok(()));

        assert_eq!(
            validate_bench_summary(&JsonValue::Arr(vec![])),
            Err("summary must be a JSON object".to_owned())
        );
        let no_pass = JsonValue::obj(vec![
            ("experiment", JsonValue::str("e22")),
            ("rows", JsonValue::Arr(vec![])),
        ]);
        assert_eq!(
            validate_bench_summary(&no_pass),
            Err("missing `pass`".to_owned())
        );
        let bad_rows = JsonValue::obj(vec![
            ("experiment", JsonValue::str("e22")),
            ("pass", JsonValue::Bool(false)),
            ("rows", JsonValue::U64(3)),
        ]);
        assert_eq!(
            validate_bench_summary(&bad_rows),
            Err("`rows` must be an array".to_owned())
        );
        let bad_registry = JsonValue::obj(vec![
            ("experiment", JsonValue::str("e22")),
            ("pass", JsonValue::Bool(true)),
            ("rows", JsonValue::Arr(vec![])),
            ("registry", JsonValue::str("not an object")),
        ]);
        assert_eq!(
            validate_bench_summary(&bad_registry),
            Err("`registry` must be an object or raw splice".to_owned())
        );
    }
}
