//! Experiment harness for the limited-link-synchrony reproduction.
//!
//! PODC 2004 is a theory paper — its "evaluation" is a set of theorems and
//! complexity claims. Each experiment here (E1–E16, indexed in `DESIGN.md`
//! and reported in `EXPERIMENTS.md`) turns one claim into a measurement and
//! regenerates the corresponding table or series:
//!
//! | Id  | Claim |
//! |-----|-------|
//! | E1  | Ω holds in system S (one ♦-source, fair-lossy mesh) |
//! | E2  | Communication efficiency: the sender set collapses to 1 |
//! | E3  | Steady-state message complexity Θ(n) vs Θ(n²) baselines |
//! | E4  | Robustness: stabilization vs loss rate × GST |
//! | E5  | The final leader's accusation counter is bounded |
//! | E6  | Consensus is safe and live in S_maj |
//! | E7  | Consensus steady state is communication-efficient |
//! | E8  | Synchrony crossover: one ♦-source suffices; all-to-all needs more |
//! | E9  | Ablation: accusation dedup and timeout growth both matter |
//! | E10 | The communication-efficiency shape survives on real threads |
//! | E11 | Relaying extends Ω to eventually-timely *paths* |
//! | E12 | Timeout adaptation is necessary (deterministic blink adversary) |
//! | E13 | QoS: detection time vs timeout after a leader crash |
//! | E14 | Ω-gated consensus vs rotating-coordinator (◇S) baseline |
//! | E15 | The communication-efficiency shape survives on real TCP sockets |
//! | E16 | Crash–restart chaos: durable state keeps both checkers green on all substrates |
//! | E17 | Steady-state efficiency live-checked through the probe/metrics pipeline |
//! | E18 | Causal tracing plane: spans, watchdog alarms, live scrape |
//! | E19 | Batching + pipelining multiply steady-state throughput (≥ 3× baseline) |
//! | E20 | Sharded multi-group RSM scales near-linearly with one shared Ω per node |
//! | E21 | Bounded recovery: snapshots + WAL compaction keep restart cost flat under chaos |
//! | E22 | Per-command latency attribution adds up; the timeline plane serves live frames |
//! | E23 | Leader leases: lease/read-index reads are fast, never stale, and Ω-traffic-neutral |
//!
//! Run everything with `cargo run -p omega-bench --release --bin experiments -- all`,
//! or one experiment by id (`-- e3`). Alongside each human table the CLI
//! writes a machine-readable `BENCH_E*.json` summary (see [`json`]).

#![forbid(unsafe_code)]

pub mod e_chaos;
pub mod e_consensus;
pub mod e_latency;
pub mod e_obs;
pub mod e_omega;
pub mod e_read;
pub mod e_recovery;
pub mod e_shard;
pub mod e_thread;
pub mod e_throughput;
pub mod e_trace;
pub mod e_wire;
pub mod json;
pub mod table;

/// Quantile helper used by several experiments (nearest-rank).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1, 2, 3, 4, 100];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 50.0), 3);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }
}
