//! Experiment E18: the causal tracing plane, end to end, on every
//! substrate.
//!
//! E17 measured the steady state *through* the probe pipeline; E18
//! exercises the plane built on top of it. Each substrate run:
//!
//! 1. boots an Ω cluster whose messages carry the v2 trace envelope
//!    (per-node Lamport clock + trace id), so every recorded probe event
//!    lands with a causal position;
//! 2. stabilizes, **arms** the online [`Watchdog`], and holds a steady
//!    window in which zero alarms must fire (on netsim the harness also
//!    feeds the observed sender set through
//!    [`Watchdog::check_senders`]);
//! 3. induces a link cut against the elected leader (a partition on the
//!    simulator, a kill on the wall-clock substrates) — the watchdog,
//!    still armed, must raise at least one structured alarm *with* a
//!    captured flight-recorder dump;
//! 4. reconstructs cross-node spans (accusation → counter bump → leader
//!    change) from the per-node streams and checks every span is causally
//!    ordered — no hop "receives" before its cause was "sent"
//!    (cross-node hops must strictly increase the Lamport value);
//! 5. reports span causal-depth and latency distributions.
//!
//! On wirenet the run additionally serves a live HTTP scrape endpoint
//! mid-run: `/metrics` must match the in-process registry rendering, and
//! `/flight` + `/spans` must answer while the cluster is re-electing.
//! The whole result lands in `BENCH_E18.json`.

use std::sync::Arc;
use std::time::Duration as StdDuration;

use lls_obs::{reconstruct_spans, NodeRecorders, SpanKind, SpanRecord, Watchdog, WatchdogConfig};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::{classify_msg, CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};
use wirenet::{scrape, BackoffConfig, ScrapeRoutes, ScrapeServer, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::percentile;
use crate::table::Table;

/// Distribution summary over the reconstructed spans of one run.
struct SpanStats {
    total: usize,
    election: usize,
    all_ordered: bool,
    depth_p50: u64,
    depth_p99: u64,
    latency_p50: Option<u64>,
    latency_p99: Option<u64>,
}

fn span_stats(spans: &[SpanRecord]) -> SpanStats {
    let election = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Election)
        .count();
    let all_ordered = spans.iter().all(SpanRecord::causally_ordered);
    let mut depths: Vec<u64> = spans.iter().map(SpanRecord::causal_depth).collect();
    depths.sort_unstable();
    let mut latencies: Vec<u64> = spans.iter().filter_map(SpanRecord::latency_ticks).collect();
    latencies.sort_unstable();
    SpanStats {
        total: spans.len(),
        election,
        all_ordered,
        depth_p50: if depths.is_empty() {
            0
        } else {
            percentile(&depths, 50.0)
        },
        depth_p99: if depths.is_empty() {
            0
        } else {
            percentile(&depths, 99.0)
        },
        latency_p50: (!latencies.is_empty()).then(|| percentile(&latencies, 50.0)),
        latency_p99: (!latencies.is_empty()).then(|| percentile(&latencies, 99.0)),
    }
}

/// One substrate's measured row.
struct TraceRow {
    substrate: &'static str,
    n: usize,
    stats: SpanStats,
    /// Alarms raised inside the armed steady window (must be 0).
    alarms_steady: usize,
    /// Alarms raised after the induced cut (must be ≥ 1).
    alarms_after: usize,
    /// Whether the first post-cut alarm carried a flight-recorder dump.
    alarm_has_dump: bool,
    /// Mid-run `/metrics` scrape matched the in-process registry
    /// (wirenet only).
    scrape_ok: Option<bool>,
    pass: bool,
}

fn finish_row(
    substrate: &'static str,
    n: usize,
    recorders: &NodeRecorders,
    watchdog: &Watchdog,
    alarms_steady: usize,
    scrape_ok: Option<bool>,
) -> TraceRow {
    let alarms = watchdog.alarms();
    let alarms_after = alarms.len().saturating_sub(alarms_steady);
    let alarm_has_dump = alarms
        .get(alarms_steady)
        .is_some_and(|a| !a.dump.is_empty());
    let spans = reconstruct_spans(&recorders.all_events());
    let stats = span_stats(&spans);
    let pass = stats.all_ordered
        && stats.election >= 1
        && alarms_steady == 0
        && alarms_after >= 1
        && alarm_has_dump
        && scrape_ok.unwrap_or(true);
    TraceRow {
        substrate,
        n,
        stats,
        alarms_steady,
        alarms_after,
        alarm_has_dump,
        scrape_ok,
        pass,
    }
}

/// Simulator run: deterministic ticks; the cut is a real partition that
/// isolates the elected leader.
fn netsim_trace(n: usize, horizon: u64, seed: u64) -> TraceRow {
    let recorders = Arc::new(NodeRecorders::new(n, 1024));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let topo = Topology::system_s(
        n,
        ProcessId((seed % n as u64) as u32),
        SystemSParams::default(),
    );
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(topo)
        .classify(classify_msg)
        .trace_clocks(recorders.clocks())
        .build_with(|env| {
            CommEffOmega::new_with_probe(
                env,
                OmegaParams::default(),
                watchdog.probe(recorders.probe_for(env.id())),
            )
        });
    // Stabilize, then arm and hold a steady window.
    let cut = horizon / 2;
    sim.run_until(Instant::from_ticks(cut));
    watchdog.arm();
    let window_end = cut + horizon / 8;
    sim.run_until(Instant::from_ticks(window_end));
    // The traffic-side invariant: only the leader sent inside the window.
    watchdog.check_senders(&sim.stats().senders_since(Instant::from_ticks(cut)));
    let alarms_steady = watchdog.alarm_count();
    // The link cut: isolate the current leader. The survivors must accuse,
    // re-elect, and the armed watchdog must catch the flap.
    let leader = sim.node(ProcessId(0)).leader();
    sim.partition_now(&[leader]);
    sim.run_until(Instant::from_ticks(horizon));
    watchdog.disarm();
    finish_row("netsim", n, &recorders, &watchdog, alarms_steady, None)
}

/// Thread-mesh run (wall clock): the cut kills the leader process.
fn threadnet_trace(n: usize, seed: u64) -> TraceRow {
    let recorders = Arc::new(NodeRecorders::new(n, 1024));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        CommEffOmega::new_with_probe(
            env,
            OmegaParams::default(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let leader = await_unanimity(|| cluster.latest_outputs(), &all, timeout);
    // Let the election's tail traffic drain before arming.
    std::thread::sleep(StdDuration::from_millis(400));
    watchdog.arm();
    std::thread::sleep(StdDuration::from_millis(500));
    let alarms_steady = watchdog.alarm_count();
    let victim = leader.unwrap_or(ProcessId(0));
    cluster.kill(victim);
    let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim).collect();
    let _ = await_unanimity(|| cluster.latest_outputs(), &survivors, timeout);
    watchdog.disarm();
    cluster.stop();
    finish_row("threadnet", n, &recorders, &watchdog, alarms_steady, None)
}

/// TCP run (wall clock): same shape as threadnet, plus a live HTTP scrape
/// mid-run that must agree with the in-process registry.
fn wirenet_trace(n: usize) -> TraceRow {
    let recorders = Arc::new(NodeRecorders::new(n, 1024));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let mut cluster = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        CommEffOmega::new_with_probe(
            env,
            OmegaParams::default(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    })
    .expect("bind 127.0.0.1 listeners");
    let server =
        ScrapeServer::spawn(ScrapeRoutes::for_recorders(Arc::clone(&recorders))).expect("scrape");
    let addr = server.addr();
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let leader = await_unanimity(|| cluster.latest_outputs(), &all, timeout);
    std::thread::sleep(StdDuration::from_millis(400));
    watchdog.arm();
    std::thread::sleep(StdDuration::from_millis(500));
    let alarms_steady = watchdog.alarm_count();
    // Mid-run scrape: the HTTP body must be the registry's own rendering.
    // The cluster is live, so counters can move between the scrape and the
    // local snapshot — retry a few times until one round trip is quiescent.
    let mut scrape_ok = false;
    for _ in 0..5 {
        let scraped = scrape(addr, "/metrics");
        let local = recorders.registry().render_prometheus();
        if scraped.is_ok_and(|body| body == local) {
            scrape_ok = true;
            break;
        }
        std::thread::sleep(StdDuration::from_millis(100));
    }
    let victim = leader.unwrap_or(ProcessId(0));
    cluster.kill(victim);
    let survivors: Vec<ProcessId> = all.iter().copied().filter(|p| *p != victim).collect();
    let _ = await_unanimity(|| cluster.latest_outputs(), &survivors, timeout);
    // The endpoint must keep answering while the cluster churns.
    let flight_live = scrape(addr, "/flight").is_ok_and(|b| b.contains("node p"));
    let spans_live = scrape(addr, "/spans").is_ok_and(|b| b.starts_with('['));
    watchdog.disarm();
    server.stop();
    cluster.stop();
    finish_row(
        "wirenet",
        n,
        &recorders,
        &watchdog,
        alarms_steady,
        Some(scrape_ok && flight_live && spans_live),
    )
}

fn opt_u64(v: Option<u64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::U64)
}

fn row_json(row: &TraceRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("n", JsonValue::U64(row.n as u64)),
        ("spans", JsonValue::U64(row.stats.total as u64)),
        ("election_spans", JsonValue::U64(row.stats.election as u64)),
        ("causally_ordered", JsonValue::Bool(row.stats.all_ordered)),
        ("depth_p50", JsonValue::U64(row.stats.depth_p50)),
        ("depth_p99", JsonValue::U64(row.stats.depth_p99)),
        ("latency_ticks_p50", opt_u64(row.stats.latency_p50)),
        ("latency_ticks_p99", opt_u64(row.stats.latency_p99)),
        ("alarms_steady", JsonValue::U64(row.alarms_steady as u64)),
        ("alarms_after_cut", JsonValue::U64(row.alarms_after as u64)),
        ("alarm_has_dump", JsonValue::Bool(row.alarm_has_dump)),
        (
            "scrape_ok",
            row.scrape_ok.map_or(JsonValue::Null, JsonValue::Bool),
        ),
        ("pass", JsonValue::Bool(row.pass)),
    ])
}

/// **E18** — drive the tracing plane on every substrate: steady window
/// with an armed watchdog (zero alarms), induced link cut (≥ 1 alarm with
/// post-mortem dump), cross-node span reconstruction (all causally
/// ordered), latency/depth distributions, and — on wirenet — a live HTTP
/// scrape that matches the in-process registry. Returns the human table
/// and the JSON summary the CLI writes as `BENCH_E18.json`.
pub fn e18_tracing(n: usize, horizon: u64, seed: u64) -> (Table, JsonValue) {
    let rows = vec![
        netsim_trace(n, horizon, seed),
        threadnet_trace(n, seed),
        wirenet_trace(n),
    ];
    let mut t = Table::new(vec![
        "substrate",
        "n",
        "spans",
        "ordered",
        "depth p50/p99",
        "latency p50/p99",
        "alarms steady/cut",
        "scrape",
        "verdict",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            row.n.to_string(),
            format!("{} ({} election)", row.stats.total, row.stats.election),
            if row.stats.all_ordered {
                "all"
            } else {
                "VIOLATED"
            }
            .to_owned(),
            format!("{}/{}", row.stats.depth_p50, row.stats.depth_p99),
            match (row.stats.latency_p50, row.stats.latency_p99) {
                (Some(a), Some(b)) => format!("{a}/{b}"),
                _ => "-".to_owned(),
            },
            format!("{}/{}", row.alarms_steady, row.alarms_after),
            match row.scrape_ok {
                Some(true) => "live".to_owned(),
                Some(false) => "MISMATCH".to_owned(),
                None => "-".to_owned(),
            },
            if row.pass { "PASS" } else { "FAIL" }.to_owned(),
        ]);
    }
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e18")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("horizon_ticks", JsonValue::U64(horizon)),
        ("pass", JsonValue::Bool(rows.iter().all(|r| r.pass))),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
    ]);
    (t, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance path on the deterministic substrate: steady window
    /// clean, the partition raises an alarm with a dump, every
    /// reconstructed span is causally ordered.
    #[test]
    fn netsim_trace_row_passes() {
        let row = netsim_trace(4, 24_000, 11);
        assert_eq!(row.alarms_steady, 0, "steady window must be alarm-free");
        assert!(row.alarms_after >= 1, "the cut must raise an alarm");
        assert!(row.alarm_has_dump, "alarms carry the post-mortem dump");
        assert!(row.stats.all_ordered, "no span may receive before send");
        assert!(row.stats.election >= 1, "re-election must leave a span");
        assert!(row.pass);
    }

    #[test]
    fn span_stats_handle_empty_input() {
        let stats = span_stats(&[]);
        assert_eq!(stats.total, 0);
        assert!(stats.all_ordered, "vacuously ordered");
        assert_eq!(stats.latency_p50, None);
    }
}
