//! Experiment E10: the communication-efficiency shape on real threads.

use std::time::Duration as StdDuration;

use lls_primitives::ProcessId;
use omega::{CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};

use crate::table::Table;

/// **E10** — run the election on the thread runtime with injected loss and
/// sample the sender set every `window_ms`: the series must collapse toward
/// a single sender, matching the simulator's E2 shape on a wall clock.
pub fn e10_threadnet(n: usize, loss: f64, windows: usize, window_ms: u64) -> Table {
    let config = NetConfig {
        n,
        loss,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(900),
        tick: StdDuration::from_micros(250),
        seed: 9,
    };
    let cluster = Cluster::spawn(config, |env| CommEffOmega::new(env, OmegaParams::default()));
    let mut t = Table::new(vec!["t(ms)", "msgs_in_window", "senders"]);
    let mut prev = vec![0u64; n];
    for step in 1..=windows {
        std::thread::sleep(StdDuration::from_millis(window_ms));
        let (sent, _) = cluster.traffic_snapshot();
        let window: Vec<u64> = sent.iter().zip(&prev).map(|(a, b)| a - b).collect();
        let senders = window.iter().filter(|c| **c > 0).count();
        t.row(vec![
            (step as u64 * window_ms).to_string(),
            window.iter().sum::<u64>().to_string(),
            senders.to_string(),
        ]);
        prev = sent;
    }
    let report = cluster.stop();
    // Append a summary row: final agreement across all processes.
    let leader = report.final_output_of(ProcessId(0)).copied();
    let agreed = (0..n as u32)
        .map(ProcessId)
        .all(|p| report.final_output_of(p).copied() == leader);
    t.row(vec![
        "final".into(),
        format!(
            "leader={}",
            leader.map(|l| l.to_string()).unwrap_or("-".into())
        ),
        format!("agreement={agreed}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_produces_series_and_agreement() {
        let t = e10_threadnet(3, 0.02, 3, 150);
        let s = t.render();
        assert!(s.contains("agreement=true"), "{s}");
    }
}
