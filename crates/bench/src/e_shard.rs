//! Experiment E20: sharded multi-group throughput with one shared Ω.
//!
//! E19 scaled the *single* log's steady state with batching and
//! pipelining; E20 removes the last serialization point by partitioning
//! the keyspace into `S` independent shard groups
//! ([`consensus::shard`]) and measures two claims at once:
//!
//! 1. **Near-linear throughput scaling** — every group is pinned to the
//!    strict `(max_batch = 1, pipeline_depth = 1)` baseline, so one group
//!    commits exactly one command per round trip and `S` groups commit
//!    `S` in parallel. The gate: netsim throughput at `S = 4` must be
//!    ≥ 2.5× the `S = 1` baseline.
//! 2. **Election traffic independent of `S`** — each node runs **one**
//!    shared Ω feeding leadership to all co-located groups, so the
//!    per-run `ALIVE`/`ACCUSE` message counts (netsim's deterministic
//!    kind counters) must stay flat (within 10%) as `S` grows 1 → 8. A
//!    naive per-shard Ω would multiply them by `S`.
//!
//! Commands are routed round-robin over the shards (the kvstore layer
//! routes by key hash; round-robin is the same uniform offered load
//! without dragging the kv dependency into the bench crate). Per-shard
//! commit latencies and decided-slot counts are recorded into one
//! [`Registry`] **per shard** and composed into the shared registry via
//! [`lls_obs::aggregate_shard_registries`] — the same `shard{id}_`-prefix
//! scheme the wirenet scrape endpoint serves — so `BENCH_E20.json`
//! carries the per-shard breakdown next to the cross-shard sums.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::shard::{
    classify_shard_msg, PlacementManager, PlacementMap, ShardEvent, ShardId, ShardRequest,
    ShardedNode,
};
use consensus::{BatchParams, ConsensusParams};
use lls_obs::{aggregate_shard_registries, NodeRecorders, Registry};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

use crate::e_chaos::await_unanimity;
use crate::json::JsonValue;
use crate::percentile;
use crate::table::Table;

/// The measured shard counts, always starting at the unsharded baseline.
const SHARD_COUNTS: &[u32] = &[1, 2, 4, 8];

/// The acceptance threshold: netsim throughput at `S = 4` over `S = 1`.
const SCALING_GATE: f64 = 2.5;

/// Allowed relative drift of the Ω message counters across shard counts.
const OMEGA_FLATNESS: f64 = 0.10;

/// One substrate × shard-count measurement.
struct ShardRow {
    substrate: &'static str,
    shards: u32,
    /// Commands offered (round-robin over the shards).
    commands: u64,
    /// Commands committed at the leader before the deadline.
    committed: u64,
    /// Decided commands per shard, in shard order.
    per_shard: Vec<u64>,
    /// Committed commands per unit of `unit`.
    throughput: f64,
    /// `"cmds/ktick"` on netsim, `"cmds/s"` on the wall-clock substrates.
    unit: &'static str,
    /// Issue-to-commit latency percentiles, in `lat_unit`.
    p50: u64,
    p99: u64,
    /// `"ticks"` on netsim, `"us"` on the wall-clock substrates.
    lat_unit: &'static str,
    /// Throughput relative to the same substrate's `S = 1` baseline.
    scaling: f64,
    /// Ω heartbeat messages observed in the run (netsim only; 0 on the
    /// wall-clock substrates, whose totals are time- not run-bound).
    omega_alive: u64,
    /// Ω accusation messages observed in the run (netsim only).
    omega_accuse: u64,
}

/// Every group pinned to the strict one-command-per-round-trip baseline:
/// the throughput axis under test is the shard count, nothing else.
fn shard_params() -> ConsensusParams {
    ConsensusParams {
        batch: BatchParams {
            max_batch: 1,
            pipeline_depth: 1,
        },
        ..ConsensusParams::default()
    }
}

/// The uniform placement used throughout: every node hosts every shard, so
/// the single shared Ω leader leads all `shards` groups.
fn placement(shards: u32, n: usize) -> PlacementManager {
    PlacementManager::with_all_attached(PlacementMap::uniform(shards, n))
}

/// The round-robin shard of command `i` — E20's stand-in for the kvstore
/// key router (uniform load without the kv dependency).
fn shard_of(i: u64, shards: u32) -> ShardId {
    ShardId((i % u64::from(shards)) as u32)
}

/// Records one run's per-shard latency distributions and decided counts
/// into per-shard registries, composes them with
/// [`aggregate_shard_registries`], folds the result into the shared
/// registry under an `e20_{substrate}_s{S}_` prefix, and returns the
/// overall percentiles.
fn record_sharded_run(
    registry: &Registry,
    substrate: &'static str,
    shards: u32,
    lat_unit: &'static str,
    per_shard_latencies: &BTreeMap<u32, Vec<u64>>,
) -> (u64, u64) {
    let shard_regs: Vec<Registry> = (0..shards).map(|_| Registry::new()).collect();
    let mut all: Vec<u64> = Vec::new();
    for (shard, lats) in per_shard_latencies {
        let reg = &shard_regs[*shard as usize];
        let name = format!("commit_latency_{lat_unit}");
        reg.describe(&name, "E20 issue-to-commit latency within one shard");
        let hist = reg.histogram(&name);
        for &l in lats {
            hist.record(l);
        }
        reg.describe("decided_total", "E20 commands decided by one shard");
        reg.counter("decided_total").add(lats.len() as u64);
        all.extend_from_slice(lats);
    }
    let composed =
        aggregate_shard_registries(shard_regs.iter().enumerate().map(|(i, r)| (i as u32, r)));
    registry.absorb_prefixed(&format!("e20_{substrate}_s{shards}_"), &composed);
    all.sort_unstable();
    if all.is_empty() {
        (0, 0)
    } else {
        (percentile(&all, 50.0), percentile(&all, 99.0))
    }
}

/// Deterministic run: two commands per tick are injected at the
/// established leader, round-robin over the shards; the decided timeline
/// and the Ω message counters are read back from the simulator.
fn netsim_run(n: usize, commands: u64, shards: u32, seed: u64, registry: &Registry) -> ShardRow {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let params = shard_params();
    let rec = Arc::clone(&recorders);
    let mut sim = SimBuilder::new(n)
        .seed(seed)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .classify(classify_shard_msg)
        .build_with(move |env| {
            ShardedNode::<u64, _>::new_with_probe(
                env,
                params,
                placement(shards, n),
                rec.probe_for(env.id()),
            )
        });
    // Let the shared Ω settle and every group establish its ballot.
    let issue_base = 2_000u64;
    sim.run_until(Instant::from_ticks(issue_base));
    let leader = sim.node(ProcessId(0)).omega().leader();
    // Offered load: two commands per tick, spread round-robin. One group
    // at (1,1) commits ~one command per round trip, so the baseline is
    // round-trip-bound while higher shard counts drain in parallel.
    let issue_tick = |i: u64| issue_base + 1 + i / 2;
    for i in 0..commands {
        sim.schedule_request(
            Instant::from_ticks(issue_tick(i)),
            leader,
            ShardRequest {
                shard: shard_of(i, shards),
                cmd: i,
            },
        );
    }
    sim.run_until(Instant::from_ticks(issue_base + commands * 12 + 10_000));
    // Commit times observed at the leader, keyed by command value.
    let mut commit_at: BTreeMap<u64, (u32, u64)> = BTreeMap::new();
    for ev in sim.outputs() {
        if ev.process != leader {
            continue;
        }
        if let ShardEvent::Committed {
            shard,
            cmd: Some(v),
            ..
        } = ev.output
        {
            commit_at.entry(v).or_insert((shard.0, ev.at.ticks()));
        }
    }
    let committed = commit_at.len() as u64;
    let mut per_shard = vec![0u64; shards as usize];
    let mut per_shard_latencies: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (&v, &(shard, at)) in &commit_at {
        per_shard[shard as usize] += 1;
        per_shard_latencies
            .entry(shard)
            .or_default()
            .push(at.saturating_sub(issue_tick(v)));
    }
    let span = commit_at
        .values()
        .map(|&(_, at)| at)
        .max()
        .map_or(0, |last| last.saturating_sub(issue_base));
    let throughput = if span == 0 {
        0.0
    } else {
        committed as f64 * 1_000.0 / span as f64
    };
    let kinds = sim.stats().kind_counts().clone();
    let (p50, p99) = record_sharded_run(registry, "netsim", shards, "ticks", &per_shard_latencies);
    ShardRow {
        substrate: "netsim",
        shards,
        commands,
        committed,
        per_shard,
        throughput,
        unit: "cmds/ktick",
        p50,
        p99,
        lat_unit: "ticks",
        scaling: 1.0,
        omega_alive: kinds.get("ALIVE").copied().unwrap_or(0),
        omega_accuse: kinds.get("ACCUSE").copied().unwrap_or(0),
    }
}

/// Maps a sharded cluster's latest outputs to the leader view
/// [`await_unanimity`] polls: in a request-free warmup the only outputs
/// are the shared Ω's `Leader` announcements.
fn leader_view(latest: Vec<Option<ShardEvent<u64>>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(ShardEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Timeline bookkeeping shared by the wall-clock substrates (same
/// re-anchoring trick as E19, with the shard carried along).
fn wall_latencies(
    outputs: &[(ProcessId, StdDuration, ShardEvent<u64>)],
    leader: ProcessId,
    shards: u32,
    total_wall: StdDuration,
) -> (u64, Vec<u64>, BTreeMap<u32, Vec<u64>>) {
    let mut commit_at: BTreeMap<u64, (u32, StdDuration)> = BTreeMap::new();
    for (p, at, ev) in outputs {
        if *p != leader {
            continue;
        }
        if let ShardEvent::Committed {
            shard,
            cmd: Some(v),
            ..
        } = ev
        {
            commit_at.entry(*v).or_insert((shard.0, *at));
        }
    }
    let committed = commit_at.len() as u64;
    let anchor = commit_at
        .values()
        .map(|&(_, at)| at)
        .max()
        .map_or(StdDuration::ZERO, |last| last.saturating_sub(total_wall));
    let mut per_shard = vec![0u64; shards as usize];
    let mut per_shard_latencies: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for &(shard, at) in commit_at.values() {
        per_shard[shard as usize] += 1;
        per_shard_latencies
            .entry(shard)
            .or_default()
            .push(at.saturating_sub(anchor).as_micros() as u64);
    }
    (committed, per_shard, per_shard_latencies)
}

/// Thread-mesh run: fire the whole round-robin burst at the elected
/// leader, poll the shared output log until every command committed
/// there, then time it.
fn threadnet_run(n: usize, commands: u64, shards: u32, seed: u64, registry: &Registry) -> ShardRow {
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed,
    };
    let params = shard_params();
    let cluster = Cluster::spawn(config, move |env| {
        ShardedNode::<u64>::new(env, params, placement(shards, n))
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let burst_start = StdInstant::now();
    for i in 0..commands {
        cluster.request(
            leader,
            ShardRequest {
                shard: shard_of(i, shards),
                cmd: i,
            },
        );
    }
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    loop {
        let done = cluster
            .outputs_so_far()
            .iter()
            .filter(|o| {
                o.process == leader
                    && matches!(o.output, ShardEvent::Committed { cmd: Some(_), .. })
            })
            .count() as u64;
        if done >= commands || StdInstant::now() > deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(1));
    }
    let total_wall = burst_start.elapsed();
    let report = cluster.stop();
    let outputs: Vec<(ProcessId, StdDuration, ShardEvent<u64>)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (committed, per_shard, per_shard_latencies) =
        wall_latencies(&outputs, leader, shards, total_wall);
    let throughput = committed as f64 / total_wall.as_secs_f64().max(f64::EPSILON);
    let (p50, p99) = record_sharded_run(registry, "threadnet", shards, "us", &per_shard_latencies);
    ShardRow {
        substrate: "threadnet",
        shards,
        commands,
        committed,
        per_shard,
        throughput,
        unit: "cmds/s",
        p50,
        p99,
        lat_unit: "us",
        scaling: 1.0,
        omega_alive: 0,
        omega_accuse: 0,
    }
}

/// TCP run: same shape as threadnet, except the socket substrate exposes
/// only each node's *latest* output live, and commits interleave across
/// shards — so completion is detected by quiescence (the leader's newest
/// output stops changing), bounded by the deadline, and the exact
/// committed count comes from the stop report.
fn wirenet_run(n: usize, commands: u64, shards: u32, registry: &Registry) -> ShardRow {
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let params = shard_params();
    let cluster = WireCluster::try_spawn(config, move |env| {
        ShardedNode::<u64>::new(env, params, placement(shards, n))
    })
    .expect("bind 127.0.0.1 listeners");
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let leader = await_unanimity(
        || leader_view(cluster.latest_outputs()),
        &all,
        StdDuration::from_secs(10),
    )
    .unwrap_or(ProcessId(0));
    let burst_start = StdInstant::now();
    for i in 0..commands {
        cluster.request(
            leader,
            ShardRequest {
                shard: shard_of(i, shards),
                cmd: i,
            },
        );
    }
    let deadline = StdInstant::now() + StdDuration::from_secs(30);
    let mut newest: Option<ShardEvent<u64>> = None;
    let mut stable_since = StdInstant::now();
    loop {
        let latest = cluster.latest_outputs().into_iter().nth(leader.as_usize());
        let latest = latest.flatten();
        if latest != newest {
            newest = latest;
            stable_since = StdInstant::now();
        }
        let quiesced = matches!(newest, Some(ShardEvent::Committed { .. }))
            && stable_since.elapsed() >= StdDuration::from_millis(500);
        if quiesced || StdInstant::now() > deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
    let total_wall = burst_start.elapsed();
    let report = cluster.stop();
    report.export(registry);
    let outputs: Vec<(ProcessId, StdDuration, ShardEvent<u64>)> = report
        .outputs
        .iter()
        .map(|o| (o.process, o.at, o.output.clone()))
        .collect();
    let (committed, per_shard, per_shard_latencies) =
        wall_latencies(&outputs, leader, shards, total_wall);
    let throughput = committed as f64 / total_wall.as_secs_f64().max(f64::EPSILON);
    let (p50, p99) = record_sharded_run(registry, "wirenet", shards, "us", &per_shard_latencies);
    ShardRow {
        substrate: "wirenet",
        shards,
        commands,
        committed,
        per_shard,
        throughput,
        unit: "cmds/s",
        p50,
        p99,
        lat_unit: "us",
        scaling: 1.0,
        omega_alive: 0,
        omega_accuse: 0,
    }
}

/// Fills in per-substrate scaling ratios relative to the `S = 1` baseline
/// and returns the netsim `S = 4` ratio (the gated one), counting only
/// complete runs.
fn compute_scaling(rows: &mut [ShardRow]) -> f64 {
    let baselines: Vec<(&'static str, f64, bool)> = rows
        .iter()
        .filter(|r| r.shards == 1)
        .map(|r| (r.substrate, r.throughput, r.committed == r.commands))
        .collect();
    let mut gated = 0.0f64;
    for row in rows.iter_mut() {
        let Some(&(_, base, base_ok)) = baselines.iter().find(|(s, _, _)| *s == row.substrate)
        else {
            continue;
        };
        row.scaling = if base > 0.0 {
            row.throughput / base
        } else {
            0.0
        };
        if row.substrate == "netsim" && row.shards == 4 && base_ok && row.committed == row.commands
        {
            gated = row.scaling;
        }
    }
    gated
}

/// Checks the shared-Ω claim on the deterministic substrate: every netsim
/// row's `ALIVE` count must sit within [`OMEGA_FLATNESS`] of the `S = 1`
/// baseline's, and accusations must not grow with the shard count.
fn omega_flat(rows: &[ShardRow]) -> bool {
    let Some(base) = rows
        .iter()
        .find(|r| r.substrate == "netsim" && r.shards == 1)
    else {
        return false;
    };
    rows.iter().filter(|r| r.substrate == "netsim").all(|r| {
        let drift = (r.omega_alive as f64 - base.omega_alive as f64).abs()
            / (base.omega_alive as f64).max(1.0);
        drift <= OMEGA_FLATNESS && r.omega_accuse <= base.omega_accuse
    })
}

fn row_json(row: &ShardRow) -> JsonValue {
    JsonValue::obj(vec![
        ("substrate", JsonValue::str(row.substrate)),
        ("shards", JsonValue::U64(u64::from(row.shards))),
        ("commands", JsonValue::U64(row.commands)),
        ("committed", JsonValue::U64(row.committed)),
        (
            "per_shard_decided",
            JsonValue::Arr(row.per_shard.iter().map(|&c| JsonValue::U64(c)).collect()),
        ),
        ("throughput", JsonValue::F64(row.throughput)),
        ("throughput_unit", JsonValue::str(row.unit)),
        ("latency_p50", JsonValue::U64(row.p50)),
        ("latency_p99", JsonValue::U64(row.p99)),
        ("latency_unit", JsonValue::str(row.lat_unit)),
        ("scaling", JsonValue::F64(row.scaling)),
        ("omega_alive", JsonValue::U64(row.omega_alive)),
        ("omega_accuse", JsonValue::U64(row.omega_accuse)),
    ])
}

/// **E20** — sharded multi-group throughput on every substrate: the same
/// round-robin offered load over `S ∈ {1, 2, 4, 8}` shard groups (each
/// pinned to the one-command-per-round-trip baseline), reporting per-shard
/// decided counts, the scaling ratio against `S = 1`, and netsim's Ω
/// message counters across shard counts. PASS requires netsim `S = 4`
/// scaling ≥ 2.5× **and** flat (±10%) Ω traffic 1 → 8 — the shared-Ω
/// multiplexing claim. Returns the human table and the JSON summary the
/// CLI writes as `BENCH_E20.json`.
pub fn e20_shard(n: usize, commands: u64, seed: u64) -> (Table, JsonValue) {
    let registry = Registry::new();
    let mut rows = Vec::new();
    for &s in SHARD_COUNTS {
        rows.push(netsim_run(n, commands, s, seed, &registry));
    }
    for &s in SHARD_COUNTS {
        rows.push(threadnet_run(n, commands, s, seed, &registry));
    }
    for &s in SHARD_COUNTS {
        rows.push(wirenet_run(n, commands, s, &registry));
    }
    let scaling_s4 = compute_scaling(&mut rows);
    let flat = omega_flat(&rows);
    let complete = rows.iter().all(|r| r.committed == r.commands);
    let pass = scaling_s4 >= SCALING_GATE && flat && complete;
    let mut t = Table::new(vec![
        "substrate",
        "shards",
        "committed",
        "per-shard",
        "throughput",
        "latency p50/p99",
        "scaling",
        "omega alive",
    ]);
    for row in &rows {
        t.row(vec![
            row.substrate.to_owned(),
            row.shards.to_string(),
            format!("{}/{}", row.committed, row.commands),
            row.per_shard
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            format!("{:.1} {}", row.throughput, row.unit),
            format!("{}/{} {}", row.p50, row.p99, row.lat_unit),
            format!("{:.2}x", row.scaling),
            row.omega_alive.to_string(),
        ]);
    }
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::str("e20")),
        ("seed", JsonValue::U64(seed)),
        ("n", JsonValue::U64(n as u64)),
        ("commands", JsonValue::U64(commands)),
        (
            "shard_counts",
            JsonValue::Arr(
                SHARD_COUNTS
                    .iter()
                    .map(|&s| JsonValue::U64(u64::from(s)))
                    .collect(),
            ),
        ),
        ("scaling_gate", JsonValue::F64(SCALING_GATE)),
        ("netsim_scaling_s4", JsonValue::F64(scaling_s4)),
        ("omega_flatness_bound", JsonValue::F64(OMEGA_FLATNESS)),
        ("omega_flat", JsonValue::Bool(flat)),
        ("pass", JsonValue::Bool(pass)),
        ("rows", JsonValue::Arr(rows.iter().map(row_json).collect())),
        ("metrics", JsonValue::Raw(registry.snapshot_json())),
    ]);
    (t, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance path on the deterministic substrate: four shards
    /// drain the same offered load at ≥ 2.5× the unsharded rate, with
    /// every command committed and spread over all groups.
    #[test]
    fn netsim_four_shards_beat_the_baseline() {
        let registry = Registry::new();
        let base = netsim_run(3, 240, 1, 7, &registry);
        let sharded = netsim_run(3, 240, 4, 7, &registry);
        assert_eq!(base.committed, 240, "baseline must commit the burst");
        assert_eq!(sharded.committed, 240, "sharded run must commit the burst");
        assert!(
            sharded.per_shard.iter().all(|&c| c == 60),
            "round-robin load spreads evenly: {:?}",
            sharded.per_shard
        );
        assert!(
            sharded.throughput >= SCALING_GATE * base.throughput,
            "sharded throughput {:.1} must be >= 2.5x baseline {:.1}",
            sharded.throughput,
            base.throughput
        );
    }

    /// The communication-efficiency half of the claim: eight shard groups
    /// produce the same Ω heartbeat volume as one, because the node runs
    /// one shared detector however many groups it hosts.
    #[test]
    fn omega_traffic_is_flat_across_shard_counts() {
        let registry = Registry::new();
        let one = netsim_run(3, 120, 1, 11, &registry);
        let eight = netsim_run(3, 120, 8, 11, &registry);
        assert!(one.omega_alive > 0, "heartbeats must flow");
        let drift =
            (eight.omega_alive as f64 - one.omega_alive as f64).abs() / one.omega_alive as f64;
        assert!(
            drift <= OMEGA_FLATNESS,
            "ALIVE drift {:.3} exceeds {OMEGA_FLATNESS} (S=1: {}, S=8: {})",
            drift,
            one.omega_alive,
            eight.omega_alive
        );
        assert!(eight.omega_accuse <= one.omega_accuse);
    }

    /// Same seed, same shard count, same numbers: the netsim rows are
    /// deterministic.
    #[test]
    fn netsim_rows_are_reproducible() {
        let registry = Registry::new();
        let a = netsim_run(3, 120, 2, 13, &registry);
        let b = netsim_run(3, 120, 2, 13, &registry);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.per_shard, b.per_shard);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.omega_alive, b.omega_alive);
        assert!((a.throughput - b.throughput).abs() < 1e-9);
    }

    /// The per-shard registries compose into the shared one: prefixed
    /// per-shard decided counters plus their cross-shard sum.
    #[test]
    fn per_shard_metrics_land_in_the_shared_registry() {
        let registry = Registry::new();
        let row = netsim_run(3, 120, 2, 17, &registry);
        assert_eq!(
            registry.counter_value("e20_netsim_s2_shard0_decided_total"),
            row.per_shard[0]
        );
        assert_eq!(
            registry.counter_value("e20_netsim_s2_shard1_decided_total"),
            row.per_shard[1]
        );
        assert_eq!(
            registry.counter_value("e20_netsim_s2_decided_total"),
            row.committed,
            "the unprefixed family is the cross-shard sum"
        );
    }
}
