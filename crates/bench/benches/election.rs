//! Criterion benches for the leader-election algorithms: wall-clock cost of
//! simulating a full election to stabilization, per algorithm and system
//! size. Complements experiment E3 (which counts protocol messages) with the
//! implementation's computational cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use omega::baseline::{AllToAllOmega, BroadcastSourceOmega};
use omega::{CommEffOmega, OmegaParams};

const HORIZON: u64 = 20_000;

fn bench_comm_efficient(c: &mut Criterion) {
    let mut group = c.benchmark_group("election/comm_efficient");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
                let mut sim = SimBuilder::new(n)
                    .seed(7)
                    .topology(topo)
                    .build_with(|env| CommEffOmega::new(env, OmegaParams::default()));
                sim.run_until(Instant::from_ticks(HORIZON));
                sim.stats().total_sent()
            });
        });
    }
    group.finish();
}

fn bench_broadcast_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("election/broadcast_baseline");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let topo = Topology::system_s(n, ProcessId(1), SystemSParams::default());
                let mut sim = SimBuilder::new(n)
                    .seed(7)
                    .topology(topo)
                    .build_with(|env| BroadcastSourceOmega::new(env, OmegaParams::default()));
                sim.run_until(Instant::from_ticks(HORIZON));
                sim.stats().total_sent()
            });
        });
    }
    group.finish();
}

fn bench_all_to_all_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("election/all_to_all_baseline");
    group.sample_size(10);
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = SimBuilder::new(n)
                    .seed(7)
                    .topology(Topology::all_timely(n, Duration::from_ticks(2)))
                    .build_with(|env| AllToAllOmega::new(env, OmegaParams::default()));
                sim.run_until(Instant::from_ticks(HORIZON));
                sim.stats().total_sent()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_comm_efficient,
    bench_broadcast_baseline,
    bench_all_to_all_baseline
);
criterion_main!(benches);
