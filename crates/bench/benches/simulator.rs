//! Criterion benches for the simulator substrate itself: raw event
//! throughput and per-message link-routing cost. These bound how large the
//! experiments can scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lls_primitives::{Ctx, Duration, Instant, ProcessId, Sm, TimerId};
use netsim::{LinkFate, LinkModel, SimBuilder, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A chatty machine: every tick, broadcast; count deliveries.
#[derive(Debug)]
struct Chatty {
    received: u64,
}

const TICK: TimerId = TimerId(0);

impl Sm for Chatty {
    type Msg = u64;
    type Output = ();
    type Request = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, ()>) {
        ctx.set_timer(TICK, Duration::from_ticks(1));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64, ()>, _from: ProcessId, _msg: u64) {
        self.received += 1;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64, ()>, _timer: TimerId) {
        ctx.broadcast(self.received);
        ctx.set_timer(TICK, Duration::from_ticks(1));
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/event_throughput");
    group.sample_size(10);
    let n = 10usize;
    let horizon = 2_000u64;
    // Each tick: n broadcasts of (n-1) messages = ~n(n-1) deliveries/tick.
    let events = horizon * (n * (n - 1)) as u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("n10_dense", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(n)
                .topology(Topology::all_timely(n, Duration::from_ticks(1)))
                .build_with(|_| Chatty { received: 0 });
            sim.run_until(Instant::from_ticks(horizon));
            sim.stats().total_sent()
        });
    });
    group.finish();
}

fn bench_link_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/link_routing");
    group.throughput(Throughput::Elements(10_000));
    let links = [
        ("timely", LinkModel::timely(3)),
        (
            "eventually_timely",
            LinkModel::eventually_timely(500, 3, 0.7),
        ),
        ("fair_lossy", LinkModel::fair_lossy(0.3, 2)),
        ("lossy_async", LinkModel::lossy_async(0.5, 2)),
    ];
    for (name, link) in links {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut delivered = 0u64;
                for t in 0..10_000u64 {
                    if let LinkFate::DeliverAt(_) = link.route(Instant::from_ticks(t), &mut rng) {
                        delivered += 1;
                    }
                }
                delivered
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_throughput, bench_link_routing);
criterion_main!(benches);
