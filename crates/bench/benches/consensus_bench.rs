//! Criterion benches for consensus: single-shot decision cost and
//! replicated-log steady-state commit throughput (simulated work per
//! command, complementing experiment E7's message counts).

use consensus::{Consensus, ConsensusParams, ReplicatedLog};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

fn bench_single_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus/single_shot");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
                let mut sim = SimBuilder::new(n).seed(3).topology(topo).build_with(|env| {
                    Consensus::new(env, ConsensusParams::default(), Some(env.id().0 as u64))
                });
                sim.run_until(Instant::from_ticks(40_000));
                assert!(sim.node(ProcessId(0)).decision().is_some());
            });
        });
    }
    group.finish();
}

fn bench_rsm_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus/rsm_steady_state");
    group.sample_size(10);
    let commands = 200u64;
    group.throughput(Throughput::Elements(commands));
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = SimBuilder::new(n)
                    .seed(3)
                    .topology(Topology::all_timely(n, Duration::from_ticks(2)))
                    .build_with(|env| ReplicatedLog::<u64>::new(env, ConsensusParams::default()));
                sim.run_until(Instant::from_ticks(5_000));
                for k in 0..commands {
                    sim.schedule_request(Instant::from_ticks(5_001 + 50 * k), ProcessId(0), k);
                }
                sim.run_until(Instant::from_ticks(5_000 + 50 * commands + 3_000));
                assert_eq!(sim.node(ProcessId(0)).committed_len(), commands);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_shot, bench_rsm_steady_state);
criterion_main!(benches);
