//! Lease safety properties, proptested over the adversary's knobs:
//! arbitrary clock-skew bounds, lease durations, and kill/restart
//! schedules. Two invariants must hold on *every* execution:
//!
//! 1. **No overlap in adjusted time** — a granted lease never overlaps a
//!    successor's lease: whenever a new holder acquires, every previous
//!    holder's conservative serving window has already closed. Checked
//!    two ways: by the `LeaseOverlap` watchdog and by an independent
//!    replay of the collected `LeaseAcquired` stream.
//! 2. **Restarts never resume** — a leader that crashes and recovers from
//!    its WAL never serves a lease-read on the strength of its pre-crash
//!    lease: its first post-restart lease serve is preceded by a fresh
//!    post-restart quorum acquisition (the boot blackout is what makes
//!    this true even when the process comes back within its old window).
//!
//! Alongside both, the real-time witness from the linearizability suite:
//! no read, on any schedule, observes a register older than the latest
//! write committed before it was issued.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use consensus::{ConsensusParams, LeaseParams};
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, KvResponse, Tagged};
use lls_obs::{Probe, ProbeEvent, ReadMode, Watchdog, WatchdogConfig, WatchdogProbe};
use lls_primitives::{Duration, Env, Instant, ProcessId, StorageHandle};
use netsim::{SimBuilder, Simulator, Topology};
use proptest::prelude::*;

const KEY: &str = "reg";
const WRITER: ClientId = ClientId(9);

/// A probe that appends every event to a shared vector, so properties can
/// replay the lease/read streams independently of the watchdog.
#[derive(Debug, Clone)]
struct Collect(Arc<Mutex<Vec<ProbeEvent>>>);

impl Probe for Collect {
    fn emit(&self, event: ProbeEvent) {
        self.0.lock().expect("collector poisoned").push(event);
    }
}

type Replica = KvReplica<WatchdogProbe<Collect>>;

fn params_for(duration: u64, skew: u64) -> ConsensusParams {
    ConsensusParams {
        lease: LeaseParams {
            enabled: true,
            duration: Duration::from_ticks(duration),
            skew: Duration::from_ticks(skew),
            unsafe_skew_inversion: false,
        },
        ..ConsensusParams::default()
    }
}

fn reader_at(p: ProcessId) -> ClientId {
    ClientId(100 + u64::from(p.0))
}

fn value_of(i: u64) -> String {
    format!("v{i}")
}

fn index_of(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Advances the simulation until every live node reports the same leader
/// (or the budget runs out), returning that leader.
fn settle_leader(sim: &mut Simulator<Replica>, n: usize, t: &mut u64, budget: u64) -> ProcessId {
    let cap = *t + budget;
    loop {
        let views: Vec<ProcessId> = (0..n as u32)
            .map(ProcessId)
            .filter(|&p| sim.is_alive(p))
            .map(|p| sim.node(p).omega().leader())
            .collect();
        let first = views[0];
        if views.iter().all(|&v| v == first) && sim.is_alive(first) {
            return first;
        }
        *t += 200;
        sim.run_until(Instant::from_ticks(*t));
        if *t >= cap {
            return first;
        }
    }
}

/// A read injected into the run: where, who, and when.
struct IssuedRead {
    node: ProcessId,
    client: ClientId,
    seq: u64,
    at: u64,
}

/// Schedules a read at every currently-live node.
fn read_everywhere(
    sim: &mut Simulator<Replica>,
    n: usize,
    t: u64,
    seqs: &mut BTreeMap<ProcessId, u64>,
    issued: &mut Vec<IssuedRead>,
) {
    for p in (0..n as u32).map(ProcessId) {
        if !sim.is_alive(p) {
            continue;
        }
        let seq = seqs.entry(p).or_insert(0);
        *seq += 1;
        issued.push(IssuedRead {
            node: p,
            client: reader_at(p),
            seq: *seq,
            at: t,
        });
        sim.schedule_request(
            Instant::from_ticks(t),
            p,
            Tagged {
                client: reader_at(p),
                seq: *seq,
                cmd: KvCmd::read(KEY),
            },
        );
    }
}

/// The real-time witness: a served read observing write `i` is stale iff
/// any later write had committed — anywhere — before the read was issued.
fn assert_no_stale_reads(sim: &Simulator<Replica>, issued: &[IssuedRead]) {
    let outputs = sim.outputs();
    let mut commit_at: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in outputs {
        if let KvEvent::Applied {
            client,
            seq,
            response: KvResponse::Applied { .. },
            ..
        } = &ev.output
        {
            if *client == WRITER {
                let at = commit_at.entry(*seq).or_insert(ev.at.ticks());
                *at = (*at).min(ev.at.ticks());
            }
        }
    }
    for read in issued {
        let serve = outputs.iter().find_map(|ev| match &ev.output {
            KvEvent::Applied {
                client,
                seq,
                response: KvResponse::Value { value },
                ..
            } if ev.process == read.node && *client == read.client && *seq == read.seq => {
                Some(index_of(value.as_deref()))
            }
            _ => None,
        });
        let Some(observed) = serve else { continue };
        for (&seq, &committed) in &commit_at {
            assert!(
                seq <= observed || committed > read.at,
                "stale read at {}: observed v{observed} at issue t{} but v{seq} \
                 committed at t{committed}",
                read.node,
                read.at
            );
        }
    }
}

/// Replays the collected `LeaseAcquired` stream and asserts no two
/// holders' windows ever overlap, independently of the watchdog.
fn assert_no_lease_overlap(events: &[ProbeEvent], duration: u64) {
    let mut windows: BTreeMap<ProcessId, Instant> = BTreeMap::new();
    for ev in events {
        if let ProbeEvent::LeaseAcquired {
            node, at, until, ..
        } = ev
        {
            for (holder, end) in &windows {
                assert!(
                    *holder == *node || *at >= *end,
                    "{node} acquired at {at:?} while {holder}'s lease runs to {end:?}"
                );
            }
            // The serving window never extends a full duration past the
            // quorum point: `until` is anchored at the *round start*, which
            // precedes the quorum, minus the skew margin.
            assert!(
                until.ticks() <= at.ticks() + duration,
                "window too generous: acquired {at:?}, until {until:?}, duration {duration}"
            );
            let end = windows.entry(*node).or_insert(*until);
            *end = (*end).max(*until);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Invariant 1 under arbitrary kill/restart schedules: however the
    /// leader is killed, left dead, and recovered, no two lease windows
    /// overlap, the watchdog stays silent, and no read is ever stale.
    #[test]
    fn leases_never_overlap_under_kill_restart_schedules(
        duration in 60u64..=200,
        skew in 0u64..=8,
        seed in any::<u64>(),
        schedule in proptest::collection::vec((300u64..=1_500, 100u64..=1_200), 1..=2),
    ) {
        let n = 3;
        let params = params_for(duration, skew);
        let events = Arc::new(Mutex::new(Vec::new()));
        let watchdog = Watchdog::new(n, WatchdogConfig::default());
        let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .topology(Topology::all_timely(n, Duration::from_ticks(2)))
            .build_with(|env| {
                KvReplica::with_storage_and_probe(
                    env,
                    params,
                    stores[env.id().as_usize()].clone(),
                    watchdog.probe(Collect(Arc::clone(&events))),
                )
                .expect("fresh in-memory store")
            });
        let mut t = 3_000u64;
        sim.run_until(Instant::from_ticks(t));
        let mut wseq = 0u64;
        let mut rseqs: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut issued: Vec<IssuedRead> = Vec::new();
        for (pre, dead) in schedule {
            let leader = settle_leader(&mut sim, n, &mut t, 8_000);
            wseq += 1;
            sim.schedule_request(
                Instant::from_ticks(t + 10),
                leader,
                Tagged { client: WRITER, seq: wseq, cmd: KvCmd::put(KEY, value_of(wseq)) },
            );
            read_everywhere(&mut sim, n, t + pre / 2, &mut rseqs, &mut issued);
            t += pre;
            sim.run_until(Instant::from_ticks(t));
            let victim = settle_leader(&mut sim, n, &mut t, 8_000);
            sim.kill(victim);
            read_everywhere(&mut sim, n, t + dead / 2, &mut rseqs, &mut issued);
            t += dead;
            sim.run_until(Instant::from_ticks(t));
            let env = Env::new(victim, n);
            let recovered = KvReplica::with_storage_and_probe(
                &env,
                params,
                stores[victim.as_usize()].clone(),
                watchdog.probe(Collect(Arc::clone(&events))),
            )
            .expect("recover from the victim's WAL");
            sim.restart(victim, recovered);
            t += 2_500;
            sim.run_until(Instant::from_ticks(t));
            read_everywhere(&mut sim, n, t, &mut rseqs, &mut issued);
        }
        t += 3_000;
        sim.run_until(Instant::from_ticks(t));

        prop_assert_eq!(watchdog.alarm_count(), 0, "watchdog alarms: {:?}", watchdog.alarms());
        assert_no_lease_overlap(&events.lock().expect("collector poisoned"), duration);
        assert_no_stale_reads(&sim, &issued);
    }

    /// Invariant 2: a leaseholder killed mid-lease and restarted after an
    /// arbitrary delay — possibly well inside its old serving window —
    /// never lease-serves again until a fresh quorum re-acquisition.
    #[test]
    fn restarted_leaders_never_resume_an_expired_lease(
        duration in 60u64..=200,
        skew in 0u64..=8,
        dead in 10u64..=400,
        seed in any::<u64>(),
    ) {
        let n = 3;
        let params = params_for(duration, skew);
        let events = Arc::new(Mutex::new(Vec::new()));
        let watchdog = Watchdog::new(n, WatchdogConfig::default());
        let stores: Vec<StorageHandle> = (0..n).map(|_| StorageHandle::in_memory()).collect();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .topology(Topology::all_timely(n, Duration::from_ticks(2)))
            .build_with(|env| {
                KvReplica::with_storage_and_probe(
                    env,
                    params,
                    stores[env.id().as_usize()].clone(),
                    watchdog.probe(Collect(Arc::clone(&events))),
                )
                .expect("fresh in-memory store")
            });
        let mut t = 3_000u64;
        sim.run_until(Instant::from_ticks(t));
        let holder = settle_leader(&mut sim, n, &mut t, 8_000);
        sim.schedule_request(
            Instant::from_ticks(t + 10),
            holder,
            Tagged { client: WRITER, seq: 1, cmd: KvCmd::put(KEY, value_of(1)) },
        );
        let mut rseqs: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut issued: Vec<IssuedRead> = Vec::new();
        read_everywhere(&mut sim, n, t + 200, &mut rseqs, &mut issued);
        t += 400;
        sim.run_until(Instant::from_ticks(t));
        // The holder must actually be lease-serving before the crash, or
        // the property would pass vacuously.
        {
            let collected = events.lock().expect("collector poisoned");
            prop_assume!(collected.iter().any(|e| matches!(
                e,
                ProbeEvent::ReadServed { node, mode: ReadMode::Lease, .. } if *node == holder
            )));
        }
        sim.kill(holder);
        let restart_at = t + dead;
        t = restart_at;
        sim.run_until(Instant::from_ticks(t));
        let env = Env::new(holder, n);
        let recovered = KvReplica::with_storage_and_probe(
            &env,
            params,
            stores[holder.as_usize()].clone(),
            watchdog.probe(Collect(Arc::clone(&events))),
        )
        .expect("recover from the holder's WAL");
        sim.restart(holder, recovered);
        // Pepper the restarted node with reads across the tail: inside its
        // old window, across the boot blackout, and beyond.
        for k in 0..20u64 {
            read_everywhere(&mut sim, n, t + 50 + k * 150, &mut rseqs, &mut issued);
        }
        t += 50 + 20 * 150 + 3_000;
        sim.run_until(Instant::from_ticks(t));

        // Every post-restart lease serve by the old holder is covered by a
        // *fresh* post-restart acquisition.
        let collected = events.lock().expect("collector poisoned");
        let restart = Instant::from_ticks(restart_at);
        let mut fresh_acquire: Option<Instant> = None;
        for ev in collected.iter() {
            match ev {
                ProbeEvent::LeaseAcquired { node, at, .. }
                    if *node == holder && *at >= restart =>
                {
                    fresh_acquire.get_or_insert(*at);
                }
                ProbeEvent::ReadServed { node, at, mode: ReadMode::Lease, .. }
                    if *node == holder && *at >= restart =>
                {
                    prop_assert!(
                        fresh_acquire.is_some_and(|a| a <= *at),
                        "restarted {holder} lease-served at {at:?} without a fresh \
                         post-restart acquisition (restarted at {restart:?})"
                    );
                }
                _ => {}
            }
        }
        prop_assert_eq!(watchdog.alarm_count(), 0, "watchdog alarms: {:?}", watchdog.alarms());
        assert_no_stale_reads(&sim, &issued);
    }
}
