//! Lease-read linearizability: three concurrent writer sessions and three
//! reader sessions on every substrate, with *real-time read witnesses* —
//! a read must observe the latest write that real-time-precedes it, no
//! matter which path (lease, read-index, or log) served it.
//!
//! On netsim the witness is exact: the simulator's virtual clock dates
//! every commit and every read issue, so "write `w` committed anywhere
//! before read `r` was issued" is a decidable predicate and any read
//! observing an older register position is convicted as stale. On the
//! wall-clock substrates the witness is by construction: a round's reads
//! are only issued after the round's write settled at the leader, so
//! observing an earlier round is a real-time violation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::{ConsensusParams, LeaseParams};
use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, KvResponse, Tagged};
use lls_obs::{NodeRecorders, RecordingProbe, Watchdog, WatchdogConfig, WatchdogProbe};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

/// The single register all sessions contend on.
const KEY: &str = "reg";

/// The replica under test: recorded probes routed through a watchdog, so
/// every suite also asserts the `StaleRead`/`LeaseOverlap` detectors stay
/// quiet on correct executions.
type Replica = KvReplica<WatchdogProbe<RecordingProbe>>;

fn lease_params() -> ConsensusParams {
    ConsensusParams {
        lease: LeaseParams::enabled(),
        ..ConsensusParams::default()
    }
}

/// Reader session for reads served at node `p`.
fn reader_at(p: ProcessId) -> ClientId {
    ClientId(100 + u64::from(p.0))
}

// ---------------------------------------------------------------------------
// Netsim: exact real-time witnesses on the virtual clock.
// ---------------------------------------------------------------------------

/// A read injected into the netsim run: where, who, and when.
struct IssuedRead {
    node: ProcessId,
    client: ClientId,
    seq: u64,
    at: u64,
}

/// Writer `c`'s `i`-th value — unique across the whole history, so an
/// observed value identifies exactly one write.
fn wval(c: u64, i: u64) -> String {
    format!("w{c}s{i}")
}

#[test]
fn concurrent_readers_never_observe_a_stale_register() {
    let n = 5;
    let writers: Vec<ClientId> = (1..=3).map(ClientId).collect();
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let params = lease_params();
    let mut sim = SimBuilder::new(n)
        .seed(23)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .build_with(|env| {
            KvReplica::new_with_probe(env, params, watchdog.probe(recorders.probe_for(env.id())))
        });
    sim.run_until(Instant::from_ticks(3_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    let read_nodes: Vec<ProcessId> = std::iter::once(leader)
        .chain((0..n as u32).map(ProcessId).filter(|&p| p != leader))
        .take(3)
        .collect();

    // Three writer sessions interleave 6 writes each at the leader; after
    // every write round the three reader sessions fire concurrently — at
    // times deliberately *not* aligned with the writes' settle points, so
    // reads race in-flight commits.
    let mut issued: Vec<IssuedRead> = Vec::new();
    let mut read_seqs: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let mut t = 3_000u64;
    for i in 1..=6u64 {
        for w in &writers {
            sim.schedule_request(
                Instant::from_ticks(t),
                leader,
                Tagged {
                    client: *w,
                    seq: i,
                    cmd: KvCmd::put(KEY, wval(w.0, i)),
                },
            );
            t += 40;
            for &p in &read_nodes {
                let seq = read_seqs.entry(p).or_insert(0);
                *seq += 1;
                issued.push(IssuedRead {
                    node: p,
                    client: reader_at(p),
                    seq: *seq,
                    at: t,
                });
                sim.schedule_request(
                    Instant::from_ticks(t),
                    p,
                    Tagged {
                        client: reader_at(p),
                        seq: *seq,
                        cmd: KvCmd::read(KEY),
                    },
                );
                t += 7; // co-prime with the write cadence: reads drift
                        // across every phase of the commit pipeline
            }
        }
    }
    sim.run_until(Instant::from_ticks(t + 10_000));

    // The witness. Each write's register position is its log slot; its
    // real-time commit point is the earliest tick *any* node applied it.
    let outputs = sim.outputs();
    let mut slot_of: BTreeMap<String, u64> = BTreeMap::new();
    let mut commit_at: BTreeMap<String, u64> = BTreeMap::new();
    for ev in outputs {
        if let KvEvent::Applied {
            client,
            seq,
            slot,
            response: KvResponse::Applied { .. },
        } = &ev.output
        {
            if writers.contains(client) {
                let v = wval(client.0, *seq);
                slot_of.entry(v.clone()).or_insert(*slot);
                let at = commit_at.entry(v).or_insert(ev.at.ticks());
                *at = (*at).min(ev.at.ticks());
            }
        }
    }
    assert_eq!(slot_of.len(), 18, "all 18 writes must commit");

    let mut served = 0u64;
    for read in &issued {
        let serve = outputs.iter().find_map(|ev| match &ev.output {
            KvEvent::Applied {
                client,
                seq,
                response: KvResponse::Value { value },
                ..
            } if ev.process == read.node && *client == read.client && *seq == read.seq => {
                Some(value.clone())
            }
            _ => None,
        });
        let Some(value) = serve else { continue };
        served += 1;
        // Register position the read observed: the slot of the value it
        // returned, or "before every write" for an empty register.
        let observed: Option<u64> = value.as_ref().map(|v| {
            *slot_of
                .get(v)
                .unwrap_or_else(|| panic!("read fabricated a value: {v:?}"))
        });
        // Real-time obligation: no write with a later register position
        // may have committed anywhere before this read was issued.
        for (v, &slot) in &slot_of {
            if observed.is_none_or(|o| slot > o) && commit_at[v] <= read.at {
                panic!(
                    "stale read at {} ({:?} seq {}): observed {:?} (pos {observed:?}) \
                     but {v:?} (slot {slot}) committed at t{} <= issue t{}",
                    read.node, read.client, read.seq, value, commit_at[v], read.at
                );
            }
        }
    }
    assert!(
        served >= issued.len() as u64 / 2,
        "most reads must settle ({served}/{})",
        issued.len()
    );
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
    // And the replicas converge on one final register.
    let reference = sim.node(ProcessId(0)).state().get(KEY).map(str::to_owned);
    assert!(reference.is_some());
    for p in (1..n as u32).map(ProcessId) {
        assert_eq!(
            sim.node(p).state().get(KEY).map(str::to_owned),
            reference,
            "p{p} diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Wall clock: freshness by construction (settle-then-read rounds).
// ---------------------------------------------------------------------------

/// Round `r`'s register value; [`round_of`] is its inverse.
fn rval(r: u64) -> String {
    format!("r{r}")
}

fn round_of(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.strip_prefix('r'))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Maps a cluster's latest outputs to the per-node leader view
/// [`await_unanimity`] polls.
fn leader_view(latest: Vec<Option<KvEvent>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(KvEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Quiescence polling (no fixed sleeps): waits until every member reports
/// the same leader and that agreement holds for a stability window.
fn await_unanimity(
    latest: impl Fn() -> Vec<Option<ProcessId>>,
    members: &[ProcessId],
    timeout: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let outs = latest();
        let views: Vec<Option<ProcessId>> = members.iter().map(|p| outs[p.as_usize()]).collect();
        let unanimous = views
            .first()
            .and_then(|o| *o)
            .filter(|first| views.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= StdDuration::from_millis(150) {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Polls `poll` until it yields, re-invoking `reissue` on a client-style
/// retry cadence (a forwarded read-index may race a leader change and
/// drop; the retry is the liveness story, exactly as for a real client).
fn await_settle(
    poll: impl Fn() -> Option<KvResponse>,
    reissue: impl Fn(),
    timeout: StdDuration,
) -> Option<KvResponse> {
    let deadline = StdInstant::now() + timeout;
    let mut last_issue = StdInstant::now();
    loop {
        if let Some(r) = poll() {
            return Some(r);
        }
        if StdInstant::now() > deadline {
            return None;
        }
        if last_issue.elapsed() >= StdDuration::from_millis(400) {
            reissue();
            last_issue = StdInstant::now();
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

/// First settlement of `(client, seq)` observed at `node` on the thread
/// mesh (the full output log is scannable live).
fn find_threadnet(
    cluster: &Cluster<Replica>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    cluster
        .outputs_so_far()
        .into_iter()
        .find_map(|t| match t.output {
            KvEvent::Applied {
                client: c,
                seq: s,
                response,
                ..
            } if t.process == node && c == client && s == seq => Some(response),
            _ => None,
        })
}

/// Settlement of `(client, seq)` at `node` over TCP, read off the node's
/// latest output (the round workload keeps one op in flight per node).
fn find_wirenet(
    cluster: &WireCluster<Replica>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    match cluster.latest_outputs().into_iter().nth(node.as_usize())? {
        Some(KvEvent::Applied {
            client: c,
            seq: s,
            response,
            ..
        }) if c == client && s == seq => Some(response),
        _ => None,
    }
}

/// One read's verdict against the round-based witness: round `r`'s reads
/// are issued only after write `r` settled, so observing an older round
/// is a real-time violation.
fn judge(round: u64, node: ProcessId, response: Option<KvResponse>) -> bool {
    match response {
        Some(KvResponse::Value { value }) => {
            assert!(
                round_of(value.as_deref()) >= round,
                "stale read at {node}: observed {value:?} after write {round} settled"
            );
            true
        }
        // A deduped retry: settled, but its value is unobservable.
        Some(_) => true,
        None => false,
    }
}

#[test]
fn threadnet_rounds_stay_fresh_across_a_leader_kill() {
    let n = 5;
    let rounds = 6u64;
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed: 23,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        KvReplica::new_with_probe(
            env,
            lease_params(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    });
    let mut alive: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let mut served = 0u64;
    let mut leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
    for round in 1..=rounds {
        if round == rounds / 2 + 1 {
            if let Some(victim) = leader {
                cluster.crash(victim);
                alive.retain(|p| *p != victim);
            }
            leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
        }
        let Some(l) = leader else {
            panic!("no leader settled for round {round}")
        };
        // Rotate the writing session: three writers share the register.
        let writer = ClientId(1 + (round - 1) % 3);
        let wseq = round.div_ceil(3);
        let write = Tagged {
            client: writer,
            seq: wseq,
            cmd: KvCmd::put(KEY, rval(round)),
        };
        cluster.request(l, write.clone());
        if await_settle(
            || find_threadnet(&cluster, l, writer, wseq),
            || cluster.request(l, write.clone()),
            timeout,
        )
        .is_none()
        {
            continue; // Unsettled write: this round's reads cannot be judged.
        }
        // Three reader sessions: the leaseholder plus two followers.
        for &node in alive
            .iter()
            .filter(|&&p| p == l)
            .chain(alive.iter().filter(|&&p| p != l).take(2))
        {
            let read = Tagged {
                client: reader_at(node),
                seq: round,
                cmd: KvCmd::read(KEY),
            };
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_threadnet(&cluster, node, reader_at(node), round),
                || cluster.request(node, read.clone()),
                timeout,
            );
            if judge(round, node, response) {
                served += 1;
            }
        }
    }
    cluster.stop();
    assert!(served > 0, "some reads must settle");
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
}

#[test]
fn wirenet_rounds_stay_fresh_across_a_leader_kill() {
    let n = 3;
    let rounds = 4u64;
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let Ok(mut cluster) = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        KvReplica::new_with_probe(
            env,
            lease_params(),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    }) else {
        eprintln!("skipping: cannot bind 127.0.0.1 listeners in this sandbox");
        return;
    };
    let mut alive: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let mut served = 0u64;
    let mut leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
    for round in 1..=rounds {
        if round == rounds / 2 + 1 {
            if let Some(victim) = leader {
                cluster.kill(victim);
                alive.retain(|p| *p != victim);
            }
            leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &alive, timeout);
        }
        let Some(l) = leader else {
            panic!("no leader settled for round {round}")
        };
        let writer = ClientId(1 + (round - 1) % 3);
        let wseq = round.div_ceil(3);
        let write = Tagged {
            client: writer,
            seq: wseq,
            cmd: KvCmd::put(KEY, rval(round)),
        };
        cluster.request(l, write.clone());
        if await_settle(
            || find_wirenet(&cluster, l, writer, wseq),
            || cluster.request(l, write.clone()),
            timeout,
        )
        .is_none()
        {
            continue;
        }
        for &node in alive
            .iter()
            .filter(|&&p| p == l)
            .chain(alive.iter().filter(|&&p| p != l).take(2))
        {
            let read = Tagged {
                client: reader_at(node),
                seq: round,
                cmd: KvCmd::read(KEY),
            };
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_wirenet(&cluster, node, reader_at(node), round),
                || cluster.request(node, read.clone()),
                timeout,
            );
            if judge(round, node, response) {
                served += 1;
            }
        }
    }
    cluster.stop();
    assert!(served > 0, "some reads must settle");
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
}
