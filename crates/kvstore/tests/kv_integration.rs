//! Replicated KV store end-to-end: convergence, exactly-once retries,
//! failover, and linearizable-prefix agreement across replicas.

use std::collections::BTreeMap;

use consensus::ConsensusParams;
use kvstore::{ClientId, KvClient, KvCmd, KvEvent, KvReplica, KvResponse, SubmitQueue, Tagged};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};

fn tag(client: u64, seq: u64, cmd: KvCmd) -> Tagged<KvCmd> {
    Tagged {
        client: ClientId(client),
        seq,
        cmd,
    }
}

#[test]
fn replicas_converge_to_identical_stores_under_loss() {
    let n = 5;
    let topo = Topology::system_s(n, ProcessId(0), SystemSParams::default());
    let mut sim = SimBuilder::new(n)
        .seed(3)
        .topology(topo)
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
    // Find the stable leader, then run a workload against it.
    sim.run_until(Instant::from_ticks(15_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    let workload = [
        tag(1, 1, KvCmd::put("a", "1")),
        tag(1, 2, KvCmd::put("b", "2")),
        tag(2, 1, KvCmd::put("a", "3")),
        tag(1, 3, KvCmd::delete("b")),
        tag(2, 2, KvCmd::cas("a", Some("3"), "4")),
    ];
    for (i, cmd) in workload.iter().enumerate() {
        sim.schedule_request(
            Instant::from_ticks(15_100 + 300 * i as u64),
            leader,
            cmd.clone(),
        );
    }
    sim.run_until(Instant::from_ticks(80_000));

    let reference: Vec<(String, String)> = sim
        .node(ProcessId(0))
        .state()
        .iter()
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    assert_eq!(reference, vec![("a".to_owned(), "4".to_owned())]);
    for p in 1..n as u32 {
        let store: Vec<(String, String)> = sim
            .node(ProcessId(p))
            .state()
            .iter()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        assert_eq!(store, reference, "replica p{p} diverged");
    }
}

#[test]
fn client_retries_are_exactly_once() {
    let n = 3;
    let mut sim = SimBuilder::new(n)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(2_000));
    let leader = sim.node(ProcessId(0)).omega().leader();
    // A client that retries every command three times (as it would after
    // timeouts in a real deployment).
    let mut t = 2_100;
    for seq in 1..=4u64 {
        for _retry in 0..3 {
            sim.schedule_request(
                Instant::from_ticks(t),
                leader,
                tag(7, seq, KvCmd::put("ctr", seq.to_string())),
            );
            t += 120;
        }
    }
    sim.run_until(Instant::from_ticks(30_000));
    for p in (0..n as u32).map(ProcessId) {
        let state = sim.node(p).state();
        assert_eq!(state.get("ctr"), Some("4"), "p{p} wrong final value");
        assert_eq!(state.applied_count(), 4, "p{p} applied retries");
        assert_eq!(state.duplicate_count(), 8, "p{p} missed duplicates");
        assert_eq!(state.session_seq(ClientId(7)), Some(4));
    }
}

#[test]
fn store_survives_leader_failover_without_double_apply() {
    let n = 5;
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(1)],
        SystemSParams {
            gst: 100,
            ..SystemSParams::default()
        },
    );
    let mut sim = SimBuilder::new(n)
        .seed(11)
        .topology(topo)
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(8_000));
    let first = sim.node(ProcessId(2)).omega().leader();
    for seq in 1..=3u64 {
        sim.schedule_request(
            Instant::from_ticks(8_100 + 200 * seq),
            first,
            tag(1, seq, KvCmd::put(format!("k{seq}"), "pre")),
        );
    }
    sim.run_until(Instant::from_ticks(20_000));
    sim.crash_now(first);
    sim.run_until(Instant::from_ticks(60_000));
    let survivor = (0..n as u32)
        .map(ProcessId)
        .filter(|&p| p != first)
        .find(|&p| sim.node(p).omega().leader() == p)
        .expect("someone must lead");
    // The client retries its last command against the new leader, plus new
    // traffic.
    sim.schedule_request(
        Instant::from_ticks(60_100),
        survivor,
        tag(1, 3, KvCmd::put("k3", "pre")), // retry: must be deduped
    );
    sim.schedule_request(
        Instant::from_ticks(60_300),
        survivor,
        tag(1, 4, KvCmd::put("k4", "post")),
    );
    sim.run_until(Instant::from_ticks(120_000));

    for p in (0..n as u32).map(ProcessId).filter(|&p| p != first) {
        let state = sim.node(p).state();
        for k in ["k1", "k2", "k3"] {
            assert_eq!(state.get(k), Some("pre"), "p{p} lost {k}");
        }
        assert_eq!(state.get("k4"), Some("post"));
        assert_eq!(
            state.session_seq(ClientId(1)),
            Some(4),
            "p{p} session drift"
        );
    }
}

/// Satellite regression: a [`SubmitQueue`] with retry backoff enabled,
/// driven against a cluster whose leader is killed while half the window
/// is still in flight, must settle every submitted command exactly once —
/// the queue's jittered re-submission gets the survivors to the new
/// leader, and the replicas' session tables suppress the duplicates.
#[test]
fn mid_window_leader_kill_settles_every_command_exactly_once() {
    let n = 5;
    let total = 10u64;
    let topo = Topology::system_s_multi(
        n,
        &[ProcessId(0), ProcessId(1)],
        SystemSParams {
            gst: 100,
            ..SystemSParams::default()
        },
    );
    let mut sim = SimBuilder::new(n)
        .seed(17)
        .topology(topo)
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(8_000));
    let first = sim.node(ProcessId(2)).omega().leader();

    let mut client = KvClient::new(ClientId(9));
    let mut queue = SubmitQueue::new(4);
    queue.set_retry_backoff(500, 0xfeed);
    for i in 0..total {
        queue.submit(client.issue(KvCmd::put(format!("k{i}"), format!("v{i}"))));
    }

    let mut leader = first;
    let mut killed = false;
    let mut settled: BTreeMap<u64, u32> = BTreeMap::new();
    let mut seen_outputs = 0usize;
    let slice = 100u64;
    let mut now = 8_000u64;
    while now < 200_000 && !(queue.is_idle() && killed) {
        // Deliver whatever the window (or a due retry round) admits.
        for cmd in queue.drain() {
            sim.schedule_request(Instant::from_ticks(now + 1), leader, cmd);
        }
        for _ in 0..slice {
            for cmd in queue.on_tick() {
                sim.schedule_request(Instant::from_ticks(now + 1), leader, cmd);
            }
        }
        now += slice;
        sim.run_until(Instant::from_ticks(now));
        // Kill the first leader while the window is half in flight.
        if !killed && queue.released_len() >= 2 && settled.len() >= 2 {
            sim.crash_now(first);
            killed = true;
        }
        // Route replies (any replica's view; duplicates settle nothing).
        let outputs = sim.outputs();
        for ev in &outputs[seen_outputs..] {
            if let KvEvent::Applied {
                client,
                seq,
                response,
                ..
            } = &ev.output
            {
                if queue.settle(*client, *seq, response).is_some() {
                    *settled.entry(*seq).or_default() += 1;
                }
            }
        }
        seen_outputs = outputs.len();
        // Track the survivors' leader; hand the queue the change exactly
        // once per switch.
        let probe_node = if first == ProcessId(2) {
            ProcessId(3)
        } else {
            ProcessId(2)
        };
        let believed = sim.node(probe_node).omega().leader();
        if believed != leader && sim.is_alive(believed) {
            leader = believed;
            queue.on_leader_change();
        }
    }

    assert!(killed, "the fault must actually fire");
    assert!(
        queue.is_idle(),
        "every command must settle: {} queued, {} in flight",
        queue.queued_len(),
        queue.released_len()
    );
    let counts: Vec<u32> = (1..=total)
        .map(|s| settled.get(&s).copied().unwrap_or(0))
        .collect();
    assert_eq!(
        counts,
        vec![1; total as usize],
        "each command settles exactly once"
    );
    // And the survivors agree on the full workload.
    for p in (0..n as u32).map(ProcessId).filter(|&p| p != first) {
        let state = sim.node(p).state();
        for i in 0..total {
            assert_eq!(
                state.get(&format!("k{i}")),
                Some(format!("v{i}").as_str()),
                "p{p} lost k{i}"
            );
        }
        assert_eq!(state.session_seq(ClientId(9)), Some(total));
    }
}

#[test]
fn applied_events_report_responses_in_slot_order() {
    let n = 3;
    let mut sim = SimBuilder::new(n)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .request_at(
            Instant::from_ticks(500),
            ProcessId(0),
            tag(1, 1, KvCmd::put("x", "1")),
        )
        .request_at(
            Instant::from_ticks(700),
            ProcessId(0),
            tag(1, 2, KvCmd::cas("x", Some("nope"), "2")),
        )
        .request_at(
            Instant::from_ticks(900),
            ProcessId(0),
            tag(1, 2, KvCmd::cas("x", Some("nope"), "2")),
        )
        .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
    sim.run_until(Instant::from_ticks(10_000));
    let applied: Vec<(u64, KvResponse)> = sim
        .outputs()
        .iter()
        .filter(|e| e.process == ProcessId(0))
        .filter_map(|e| match &e.output {
            KvEvent::Applied { slot, response, .. } => Some((*slot, response.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(applied.len(), 3);
    assert!(matches!(applied[0], (0, KvResponse::Applied { .. })));
    assert!(matches!(
        applied[1],
        (1, KvResponse::CasFailed { ref actual }) if actual.as_deref() == Some("1")
    ));
    assert!(matches!(applied[2], (2, KvResponse::Duplicate)));
    // Slots strictly increase.
    assert!(applied.windows(2).all(|w| w[0].0 < w[1].0));
}
