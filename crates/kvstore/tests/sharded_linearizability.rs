//! Cross-shard linearizability for the sharded KV node, on all three
//! substrates. Each key is a monotone register owned by one writer
//! session and routed to whatever shard its hash lands on; reads go down
//! the sharded fast path (lease-read or read-index per shard) and must
//! observe the latest write that real-time-precedes them.
//!
//! The wall-clock substrates use *quiescence polling* throughout — every
//! wait polls for an observable settlement (unanimous leader view, a
//! specific `(client, seq)` settle) with client-style retries, never a
//! fixed sleep — so the suites are immune to scheduler jitter.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use consensus::shard::{PlacementManager, PlacementMap, ShardId};
use consensus::{ConsensusParams, LeaseParams};
use kvstore::{ClientId, KvCmd, KvResponse, ShardedKvEvent, ShardedKvNode, Tagged};
use lls_obs::{NodeRecorders, RecordingProbe, Watchdog, WatchdogConfig, WatchdogProbe};
use lls_primitives::{Duration, Instant, ProcessId};
use netsim::{SimBuilder, Topology};
use threadnet::{Cluster, NetConfig};
use wirenet::{BackoffConfig, WireCluster, WireConfig};

/// One register per writer session: writer `1 + i` owns `KEYS[i]`.
const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

const SHARDS: u32 = 4;

type Node = ShardedKvNode<WatchdogProbe<RecordingProbe>>;

fn lease_params() -> ConsensusParams {
    ConsensusParams {
        lease: LeaseParams::enabled(),
        ..ConsensusParams::default()
    }
}

fn placement(n: usize) -> PlacementManager {
    PlacementManager::with_all_attached(PlacementMap::uniform(SHARDS, n))
}

fn writer_of(key_idx: usize) -> ClientId {
    ClientId(1 + key_idx as u64)
}

fn reader_at(p: ProcessId) -> ClientId {
    ClientId(100 + u64::from(p.0))
}

fn value_of(i: u64) -> String {
    format!("v{i}")
}

fn index_of(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Netsim: exact per-key real-time witnesses.
// ---------------------------------------------------------------------------

struct IssuedRead {
    node: ProcessId,
    client: ClientId,
    seq: u64,
    key_idx: usize,
    at: u64,
}

#[test]
fn cross_shard_reads_respect_per_key_real_time() {
    let n = 3;
    let writes_per_key = 5u64;
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let params = lease_params();
    let mut sim = SimBuilder::new(n)
        .seed(29)
        .topology(Topology::all_timely(n, Duration::from_ticks(2)))
        .build_with(|env| {
            ShardedKvNode::new_with_probe(
                env,
                params,
                placement(n),
                watchdog.probe(recorders.probe_for(env.id())),
            )
        });
    sim.run_until(Instant::from_ticks(3_000));
    let leader = sim.node(ProcessId(0)).omega().leader();

    // Interleave the three writers' streams with reads on every key at
    // every node, at a cadence co-prime with the write cadence so reads
    // race commits in every shard.
    let mut issued: Vec<IssuedRead> = Vec::new();
    let mut read_seqs: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let mut t = 3_000u64;
    for i in 1..=writes_per_key {
        for (k, key) in KEYS.iter().enumerate() {
            sim.schedule_request(
                Instant::from_ticks(t),
                leader,
                Tagged {
                    client: writer_of(k),
                    seq: i,
                    cmd: KvCmd::put(*key, value_of(i)),
                },
            );
            t += 40;
            for p in (0..n as u32).map(ProcessId) {
                let seq = read_seqs.entry(p).or_insert(0);
                *seq += 1;
                issued.push(IssuedRead {
                    node: p,
                    client: reader_at(p),
                    seq: *seq,
                    key_idx: k,
                    at: t,
                });
                sim.schedule_request(
                    Instant::from_ticks(t),
                    p,
                    Tagged {
                        client: reader_at(p),
                        seq: *seq,
                        cmd: KvCmd::read(*key),
                    },
                );
                t += 7;
            }
        }
    }
    sim.run_until(Instant::from_ticks(t + 10_000));

    // Per-key witness: earliest commit tick of each (key, index) anywhere.
    let outputs = sim.outputs();
    let mut commit_at: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for ev in outputs {
        if let ShardedKvEvent::Applied {
            client,
            seq,
            response: KvResponse::Applied { .. },
            ..
        } = &ev.output
        {
            if (1..=KEYS.len() as u64).contains(&client.0) {
                let k = (client.0 - 1) as usize;
                let at = commit_at.entry((k, *seq)).or_insert(ev.at.ticks());
                *at = (*at).min(ev.at.ticks());
            }
        }
    }
    assert_eq!(
        commit_at.len(),
        KEYS.len() * writes_per_key as usize,
        "every write must commit"
    );
    let mut served = 0u64;
    for read in &issued {
        let serve = outputs.iter().find_map(|ev| match &ev.output {
            ShardedKvEvent::Applied {
                client,
                seq,
                response: KvResponse::Value { value },
                ..
            } if ev.process == read.node && *client == read.client && *seq == read.seq => {
                Some(index_of(value.as_deref()))
            }
            _ => None,
        });
        let Some(observed) = serve else { continue };
        served += 1;
        for i in observed + 1..=writes_per_key {
            if let Some(&committed) = commit_at.get(&(read.key_idx, i)) {
                assert!(
                    committed > read.at,
                    "stale read of {:?} at {}: observed v{observed} at issue t{} \
                     but v{i} committed at t{committed}",
                    KEYS[read.key_idx],
                    read.node,
                    read.at
                );
            }
        }
    }
    assert!(
        served >= issued.len() as u64 / 2,
        "most reads must settle ({served}/{})",
        issued.len()
    );
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
    // Every shard's store agrees across the replicas.
    for s in 0..SHARDS {
        let shard = ShardId(s);
        let reference: Vec<(String, String)> = sim
            .node(ProcessId(0))
            .state(shard)
            .expect("attached")
            .iter()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        for p in (1..n as u32).map(ProcessId) {
            let store: Vec<(String, String)> = sim
                .node(p)
                .state(shard)
                .expect("attached")
                .iter()
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .collect();
            assert_eq!(store, reference, "shard {s} diverged at p{p}");
        }
    }
}

// ---------------------------------------------------------------------------
// Wall clock: quiescence polling, never fixed sleeps.
// ---------------------------------------------------------------------------

fn leader_view(latest: Vec<Option<ShardedKvEvent>>) -> Vec<Option<ProcessId>> {
    latest
        .into_iter()
        .map(|o| match o {
            Some(ShardedKvEvent::Leader(l)) => Some(l),
            _ => None,
        })
        .collect()
}

/// Waits until every member reports the same leader and the agreement
/// holds for a stability window — polling, not sleeping a fixed guess.
fn await_unanimity(
    latest: impl Fn() -> Vec<Option<ProcessId>>,
    members: &[ProcessId],
    timeout: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let outs = latest();
        let views: Vec<Option<ProcessId>> = members.iter().map(|p| outs[p.as_usize()]).collect();
        let unanimous = views
            .first()
            .and_then(|o| *o)
            .filter(|first| views.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= StdDuration::from_millis(150) {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Polls until `(client, seq)` settles, re-issuing on a retry cadence.
fn await_settle(
    poll: impl Fn() -> Option<KvResponse>,
    reissue: impl Fn(),
    timeout: StdDuration,
) -> Option<KvResponse> {
    let deadline = StdInstant::now() + timeout;
    let mut last_issue = StdInstant::now();
    loop {
        if let Some(r) = poll() {
            return Some(r);
        }
        if StdInstant::now() > deadline {
            return None;
        }
        if last_issue.elapsed() >= StdDuration::from_millis(400) {
            reissue();
            last_issue = StdInstant::now();
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
}

fn find_threadnet(
    cluster: &Cluster<Node>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    cluster
        .outputs_so_far()
        .into_iter()
        .find_map(|t| match t.output {
            ShardedKvEvent::Applied {
                client: c,
                seq: s,
                response,
                ..
            } if t.process == node && c == client && s == seq => Some(response),
            _ => None,
        })
}

fn find_wirenet(
    cluster: &WireCluster<Node>,
    node: ProcessId,
    client: ClientId,
    seq: u64,
) -> Option<KvResponse> {
    match cluster.latest_outputs().into_iter().nth(node.as_usize())? {
        Some(ShardedKvEvent::Applied {
            client: c,
            seq: s,
            response,
            ..
        }) if c == client && s == seq => Some(response),
        _ => None,
    }
}

/// Per-shard prefix agreement over the stop report: every node's applied
/// command sequence for each shard must equal a prefix of the longest
/// node's sequence (linearizable-prefix agreement, per shard).
type AppliedSeq = Vec<(u64, ClientId, u64)>;

fn assert_prefix_agreement(per_node: &BTreeMap<ProcessId, Vec<(u32, u64, ClientId, u64)>>) {
    let mut per_shard: BTreeMap<u32, Vec<AppliedSeq>> = BTreeMap::new();
    for applied in per_node.values() {
        let mut shards: BTreeMap<u32, AppliedSeq> = BTreeMap::new();
        for &(shard, slot, client, seq) in applied {
            shards.entry(shard).or_default().push((slot, client, seq));
        }
        for (shard, mut seq) in shards {
            seq.sort_unstable();
            per_shard.entry(shard).or_default().push(seq);
        }
    }
    for (shard, sequences) in per_shard {
        let longest = sequences
            .iter()
            .max_by_key(|s| s.len())
            .cloned()
            .unwrap_or_default();
        for seq in &sequences {
            assert_eq!(
                &longest[..seq.len()],
                seq.as_slice(),
                "shard {shard}: a node's applied sequence is not a prefix"
            );
        }
    }
}

/// One wall-clock round workload: `writes_per_key` settled writes per key
/// at the unanimous leader, a read of every key at every node after its
/// final write, then per-shard prefix agreement over the stop report.
fn assert_threadnet_cross_shard(n: usize, writes_per_key: u64) {
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = NetConfig {
        n,
        loss: 0.0,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(500),
        tick: StdDuration::from_millis(1),
        seed: 29,
    };
    let cluster = Cluster::spawn_traced(config, recorders.clocks(), |env| {
        ShardedKvNode::new_with_probe(
            env,
            lease_params(),
            placement(n),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    });
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &all, timeout)
        .expect("a leader must settle");
    for i in 1..=writes_per_key {
        for (k, key) in KEYS.iter().enumerate() {
            let write = Tagged {
                client: writer_of(k),
                seq: i,
                cmd: KvCmd::put(*key, value_of(i)),
            };
            cluster.request(leader, write.clone());
            assert!(
                await_settle(
                    || find_threadnet(&cluster, leader, writer_of(k), i),
                    || cluster.request(leader, write.clone()),
                    timeout,
                )
                .is_some(),
                "write {i} to {key:?} must settle"
            );
        }
    }
    // Freshness: every node, every key, must now observe the final index.
    for (k, key) in KEYS.iter().enumerate() {
        let rseq = (k + 1) as u64;
        for &node in &all {
            let read = Tagged {
                client: reader_at(node),
                seq: rseq,
                cmd: KvCmd::read(*key),
            };
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_threadnet(&cluster, node, reader_at(node), rseq),
                || cluster.request(node, read.clone()),
                timeout,
            );
            match response {
                Some(KvResponse::Value { value }) => assert_eq!(
                    index_of(value.as_deref()),
                    writes_per_key,
                    "{key:?} at {node}: must observe the final write"
                ),
                other => panic!("read of {key:?} at {node} did not settle: {other:?} ({k})"),
            }
        }
    }
    let report = cluster.stop();
    let mut per_node: BTreeMap<ProcessId, Vec<(u32, u64, ClientId, u64)>> = BTreeMap::new();
    for o in &report.outputs {
        if let ShardedKvEvent::Applied {
            shard,
            slot,
            client,
            seq,
            ..
        } = &o.output
        {
            if client.0 <= KEYS.len() as u64 {
                per_node
                    .entry(o.process)
                    .or_default()
                    .push((shard.0, *slot, *client, *seq));
            }
        }
    }
    assert_prefix_agreement(&per_node);
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
}

#[test]
fn threadnet_cross_shard_settles_by_quiescence_polling() {
    assert_threadnet_cross_shard(3, 4);
}

#[test]
fn wirenet_cross_shard_settles_by_quiescence_polling() {
    let n = 3;
    let writes_per_key = 3u64;
    let recorders = Arc::new(NodeRecorders::new(n, 256));
    let watchdog = Watchdog::with_recorders(WatchdogConfig::default(), Arc::clone(&recorders));
    let config = WireConfig {
        n,
        tick: StdDuration::from_millis(1),
        queue_capacity: 1024,
        backoff: BackoffConfig::default(),
        faults: None,
    };
    let Ok(cluster) = WireCluster::try_spawn_traced(config, recorders.clocks(), |env| {
        ShardedKvNode::new_with_probe(
            env,
            lease_params(),
            placement(n),
            watchdog.probe(recorders.probe_for(env.id())),
        )
    }) else {
        eprintln!("skipping: cannot bind 127.0.0.1 listeners in this sandbox");
        return;
    };
    let all: Vec<ProcessId> = (0..n as u32).map(ProcessId).collect();
    let timeout = StdDuration::from_secs(10);
    let leader = await_unanimity(|| leader_view(cluster.latest_outputs()), &all, timeout)
        .expect("a leader must settle");
    for i in 1..=writes_per_key {
        for (k, key) in KEYS.iter().enumerate() {
            let write = Tagged {
                client: writer_of(k),
                seq: i,
                cmd: KvCmd::put(*key, value_of(i)),
            };
            cluster.request(leader, write.clone());
            assert!(
                await_settle(
                    || find_wirenet(&cluster, leader, writer_of(k), i),
                    || cluster.request(leader, write.clone()),
                    timeout,
                )
                .is_some(),
                "write {i} to {key:?} must settle"
            );
        }
    }
    for (k, key) in KEYS.iter().enumerate() {
        let rseq = (k + 1) as u64;
        for &node in &all {
            let read = Tagged {
                client: reader_at(node),
                seq: rseq,
                cmd: KvCmd::read(*key),
            };
            cluster.request(node, read.clone());
            let response = await_settle(
                || find_wirenet(&cluster, node, reader_at(node), rseq),
                || cluster.request(node, read.clone()),
                timeout,
            );
            match response {
                Some(KvResponse::Value { value }) => assert_eq!(
                    index_of(value.as_deref()),
                    writes_per_key,
                    "{key:?} at {node}: must observe the final write"
                ),
                other => panic!("read of {key:?} at {node} did not settle: {other:?}"),
            }
        }
    }
    let report = cluster.stop();
    let mut per_node: BTreeMap<ProcessId, Vec<(u32, u64, ClientId, u64)>> = BTreeMap::new();
    for o in &report.outputs {
        if let ShardedKvEvent::Applied {
            shard,
            slot,
            client,
            seq,
            ..
        } = &o.output
        {
            if client.0 <= KEYS.len() as u64 {
                per_node
                    .entry(o.process)
                    .or_default()
                    .push((shard.0, *slot, *client, *seq));
            }
        }
    }
    assert_prefix_agreement(&per_node);
    assert_eq!(watchdog.alarm_count(), 0, "watchdog must stay quiet");
}
