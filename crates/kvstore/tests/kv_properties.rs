//! Property: **replication transparency** — running a random command stream
//! through the full replicated stack yields exactly the state produced by
//! applying the same stream to a single local `KvState`, at every replica.

use consensus::ConsensusParams;
use kvstore::{ClientId, KvCmd, KvReplica, KvState, Tagged};
use lls_primitives::{Instant, ProcessId};
use netsim::{SimBuilder, SystemSParams, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Cas(u8, Option<u8>, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..6).prop_map(Op::Delete),
        (0u8..6, proptest::option::of(0u8..4), 0u8..4).prop_map(|(k, e, v)| Op::Cas(k, e, v)),
    ]
}

fn to_cmd(o: &Op) -> KvCmd {
    match o {
        Op::Put(k, v) => KvCmd::put(format!("k{k}"), format!("v{v}")),
        Op::Delete(k) => KvCmd::delete(format!("k{k}")),
        Op::Cas(k, e, v) => KvCmd::cas(
            format!("k{k}"),
            e.map(|e| format!("v{e}")).as_deref(),
            format!("v{v}"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn replicated_store_equals_local_application(
        ops in proptest::collection::vec(op(), 1..20),
        seed in any::<u64>(),
        mesh_loss in 0.0f64..0.4,
    ) {
        let n = 3;
        let topo = Topology::system_s(
            n,
            ProcessId(0),
            SystemSParams { mesh_loss, gst: 300, ..SystemSParams::default() },
        );
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .topology(topo)
            .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
        sim.run_until(Instant::from_ticks(10_000));
        let leader = sim.node(ProcessId(0)).omega().leader();
        // Guard against pathological pre-horizon churn: require a stable
        // self-believed leader before submitting.
        prop_assume!(sim.node(leader).omega().is_leader());

        let mut local = KvState::new();
        for (i, o) in ops.iter().enumerate() {
            let tagged = Tagged {
                client: ClientId(1),
                seq: i as u64 + 1,
                cmd: to_cmd(o),
            };
            local.apply(&tagged);
            sim.schedule_request(Instant::from_ticks(10_100 + 250 * i as u64), leader, tagged);
        }
        sim.run_until(Instant::from_ticks(10_100 + 250 * ops.len() as u64 + 60_000));

        let expect: Vec<(String, String)> =
            local.iter().map(|(k, v)| (k.to_owned(), v.to_owned())).collect();
        for p in (0..n as u32).map(ProcessId) {
            // Leadership must not have moved mid-workload for the comparison
            // to be exact; skip the rare cases where it did.
            prop_assume!(sim.node(leader).omega().is_leader());
            let got: Vec<(String, String)> = sim
                .node(p)
                .state()
                .iter()
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .collect();
            prop_assert_eq!(
                &got, &expect,
                "replica p{} diverged from local application", p.0
            );
        }
    }
}
