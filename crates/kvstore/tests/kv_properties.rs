//! Property: **replication transparency** — running a random command stream
//! through the full replicated stack yields exactly the state produced by
//! applying the same stream to a single local `KvState`, at every replica.

use std::collections::BTreeMap;

use consensus::shard::{PlacementManager, PlacementMap, ShardId, ShardMsg};
use consensus::{ConsensusParams, Entry, RsmMsg};
use kvstore::{ClientId, KvCmd, KvReplica, KvState, ShardedKvEvent, ShardedKvNode, Tagged};
use lls_primitives::{Ctx, Effects, Env, Instant, ProcessId, Sm, SnapshotHandle, StorageHandle};
use netsim::{SimBuilder, SystemSParams, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Cas(u8, Option<u8>, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4).prop_map(|(k, v)| Op::Put(k, v)),
        (0u8..6).prop_map(Op::Delete),
        (0u8..6, proptest::option::of(0u8..4), 0u8..4).prop_map(|(k, e, v)| Op::Cas(k, e, v)),
    ]
}

fn to_cmd(o: &Op) -> KvCmd {
    match o {
        Op::Put(k, v) => KvCmd::put(format!("k{k}"), format!("v{v}")),
        Op::Delete(k) => KvCmd::delete(format!("k{k}")),
        Op::Cas(k, e, v) => KvCmd::cas(
            format!("k{k}"),
            e.map(|e| format!("v{e}")).as_deref(),
            format!("v{v}"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn replicated_store_equals_local_application(
        ops in proptest::collection::vec(op(), 1..20),
        seed in any::<u64>(),
        mesh_loss in 0.0f64..0.4,
    ) {
        let n = 3;
        let topo = Topology::system_s(
            n,
            ProcessId(0),
            SystemSParams { mesh_loss, gst: 300, ..SystemSParams::default() },
        );
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .topology(topo)
            .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
        sim.run_until(Instant::from_ticks(10_000));
        let leader = sim.node(ProcessId(0)).omega().leader();
        // Guard against pathological pre-horizon churn: require a stable
        // self-believed leader before submitting.
        prop_assume!(sim.node(leader).omega().is_leader());

        let mut local = KvState::new();
        for (i, o) in ops.iter().enumerate() {
            let tagged = Tagged {
                client: ClientId(1),
                seq: i as u64 + 1,
                cmd: to_cmd(o),
            };
            local.apply(&tagged);
            sim.schedule_request(Instant::from_ticks(10_100 + 250 * i as u64), leader, tagged);
        }
        sim.run_until(Instant::from_ticks(10_100 + 250 * ops.len() as u64 + 60_000));

        let expect: Vec<(String, String)> =
            local.iter().map(|(k, v)| (k.to_owned(), v.to_owned())).collect();
        for p in (0..n as u32).map(ProcessId) {
            // Leadership must not have moved mid-workload for the comparison
            // to be exact; skip the rare cases where it did.
            prop_assume!(sim.node(leader).omega().is_leader());
            let got: Vec<(String, String)> = sim
                .node(p)
                .state()
                .iter()
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .collect();
            prop_assert_eq!(
                &got, &expect,
                "replica p{} diverged from local application", p.0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Property: **compaction transparency across restarts** — a sharded
    /// node that auto-compacts every `cadence` applied commands and is then
    /// killed at an arbitrary point recovers (snapshot + truncated WAL) to
    /// exactly the state of an identical twin that kept its full WAL, for
    /// arbitrary shard counts and workloads.
    #[test]
    fn sharded_recovery_from_snapshot_equals_full_wal_replay(
        ops in proptest::collection::vec(op(), 1..40),
        shards in 1u32..4,
        cadence in 1u64..8,
        kill_after in 0usize..40,
    ) {
        let n = 3;
        let env = Env::new(ProcessId(1), n);
        let map = PlacementMap::uniform(shards, n);
        let shard_ids: Vec<ShardId> = map.shard_ids().collect();
        let stores_a: BTreeMap<ShardId, StorageHandle> =
            shard_ids.iter().map(|s| (*s, StorageHandle::in_memory())).collect();
        let snaps_a: BTreeMap<ShardId, SnapshotHandle> =
            shard_ids.iter().map(|s| (*s, SnapshotHandle::in_memory())).collect();
        let omega_a = StorageHandle::in_memory();
        let stores_b: BTreeMap<ShardId, StorageHandle> =
            shard_ids.iter().map(|s| (*s, StorageHandle::in_memory())).collect();
        let omega_b = StorageHandle::in_memory();
        let kill = kill_after.min(ops.len());
        {
            let mut a = ShardedKvNode::with_storage_and_snapshots(
                &env,
                ConsensusParams::default(),
                PlacementManager::with_all_attached(map.clone()),
                &stores_a,
                &snaps_a,
                omega_a.clone(),
            ).unwrap();
            a.set_compact_every(cadence);
            let mut full = ShardedKvNode::with_storage(
                &env,
                ConsensusParams::default(),
                PlacementManager::with_all_attached(map.clone()),
                &stores_b,
                omega_b.clone(),
            ).unwrap();
            let mut fx: Effects<_, ShardedKvEvent> = Effects::new();
            let mut next_slot: BTreeMap<ShardId, u64> = BTreeMap::new();
            for (i, o) in ops[..kill].iter().enumerate() {
                let tagged = Tagged {
                    client: ClientId(1),
                    seq: i as u64 + 1,
                    cmd: to_cmd(o),
                };
                let shard = map.shard_of_key(tagged.cmd.key());
                let slot = next_slot.entry(shard).or_default();
                let msg = ShardMsg::Rsm {
                    shard,
                    msg: RsmMsg::Decide { slot: *slot, entry: Entry::Cmd(tagged) },
                };
                *slot += 1;
                for node in [&mut a, &mut full] {
                    let mut ctx = Ctx::new(&env, Instant::ZERO, &mut fx);
                    node.on_message(&mut ctx, ProcessId(0), msg.clone());
                    fx.take();
                }
            }
            // Crash both (drop without further writes).
        }
        let a2 = ShardedKvNode::<lls_obs::NoopProbe>::with_storage_and_snapshots(
            &env,
            ConsensusParams::default(),
            PlacementManager::with_all_attached(map.clone()),
            &stores_a,
            &snaps_a,
            omega_a,
        ).unwrap();
        let full2 = ShardedKvNode::<lls_obs::NoopProbe>::with_storage(
            &env,
            ConsensusParams::default(),
            PlacementManager::with_all_attached(map),
            &stores_b,
            omega_b,
        ).unwrap();
        for shard in &shard_ids {
            prop_assert_eq!(
                a2.state(*shard), full2.state(*shard),
                "shard {:?}: snapshot+tail recovery diverged from full replay", shard
            );
            let ga = a2.node().group(*shard).unwrap();
            let gb = full2.node().group(*shard).unwrap();
            prop_assert_eq!(ga.committed_len(), gb.committed_len());
            prop_assert!(
                ga.wal_stats().live_bytes <= gb.wal_stats().live_bytes,
                "compaction never inflates a shard WAL"
            );
        }
    }
}
