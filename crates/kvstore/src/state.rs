//! The deterministic state machine: a string map plus session table.

use std::collections::{BTreeMap, HashMap};

use lls_primitives::wire::{Wire, WireError, WireReader};
use serde::{Deserialize, Serialize};

use crate::command::{ClientId, KvCmd, KvResponse, Tagged};

/// The materialized store: key → value plus the per-client session table
/// that makes command application exactly-once.
///
/// Applying the same committed log prefix to two `KvState`s yields equal
/// states — the determinism that state-machine replication rests on.
///
/// # Example
///
/// ```
/// use kvstore::{ClientId, KvCmd, KvResponse, KvState, Tagged};
///
/// let mut s = KvState::new();
/// let tag = |seq, cmd| Tagged { client: ClientId(1), seq, cmd };
/// assert_eq!(
///     s.apply(&tag(1, KvCmd::put("k", "v"))),
///     KvResponse::Applied { previous: None }
/// );
/// // A retried command is a no-op.
/// assert_eq!(s.apply(&tag(1, KvCmd::put("k", "v"))), KvResponse::Duplicate);
/// assert_eq!(s.get("k"), Some("v"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvState {
    data: BTreeMap<String, String>,
    sessions: HashMap<ClientId, u64>,
    applied: u64,
    duplicates: u64,
}

impl KvState {
    /// An empty store.
    pub fn new() -> Self {
        KvState::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.data.get(key).map(String::as_str)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.data.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Commands applied (excluding duplicates).
    pub fn applied_count(&self) -> u64 {
        self.applied
    }

    /// Duplicates suppressed by the session table.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// The highest sequence number applied for `client`, if any.
    pub fn session_seq(&self, client: ClientId) -> Option<u64> {
        self.sessions.get(&client).copied()
    }

    /// Applies one tagged command with exactly-once semantics: tags at or
    /// below the client's session high-water mark are suppressed.
    pub fn apply(&mut self, tagged: &Tagged<KvCmd>) -> KvResponse {
        let high = self.sessions.get(&tagged.client).copied().unwrap_or(0);
        if tagged.seq <= high {
            self.duplicates += 1;
            return KvResponse::Duplicate;
        }
        self.sessions.insert(tagged.client, tagged.seq);
        self.applied += 1;
        match &tagged.cmd {
            KvCmd::Put { key, value } => {
                let previous = self.data.insert(key.clone(), value.clone());
                KvResponse::Applied { previous }
            }
            KvCmd::Delete { key } => {
                let previous = self.data.remove(key);
                KvResponse::Applied { previous }
            }
            KvCmd::Cas { key, expect, value } => {
                let actual = self.data.get(key).cloned();
                if actual.as_deref() == expect.as_deref() {
                    let previous = self.data.insert(key.clone(), value.clone());
                    KvResponse::Applied { previous }
                } else {
                    KvResponse::CasFailed { actual }
                }
            }
            // A log-read: the read replicated like a command (the slow
            // baseline the lease path is measured against) and resolves at
            // its slot's position in the apply order.
            KvCmd::Read { key } => KvResponse::Value {
                value: self.data.get(key).cloned(),
            },
        }
    }

    /// Serves a read directly from the materialized store, bypassing the
    /// session table — the fast-path entry point for lease reads and
    /// read-index reads, which never enter the log.
    pub fn read(&self, key: &str) -> KvResponse {
        KvResponse::Value {
            value: self.data.get(key).cloned(),
        }
    }
}

/// Canonical snapshot encoding: the session table is serialized in
/// `ClientId` order so two replicas at the same log prefix produce
/// byte-identical snapshots (the map itself iterates in hash order).
impl Wire for KvState {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(String, String)> = self
            .data
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.encode(out);
        let mut sessions: Vec<(u64, u64)> = self.sessions.iter().map(|(c, s)| (c.0, *s)).collect();
        sessions.sort_unstable();
        sessions.encode(out);
        self.applied.encode(out);
        self.duplicates.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let entries = Vec::<(String, String)>::decode(r)?;
        let sessions = Vec::<(u64, u64)>::decode(r)?;
        Ok(KvState {
            data: entries.into_iter().collect(),
            sessions: sessions
                .into_iter()
                .map(|(c, s)| (ClientId(c), s))
                .collect(),
            applied: u64::decode(r)?,
            duplicates: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(client: u64, seq: u64, cmd: KvCmd) -> Tagged<KvCmd> {
        Tagged {
            client: ClientId(client),
            seq,
            cmd,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut s = KvState::new();
        assert_eq!(
            s.apply(&tag(1, 1, KvCmd::put("a", "1"))),
            KvResponse::Applied { previous: None }
        );
        assert_eq!(
            s.apply(&tag(1, 2, KvCmd::put("a", "2"))),
            KvResponse::Applied {
                previous: Some("1".into())
            }
        );
        assert_eq!(s.get("a"), Some("2"));
        assert_eq!(
            s.apply(&tag(1, 3, KvCmd::delete("a"))),
            KvResponse::Applied {
                previous: Some("2".into())
            }
        );
        assert_eq!(s.get("a"), None);
        assert!(s.is_empty());
        assert_eq!(s.applied_count(), 3);
    }

    #[test]
    fn cas_checks_expectation() {
        let mut s = KvState::new();
        // CAS on an absent key with expect=None succeeds.
        assert_eq!(
            s.apply(&tag(1, 1, KvCmd::cas("k", None, "v1"))),
            KvResponse::Applied { previous: None }
        );
        // Wrong expectation fails and changes nothing.
        assert_eq!(
            s.apply(&tag(1, 2, KvCmd::cas("k", Some("zzz"), "v2"))),
            KvResponse::CasFailed {
                actual: Some("v1".into())
            }
        );
        assert_eq!(s.get("k"), Some("v1"));
        // Right expectation succeeds.
        assert_eq!(
            s.apply(&tag(1, 3, KvCmd::cas("k", Some("v1"), "v2"))),
            KvResponse::Applied {
                previous: Some("v1".into())
            }
        );
        assert_eq!(s.get("k"), Some("v2"));
    }

    #[test]
    fn duplicates_and_stale_seqs_are_suppressed() {
        let mut s = KvState::new();
        s.apply(&tag(1, 5, KvCmd::put("a", "x")));
        // Exact duplicate.
        assert_eq!(
            s.apply(&tag(1, 5, KvCmd::put("a", "y"))),
            KvResponse::Duplicate
        );
        // Older than the high-water mark.
        assert_eq!(
            s.apply(&tag(1, 3, KvCmd::put("a", "z"))),
            KvResponse::Duplicate
        );
        assert_eq!(s.get("a"), Some("x"));
        assert_eq!(s.duplicate_count(), 2);
        assert_eq!(s.session_seq(ClientId(1)), Some(5));
    }

    #[test]
    fn log_reads_resolve_in_apply_order_and_fast_reads_skip_sessions() {
        let mut s = KvState::new();
        s.apply(&tag(1, 1, KvCmd::put("a", "1")));
        // A replicated read sees the value and consumes a session slot.
        assert_eq!(
            s.apply(&tag(1, 2, KvCmd::read("a"))),
            KvResponse::Value {
                value: Some("1".into())
            }
        );
        assert_eq!(s.session_seq(ClientId(1)), Some(2));
        // A retried log-read deduplicates like any command.
        assert_eq!(s.apply(&tag(1, 2, KvCmd::read("a"))), KvResponse::Duplicate);
        // The fast path reads the store without touching sessions.
        assert_eq!(
            s.read("a"),
            KvResponse::Value {
                value: Some("1".into())
            }
        );
        assert_eq!(s.read("missing"), KvResponse::Value { value: None });
        assert_eq!(s.session_seq(ClientId(1)), Some(2));
    }

    #[test]
    fn sessions_are_independent_per_client() {
        let mut s = KvState::new();
        s.apply(&tag(1, 1, KvCmd::put("a", "1")));
        // A different client may reuse seq 1.
        assert_eq!(
            s.apply(&tag(2, 1, KvCmd::put("b", "2"))),
            KvResponse::Applied { previous: None }
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn snapshot_encoding_round_trips_and_is_deterministic() {
        let mut s = KvState::new();
        for client in 1..=8u64 {
            for seq in 1..=4u64 {
                s.apply(&tag(
                    client,
                    seq,
                    KvCmd::put(format!("k{client}"), format!("v{seq}")),
                ));
            }
        }
        s.apply(&tag(1, 2, KvCmd::put("k1", "stale"))); // one duplicate
        let bytes = s.to_bytes();
        let back = KvState::from_bytes(&bytes).expect("snapshot decodes");
        assert_eq!(back, s);
        assert_eq!(back.duplicate_count(), 1);
        // Two states built from the same history encode identically even
        // though the session table is a hash map.
        let mut t = KvState::new();
        for client in 1..=8u64 {
            for seq in 1..=4u64 {
                t.apply(&tag(
                    client,
                    seq,
                    KvCmd::put(format!("k{client}"), format!("v{seq}")),
                ));
            }
        }
        t.apply(&tag(1, 2, KvCmd::put("k1", "stale")));
        assert_eq!(t.to_bytes(), bytes, "canonical encoding");
    }

    #[test]
    fn identical_command_streams_yield_identical_states() {
        let stream: Vec<Tagged<KvCmd>> = vec![
            tag(1, 1, KvCmd::put("a", "1")),
            tag(2, 1, KvCmd::put("b", "2")),
            tag(1, 2, KvCmd::cas("a", Some("1"), "3")),
            tag(2, 2, KvCmd::delete("b")),
        ];
        let mut s1 = KvState::new();
        let mut s2 = KvState::new();
        for c in &stream {
            s1.apply(c);
        }
        for c in &stream {
            s2.apply(c);
        }
        assert_eq!(s1, s2);
        let entries: Vec<_> = s1.iter().collect();
        assert_eq!(entries, vec![("a", "3")]);
    }
}
