//! Client-side session handling.
//!
//! A [`KvClient`] owns one client session: it assigns the strictly
//! increasing sequence numbers that the replicas' session tables key on,
//! and re-issues exact copies for retries — the two things a caller must
//! get right for exactly-once semantics to hold. It is transport-agnostic:
//! it *mints* [`Tagged`] commands; the caller delivers them to a replica by
//! whatever means the deployment uses (`Simulator::schedule_request`,
//! `Cluster::request`, …).

use serde::{Deserialize, Serialize};

use crate::command::{ClientId, KvCmd, Tagged};

/// A client session: mints tagged commands with correct sequence numbers.
///
/// # Example
///
/// ```
/// use kvstore::{ClientId, KvClient, KvCmd, KvState};
///
/// let mut client = KvClient::new(ClientId(7));
/// let put = client.issue(KvCmd::put("k", "v"));
/// let retry = client.retry_last().expect("just issued");
/// assert_eq!(put, retry); // byte-identical: safe to resubmit
///
/// let mut state = KvState::new();
/// state.apply(&put);
/// state.apply(&retry); // suppressed as a duplicate
/// assert_eq!(state.applied_count(), 1);
///
/// let next = client.issue(KvCmd::delete("k"));
/// assert_eq!(next.seq, put.seq + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvClient {
    id: ClientId,
    next_seq: u64,
    last: Option<Tagged<KvCmd>>,
}

impl KvClient {
    /// Creates the session for `id`. Sequence numbers start at 1 (replicas
    /// treat 0 as "nothing applied yet").
    pub fn new(id: ClientId) -> Self {
        KvClient {
            id,
            next_seq: 1,
            last: None,
        }
    }

    /// The session identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The sequence number the next [`KvClient::issue`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Mints a new tagged command, consuming one sequence number.
    pub fn issue(&mut self, cmd: KvCmd) -> Tagged<KvCmd> {
        let tagged = Tagged {
            client: self.id,
            seq: self.next_seq,
            cmd,
        };
        self.next_seq += 1;
        self.last = Some(tagged.clone());
        tagged
    }

    /// An exact copy of the most recently issued command, for retries after
    /// a timeout or leader change. Returns `None` before the first
    /// [`KvClient::issue`].
    pub fn retry_last(&self) -> Option<Tagged<KvCmd>> {
        self.last.clone()
    }

    /// Resynchronizes the session after reconnecting: if a replica reports
    /// (via [`crate::KvState::session_seq`]) a higher applied sequence than
    /// we remember — e.g. the client process restarted from a stale
    /// checkpoint — fast-forward past it so new commands are not suppressed
    /// as duplicates.
    pub fn resync(&mut self, applied_seq: u64) {
        if applied_seq >= self.next_seq {
            self.next_seq = applied_seq + 1;
            self.last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_strictly_increasing() {
        let mut c = KvClient::new(ClientId(1));
        let a = c.issue(KvCmd::put("a", "1"));
        let b = c.issue(KvCmd::put("b", "2"));
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        assert_eq!(c.next_seq(), 3);
    }

    #[test]
    fn retry_is_byte_identical_and_does_not_advance() {
        let mut c = KvClient::new(ClientId(1));
        assert_eq!(c.retry_last(), None);
        let a = c.issue(KvCmd::put("a", "1"));
        assert_eq!(c.retry_last(), Some(a.clone()));
        assert_eq!(c.retry_last(), Some(a)); // idempotent
        assert_eq!(c.next_seq(), 2);
    }

    #[test]
    fn resync_fast_forwards_only() {
        let mut c = KvClient::new(ClientId(1));
        c.issue(KvCmd::put("a", "1"));
        // Replica says seq 5 already applied (stale client checkpoint).
        c.resync(5);
        assert_eq!(c.next_seq(), 6);
        assert_eq!(c.retry_last(), None, "stale retry must be dropped");
        // A lower report changes nothing.
        c.resync(2);
        assert_eq!(c.next_seq(), 6);
    }

    #[test]
    fn full_round_trip_with_state() {
        let mut c = KvClient::new(ClientId(9));
        let mut s = crate::KvState::new();
        for i in 0..5u32 {
            let cmd = c.issue(KvCmd::put(format!("k{i}"), "v"));
            s.apply(&cmd);
            // Aggressive double-submit of everything.
            s.apply(&c.retry_last().unwrap());
        }
        assert_eq!(s.applied_count(), 5);
        assert_eq!(s.duplicate_count(), 5);
        assert_eq!(s.session_seq(ClientId(9)), Some(5));
    }
}
