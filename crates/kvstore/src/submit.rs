//! Client-side submit queue for the batched throughput path.
//!
//! With pipelining and batching enabled in the log
//! ([`BatchParams`](consensus::BatchParams)), a client that fires one
//! command and waits for its reply leaves the whole pipeline idle. A
//! [`SubmitQueue`] is the client-side half of the throughput path: callers
//! [`submit`](SubmitQueue::submit) commands as fast as they are minted, the
//! queue releases up to a `window` of them to the transport
//! ([`drain`](SubmitQueue::drain)) while the rest coalesce locally, and
//! every [`KvEvent::Applied`](crate::KvEvent) coming back — one per command,
//! even when the replica decided them as a single batched slot — is routed
//! to its originating command by `(client, seq)` tag
//! ([`settle`](SubmitQueue::settle)).
//!
//! Like [`KvClient`](crate::KvClient), the queue is transport-agnostic: it
//! never sends anything itself. The caller delivers drained commands by
//! whatever means the deployment uses (`Simulator::schedule_request`,
//! `Cluster::request`, a socket) and feeds replica events back in. After a
//! leader change or timeout, [`outstanding`](SubmitQueue::outstanding)
//! re-issues exact copies of everything released but unsettled — safe to
//! resubmit because the replicas' session tables suppress duplicates.
//!
//! # Example
//!
//! ```
//! use kvstore::{ClientId, KvClient, KvCmd, KvResponse, SubmitQueue};
//!
//! let mut client = KvClient::new(ClientId(1));
//! let mut queue = SubmitQueue::new(2); // at most 2 released at once
//! for i in 0..5 {
//!     queue.submit(client.issue(KvCmd::put(format!("k{i}"), "v")));
//! }
//! let burst = queue.drain(); // -> transport
//! assert_eq!(burst.len(), 2);
//! assert_eq!(queue.queued_len(), 3); // coalescing locally
//!
//! // A decided batch comes back as per-command Applied events:
//! let done = queue.settle(ClientId(1), 1, &KvResponse::Applied { previous: None });
//! assert!(done.is_some());
//! assert_eq!(queue.drain().len(), 1); // freed window refills
//! ```

use std::collections::{BTreeMap, VecDeque};

use lls_obs::{CmdId, CmdStage, NoopProbe, Probe, ProbeEvent};
use lls_primitives::{Instant, ProcessId};

use crate::command::{ClientId, KvCmd, KvResponse, Tagged};

/// One command released to the transport and awaiting its reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Settled {
    /// The originating command, returned to the caller on completion.
    pub cmd: Tagged<KvCmd>,
    /// The replica's application outcome.
    pub response: KvResponse,
}

/// A windowed client submit queue with per-command reply routing.
///
/// Commands enter via [`SubmitQueue::submit`], at most `window` of them are
/// released to the transport by [`SubmitQueue::drain`], and each decided
/// command is matched back to its originator by [`SubmitQueue::settle`] —
/// even when many commands ride in one batched slot.
#[derive(Debug, Clone, Default)]
pub struct SubmitQueue<P: Probe = NoopProbe> {
    window: usize,
    queued: VecDeque<Tagged<KvCmd>>,
    released: BTreeMap<(ClientId, u64), Tagged<KvCmd>>,
    retry_base: u64,
    retry_seed: u64,
    ticks: u64,
    attempt: u32,
    retry_at: Option<u64>,
    // Lifecycle instrumentation: the queue is where a command's latency
    // story starts (Enqueue) and ends (Reply), so it stamps both stages
    // through the same probe plane the replicas feed. `NoopProbe` (the
    // default) compiles all of it away.
    probe: P,
    node: ProcessId,
    now: Instant,
}

/// splitmix64: a cheap deterministic bit mixer for retry jitter (the
/// workspace has no RNG dependency, and determinism keeps simulated runs
/// reproducible).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SubmitQueue {
    /// Creates a queue that keeps at most `window` commands released to the
    /// transport at once (0 is treated as 1: a window that can never open
    /// would deadlock the session).
    pub fn new(window: usize) -> Self {
        SubmitQueue::with_probe(window, ProcessId(0), NoopProbe)
    }
}

impl<P: Probe> SubmitQueue<P> {
    /// Like [`SubmitQueue::new`], with a lifecycle probe: the queue emits
    /// [`CmdStage::Enqueue`] when a command is submitted and
    /// [`CmdStage::Reply`] when its response settles, attributed to `node`
    /// (the process the client session is co-located with). Advance the
    /// event clock with [`SubmitQueue::set_now`].
    pub fn with_probe(window: usize, node: ProcessId, probe: P) -> Self {
        SubmitQueue {
            window: window.max(1),
            queued: VecDeque::new(),
            released: BTreeMap::new(),
            retry_base: 0,
            retry_seed: 0,
            ticks: 0,
            attempt: 0,
            retry_at: None,
            probe,
            node,
            now: Instant::ZERO,
        }
    }

    /// Sets the timestamp stamped on subsequent lifecycle events (the
    /// queue is sans-io and has no clock of its own; the driving harness
    /// owns time).
    pub fn set_now(&mut self, now: Instant) {
        self.now = now;
    }

    fn emit_stage(&self, client: ClientId, seq: u64, stage: CmdStage, shard: u32) {
        if !P::ENABLED {
            return;
        }
        self.probe.emit(ProbeEvent::CmdLifecycle {
            node: self.node,
            at: self.now,
            cmd: CmdId {
                client: client.0,
                seq,
            },
            stage,
            shard,
        });
    }

    /// Stamps the [`CmdStage::ShardRoute`] stage for a command this queue
    /// owns — called by the sharded router, which is the only layer that
    /// knows the key→shard mapping.
    pub(crate) fn note_route(&self, client: ClientId, seq: u64, shard: u32) {
        self.emit_stage(client, seq, CmdStage::ShardRoute, shard);
    }

    /// Enables automatic re-submission of in-flight commands: after
    /// [`on_leader_change`](SubmitQueue::on_leader_change), each
    /// [`on_tick`](SubmitQueue::on_tick) past the scheduled deadline
    /// re-issues everything outstanding, with jittered exponential backoff
    /// between rounds (base delay `base_ticks`, doubling per attempt, plus
    /// a deterministic jitter derived from `seed` so concurrent clients
    /// don't retry in lockstep). `base_ticks == 0` disables (the default).
    pub fn set_retry_backoff(&mut self, base_ticks: u64, seed: u64) {
        self.retry_base = base_ticks;
        self.retry_seed = seed;
    }

    /// The jittered deadline for retry round `attempt`, measured from now.
    fn backoff(&self, attempt: u32) -> u64 {
        let delay = self.retry_base << attempt.min(6);
        let jitter = mix64(self.retry_seed ^ u64::from(attempt)) % (delay / 2 + 1);
        delay + jitter
    }

    /// Notes a leader change: every released-but-unsettled command is
    /// scheduled for re-submission after the base backoff (retries against
    /// a new leader are safe — replicas deduplicate by `(client, seq)`).
    /// A no-op unless [`set_retry_backoff`](SubmitQueue::set_retry_backoff)
    /// enabled retries; with nothing in flight, any pending schedule is
    /// cancelled.
    pub fn on_leader_change(&mut self) {
        if self.retry_base == 0 || self.released.is_empty() {
            self.retry_at = None;
            return;
        }
        self.attempt = 0;
        self.retry_at = Some(self.ticks + self.backoff(0));
    }

    /// Advances the retry clock by one tick. When a scheduled retry comes
    /// due with commands still in flight, returns exact copies of all of
    /// them (oldest first) for the caller to re-deliver, and schedules the
    /// next round with doubled (jittered) backoff. Returns an empty vector
    /// otherwise.
    pub fn on_tick(&mut self) -> Vec<Tagged<KvCmd>> {
        self.ticks += 1;
        let Some(due) = self.retry_at else {
            return Vec::new();
        };
        if self.ticks < due {
            return Vec::new();
        }
        if self.released.is_empty() {
            self.retry_at = None;
            return Vec::new();
        }
        self.attempt += 1;
        self.retry_at = Some(self.ticks + self.backoff(self.attempt));
        self.outstanding()
    }

    /// The retry round currently being waited out (0 before the first
    /// re-submission).
    pub fn retry_attempt(&self) -> u32 {
        self.attempt
    }

    /// Enqueues a minted command. Nothing is sent; call
    /// [`SubmitQueue::drain`] to obtain the commands the window admits.
    pub fn submit(&mut self, cmd: Tagged<KvCmd>) {
        self.emit_stage(cmd.client, cmd.seq, CmdStage::Enqueue, 0);
        self.queued.push_back(cmd);
    }

    /// Releases queued commands up to the free window and returns them for
    /// the caller to deliver. Commands stay tracked until
    /// [`settle`](SubmitQueue::settle)d, so replies can be routed and
    /// retries re-issued.
    pub fn drain(&mut self) -> Vec<Tagged<KvCmd>> {
        let free = self.window.saturating_sub(self.released.len());
        let take = self.queued.len().min(free);
        let mut out = Vec::with_capacity(take);
        for cmd in self.queued.drain(..take) {
            self.released.insert((cmd.client, cmd.seq), cmd.clone());
            out.push(cmd);
        }
        out
    }

    /// Routes one replica `Applied` event — one command out of a decided
    /// (possibly batched) slot — back to its originating command. Returns
    /// the completed pair, or `None` if the tag matches nothing outstanding
    /// (another session's command, or a duplicate completion).
    pub fn settle(&mut self, client: ClientId, seq: u64, response: &KvResponse) -> Option<Settled> {
        let settled = self.released.remove(&(client, seq)).map(|cmd| Settled {
            cmd,
            response: response.clone(),
        });
        if settled.is_some() {
            self.emit_stage(client, seq, CmdStage::Reply, 0);
        }
        if self.released.is_empty() {
            // Everything in flight has landed: stand down the retry clock.
            self.retry_at = None;
            self.attempt = 0;
        }
        settled
    }

    /// Exact copies of every released-but-unsettled command, oldest first —
    /// what a caller resubmits after a timeout or leader change. Safe to
    /// deliver repeatedly: replicas deduplicate by `(client, seq)`.
    pub fn outstanding(&self) -> Vec<Tagged<KvCmd>> {
        self.released.values().cloned().collect()
    }

    /// Commands waiting locally for the window to open.
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }

    /// Commands released to the transport and awaiting replies.
    pub fn released_len(&self) -> usize {
        self.released.len()
    }

    /// `true` once every submitted command has been settled.
    pub fn is_idle(&self) -> bool {
        self.queued.is_empty() && self.released.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KvClient;

    fn queue_with(n: u64, window: usize) -> (KvClient, SubmitQueue) {
        let mut client = KvClient::new(ClientId(3));
        let mut q = SubmitQueue::new(window);
        for i in 0..n {
            q.submit(client.issue(KvCmd::put(format!("k{i}"), format!("v{i}"))));
        }
        (client, q)
    }

    #[test]
    fn drain_respects_the_window_and_coalesces_the_rest() {
        let (_, mut q) = queue_with(7, 3);
        assert_eq!(q.drain().len(), 3);
        assert_eq!(q.queued_len(), 4);
        assert_eq!(q.released_len(), 3);
        // The window is full: nothing more may leave.
        assert!(q.drain().is_empty());
    }

    #[test]
    fn settle_routes_replies_by_tag_and_reopens_the_window() {
        let (_, mut q) = queue_with(4, 2);
        let burst = q.drain();
        assert_eq!(burst.len(), 2);
        let done = q
            .settle(
                ClientId(3),
                burst[0].seq,
                &KvResponse::Applied { previous: None },
            )
            .expect("first command must settle");
        assert_eq!(done.cmd, burst[0]);
        // One slot freed: exactly one more command releases.
        assert_eq!(q.drain().len(), 1);
        // Unknown or duplicate tags settle nothing.
        assert!(q
            .settle(
                ClientId(3),
                burst[0].seq,
                &KvResponse::Applied { previous: None }
            )
            .is_none());
        assert!(q
            .settle(ClientId(9), 1, &KvResponse::Applied { previous: None })
            .is_none());
    }

    #[test]
    fn outstanding_reissues_unsettled_commands_for_retry() {
        let (_, mut q) = queue_with(3, 2);
        let burst = q.drain();
        q.settle(
            ClientId(3),
            burst[1].seq,
            &KvResponse::Applied { previous: None },
        );
        let retries = q.outstanding();
        assert_eq!(retries, vec![burst[0].clone()]);
    }

    #[test]
    fn session_completes_to_idle() {
        let (_, mut q) = queue_with(5, 2);
        let mut seen = Vec::new();
        while !q.is_idle() {
            for cmd in q.drain() {
                // Echo transport: every delivered command applies at once.
                let s = q
                    .settle(cmd.client, cmd.seq, &KvResponse::Applied { previous: None })
                    .unwrap();
                seen.push(s.cmd.seq);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5], "every command settles in order");
    }

    #[test]
    fn leader_change_schedules_jittered_exponential_resubmission() {
        let (_, mut q) = queue_with(2, 2);
        q.set_retry_backoff(8, 42);
        let burst = q.drain();
        assert_eq!(burst.len(), 2);
        q.on_leader_change();
        // Nothing fires before the (jittered) base deadline.
        let mut first_round = None;
        for tick in 1..=200u64 {
            let again = q.on_tick();
            if !again.is_empty() {
                assert_eq!(again, burst, "retries are exact copies, oldest first");
                first_round = Some(tick);
                break;
            }
        }
        let first = first_round.expect("a retry round must fire");
        assert!(first >= 8, "no retry before the base backoff");
        assert!(first <= 8 + 4, "jitter is bounded by half the delay");
        assert_eq!(q.retry_attempt(), 1);
        // The next round waits out a doubled (jittered) delay.
        let mut second_gap = 0u64;
        loop {
            second_gap += 1;
            if !q.on_tick().is_empty() {
                break;
            }
            assert!(second_gap < 200, "second round must fire");
        }
        assert!(second_gap >= 16, "backoff doubles per attempt");
        // Settling everything stands the retry clock down.
        for cmd in q.outstanding() {
            q.settle(cmd.client, cmd.seq, &KvResponse::Applied { previous: None });
        }
        assert_eq!(q.retry_attempt(), 0);
        for _ in 0..300 {
            assert!(q.on_tick().is_empty(), "no retries after full settlement");
        }
    }

    #[test]
    fn retries_are_disabled_by_default() {
        let (_, mut q) = queue_with(2, 2);
        q.drain();
        q.on_leader_change();
        for _ in 0..1000 {
            assert!(q.on_tick().is_empty());
        }
    }

    #[test]
    fn zero_window_is_promoted_to_one() {
        let (_, mut q) = queue_with(2, 0);
        assert_eq!(q.drain().len(), 1, "a zero window must not deadlock");
    }
}
