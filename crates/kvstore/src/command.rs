//! Commands, client tags, and responses.

use std::fmt;

use consensus::LifecycleId;
use lls_obs::CmdId;
use lls_primitives::wire::{Wire, WireError, WireReader};
use serde::{Deserialize, Serialize};

/// A client session identity. Each client numbers its commands with a
/// strictly increasing sequence; the pair `(ClientId, seq)` makes retries
/// idempotent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// A key-value command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvCmd {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The new value.
        value: String,
    },
    /// Remove `key`.
    Delete {
        /// The key.
        key: String,
    },
    /// Compare-and-swap: set `key` to `value` only if its current value is
    /// `expect` (`None` = key must be absent).
    Cas {
        /// The key.
        key: String,
        /// Required current value.
        expect: Option<String>,
        /// The new value.
        value: String,
    },
    /// Read `key`. With leases off this replicates through the log like any
    /// command (the slow *log-read* baseline); with leases on the store
    /// serves it on the fast path — locally under an active leader lease,
    /// or via a read-index round on a follower — and it never enters the
    /// log.
    Read {
        /// The key.
        key: String,
    },
}

impl KvCmd {
    /// Convenience `Put` constructor.
    pub fn put(key: impl Into<String>, value: impl Into<String>) -> Self {
        KvCmd::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience `Delete` constructor.
    pub fn delete(key: impl Into<String>) -> Self {
        KvCmd::Delete { key: key.into() }
    }

    /// Convenience `Cas` constructor.
    pub fn cas(key: impl Into<String>, expect: Option<&str>, value: impl Into<String>) -> Self {
        KvCmd::Cas {
            key: key.into(),
            expect: expect.map(str::to_owned),
            value: value.into(),
        }
    }

    /// Convenience `Read` constructor.
    pub fn read(key: impl Into<String>) -> Self {
        KvCmd::Read { key: key.into() }
    }

    /// The key this command touches.
    pub fn key(&self) -> &str {
        match self {
            KvCmd::Put { key, .. }
            | KvCmd::Delete { key }
            | KvCmd::Cas { key, .. }
            | KvCmd::Read { key } => key,
        }
    }

    /// `true` for commands that never mutate the store.
    pub fn is_read(&self) -> bool {
        matches!(self, KvCmd::Read { .. })
    }
}

/// A command tagged with its client session identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tagged<C> {
    /// The issuing client.
    pub client: ClientId,
    /// The client's sequence number for this command (strictly increasing
    /// per client).
    pub seq: u64,
    /// The command.
    pub cmd: C,
}

/// Every tagged command is lifecycle-visible: the `(client, seq)` session
/// tag *is* its identity across the latency-attribution plane, so the same
/// pair that deduplicates retries also threads a command's probe events
/// from `Enqueue` to `Reply`.
impl<C> LifecycleId for Tagged<C> {
    fn lifecycle_id(&self) -> Option<CmdId> {
        Some(CmdId {
            client: self.client.0,
            seq: self.seq,
        })
    }
}

/// The outcome of applying one command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvResponse {
    /// The command executed; `previous` is the value the key held before.
    Applied {
        /// Prior value of the key, if any.
        previous: Option<String>,
    },
    /// A `Cas` whose expectation failed; nothing changed.
    CasFailed {
        /// The actual current value that did not match.
        actual: Option<String>,
    },
    /// The `(client, seq)` tag was already applied earlier; nothing changed.
    Duplicate,
    /// A `Read` resolved; `value` is what the key held at the read point.
    Value {
        /// Current value of the key, if present.
        value: Option<String>,
    },
}

impl Wire for ClientId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ClientId(u64::decode(r)?))
    }
}

impl Wire for KvCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KvCmd::Put { key, value } => {
                out.push(0);
                key.encode(out);
                value.encode(out);
            }
            KvCmd::Delete { key } => {
                out.push(1);
                key.encode(out);
            }
            KvCmd::Cas { key, expect, value } => {
                out.push(2);
                key.encode(out);
                expect.encode(out);
                value.encode(out);
            }
            KvCmd::Read { key } => {
                out.push(3);
                key.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(KvCmd::Put {
                key: String::decode(r)?,
                value: String::decode(r)?,
            }),
            1 => Ok(KvCmd::Delete {
                key: String::decode(r)?,
            }),
            2 => Ok(KvCmd::Cas {
                key: String::decode(r)?,
                expect: Option::decode(r)?,
                value: String::decode(r)?,
            }),
            3 => Ok(KvCmd::Read {
                key: String::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "KvCmd",
                tag,
            }),
        }
    }
}

impl<C: Wire> Wire for Tagged<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
        self.cmd.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Tagged {
            client: ClientId::decode(r)?,
            seq: u64::decode(r)?,
            cmd: C::decode(r)?,
        })
    }
}

impl Wire for KvResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KvResponse::Applied { previous } => {
                out.push(0);
                previous.encode(out);
            }
            KvResponse::CasFailed { actual } => {
                out.push(1);
                actual.encode(out);
            }
            KvResponse::Duplicate => out.push(2),
            KvResponse::Value { value } => {
                out.push(3);
                value.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(KvResponse::Applied {
                previous: Option::decode(r)?,
            }),
            1 => Ok(KvResponse::CasFailed {
                actual: Option::decode(r)?,
            }),
            2 => Ok(KvResponse::Duplicate),
            3 => Ok(KvResponse::Value {
                value: Option::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                type_name: "KvResponse",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        assert_eq!(
            KvCmd::put("a", "1"),
            KvCmd::Put {
                key: "a".into(),
                value: "1".into()
            }
        );
        assert_eq!(KvCmd::delete("a"), KvCmd::Delete { key: "a".into() });
        assert_eq!(
            KvCmd::cas("a", Some("1"), "2"),
            KvCmd::Cas {
                key: "a".into(),
                expect: Some("1".into()),
                value: "2".into()
            }
        );
    }

    #[test]
    fn key_projection() {
        assert_eq!(KvCmd::put("k", "v").key(), "k");
        assert_eq!(KvCmd::delete("d").key(), "d");
        assert_eq!(KvCmd::cas("c", None, "v").key(), "c");
        assert_eq!(KvCmd::read("r").key(), "r");
        assert!(KvCmd::read("r").is_read());
        assert!(!KvCmd::put("k", "v").is_read());
    }

    #[test]
    fn read_command_and_value_response_round_trip_on_the_wire() {
        for cmd in [KvCmd::read("k"), KvCmd::put("k", "v")] {
            let bytes = cmd.to_bytes();
            assert_eq!(KvCmd::from_bytes(&bytes).unwrap(), cmd);
        }
        for resp in [
            KvResponse::Value { value: None },
            KvResponse::Value {
                value: Some("v".into()),
            },
        ] {
            let bytes = resp.to_bytes();
            assert_eq!(KvResponse::from_bytes(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn client_display() {
        assert_eq!(ClientId(3).to_string(), "client3");
    }
}
