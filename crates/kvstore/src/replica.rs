//! The replica: a [`ReplicatedLog`] of tagged commands feeding a [`KvState`].

use lls_obs::{NoopProbe, Probe};
use lls_primitives::{Ctx, Env, ProcessId, Sm, TimerId};
use serde::{Deserialize, Serialize};

use consensus::{ConsensusParams, ReplicatedLog, RsmEvent};
use omega::CommEffOmega;

use crate::command::{ClientId, KvCmd, KvResponse, Tagged};
use crate::state::KvState;

/// Observable events of a replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvEvent {
    /// The underlying Ω detector changed its output.
    Leader(ProcessId),
    /// A command committed at `slot` and was applied (or suppressed as a
    /// duplicate) with the given response.
    Applied {
        /// Log slot of the command.
        slot: u64,
        /// Issuing client.
        client: ClientId,
        /// Client sequence number.
        seq: u64,
        /// The application outcome.
        response: KvResponse,
    },
}

/// One replica of the key-value store.
///
/// Wraps [`ReplicatedLog`] and applies committed commands to a [`KvState`]
/// in slot order — no-op filler slots are skipped silently. See the
/// [crate example](crate).
#[derive(Debug, Clone)]
pub struct KvReplica<P: Probe = NoopProbe> {
    log: ReplicatedLog<Tagged<KvCmd>, P>,
    state: KvState,
}

impl KvReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new(env: &Env, params: ConsensusParams) -> Self {
        KvReplica::new_with_probe(env, params, NoopProbe)
    }
}

impl<P: Probe> KvReplica<P> {
    /// Like [`KvReplica::new`], with an observability probe threaded down
    /// through the replicated log into the embedded Ω detector.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        KvReplica {
            log: ReplicatedLog::new_with_probe(env, params, probe),
            state: KvState::new(),
        }
    }

    /// The materialized store.
    pub fn state(&self) -> &KvState {
        &self.state
    }

    /// The underlying replicated log (for instrumentation).
    pub fn log(&self) -> &ReplicatedLog<Tagged<KvCmd>, P> {
        &self.log
    }

    /// The underlying Ω detector (for leader discovery).
    pub fn omega(&self) -> &CommEffOmega<P> {
        self.log.omega()
    }

    /// Translates the log's committed events into applied KV events.
    fn translate(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>,
        events: Vec<RsmEvent<Tagged<KvCmd>>>,
    ) {
        for ev in events {
            match ev {
                RsmEvent::Leader(l) => ctx.output(KvEvent::Leader(l)),
                RsmEvent::Committed { slot, cmd } => {
                    if let Some(tagged) = cmd {
                        let response = self.state.apply(&tagged);
                        ctx.output(KvEvent::Applied {
                            slot,
                            client: tagged.client,
                            seq: tagged.seq,
                            response,
                        });
                    }
                }
            }
        }
    }

    /// Runs one step of the inner log and applies its outputs.
    fn drive(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>,
        step: impl FnOnce(
            &mut ReplicatedLog<Tagged<KvCmd>, P>,
            &mut Ctx<'_, <Self as Sm>::Msg, RsmEvent<Tagged<KvCmd>>>,
        ),
    ) {
        let env = Env::new(ctx.id(), ctx.n());
        let mut fx = lls_primitives::Effects::new();
        {
            let mut ictx = Ctx::new(&env, ctx.now(), &mut fx);
            step(&mut self.log, &mut ictx);
        }
        for s in fx.sends {
            ctx.send(s.to, s.msg);
        }
        for cmd in fx.timers {
            match cmd {
                lls_primitives::TimerCmd::Set { timer, after } => ctx.set_timer(timer, after),
                lls_primitives::TimerCmd::Cancel { timer } => ctx.cancel_timer(timer),
            }
        }
        self.translate(ctx, fx.outputs);
    }
}

impl<P: Probe> Sm for KvReplica<P> {
    type Msg = consensus::RsmMsg<Tagged<KvCmd>>;
    type Output = KvEvent;
    type Request = Tagged<KvCmd>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.drive(ctx, |log, ictx| log.on_start(ictx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        self.drive(ctx, |log, ictx| log.on_message(ictx, from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.drive(ctx, |log, ictx| log.on_timer(ictx, timer));
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        self.drive(ctx, |log, ictx| log.on_request(ictx, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant};

    fn tag(seq: u64, cmd: KvCmd) -> Tagged<KvCmd> {
        Tagged {
            client: ClientId(1),
            seq,
            cmd,
        }
    }

    #[test]
    fn replica_starts_and_emits_initial_leader() {
        let env = Env::new(ProcessId(0), 3);
        let mut r = KvReplica::new(&env, ConsensusParams::default());
        let mut fx: Effects<_, KvEvent> = Effects::new();
        r.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        assert!(fx
            .outputs
            .iter()
            .any(|o| matches!(o, KvEvent::Leader(l) if *l == ProcessId(0))));
        assert!(r.state().is_empty());
    }

    #[test]
    fn committed_commands_apply_in_order_with_dedup() {
        // Drive the leader replica through a full commit locally by feeding
        // it the peer's protocol messages directly.
        let env = Env::new(ProcessId(0), 3);
        let mut r = KvReplica::new(&env, ConsensusParams::default());
        let mut fx: Effects<_, KvEvent> = Effects::new();
        r.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        // Majority promise → leader established.
        r.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            consensus::RsmMsg::Promise {
                b: consensus::Ballot::new(1, ProcessId(0)),
                accepted: vec![],
                low_slot: 0,
            },
        );
        fx.take();
        assert!(r.log().is_established_leader());
        // Submit a command and ack it from p1: commits at slot 0.
        r.on_request(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            tag(1, KvCmd::put("x", "1")),
        );
        fx.take();
        r.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            consensus::RsmMsg::Accepted {
                b: consensus::Ballot::new(1, ProcessId(0)),
                slot: 0,
            },
        );
        let out = fx.take();
        assert!(out.outputs.iter().any(|o| matches!(
            o,
            KvEvent::Applied {
                slot: 0,
                seq: 1,
                response: KvResponse::Applied { .. },
                ..
            }
        )));
        assert_eq!(r.state().get("x"), Some("1"));
    }
}
