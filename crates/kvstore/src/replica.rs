//! The replica: a [`ReplicatedLog`] of tagged commands feeding a [`KvState`].

use std::collections::BTreeMap;

use lls_obs::{CmdStage, NoopProbe, Probe, ProbeEvent, ReadMode};
use lls_primitives::wire::Wire;
use lls_primitives::{
    Ctx, Env, ProcessId, Sm, SnapshotHandle, StorageError, StorageHandle, TimerId,
};
use serde::{Deserialize, Serialize};

use consensus::{ConsensusParams, ReplicatedLog, RsmEvent};
use omega::CommEffOmega;

use crate::command::{ClientId, KvCmd, KvResponse, Tagged};
use crate::state::KvState;

/// A fast-path read parked while its linearization point resolves: first
/// for the leaseholder's read-index answer, then (if the index is ahead of
/// the local apply watermark) for the apply loop to catch up.
#[derive(Debug, Clone)]
struct PendingRead {
    client: ClientId,
    seq: u64,
    key: String,
    /// The decided watermark the read must wait for; `None` until the
    /// leaseholder's [`RsmEvent::ReadIndexAt`] arrives.
    index: Option<u64>,
}

/// Observable events of a replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvEvent {
    /// The underlying Ω detector changed its output.
    Leader(ProcessId),
    /// A command committed at `slot` and was applied (or suppressed as a
    /// duplicate) with the given response — or a fast-path read resolved.
    Applied {
        /// Log slot of the command. For fast-path reads (lease or
        /// read-index), which never enter the log, this is the serving
        /// replica's apply *watermark* — the slot the next committed
        /// write will occupy — not a unique log position. Correlate
        /// completions by `(client, seq)`, never by `slot` alone.
        slot: u64,
        /// Issuing client.
        client: ClientId,
        /// Client sequence number.
        seq: u64,
        /// The application outcome.
        response: KvResponse,
    },
    /// A peer's snapshot was installed by state transfer: the store now
    /// materializes every command below `watermark` without having seen
    /// the individual `Applied` events.
    SnapshotInstalled {
        /// First slot NOT covered by the installed snapshot.
        watermark: u64,
    },
}

/// One replica of the key-value store.
///
/// Wraps [`ReplicatedLog`] and applies committed commands to a [`KvState`]
/// in slot order — no-op filler slots are skipped silently. See the
/// [crate example](crate).
#[derive(Debug, Clone)]
pub struct KvReplica<P: Probe = NoopProbe> {
    log: ReplicatedLog<Tagged<KvCmd>, P>,
    state: KvState,
    compact_every: u64,
    applied_since_compact: u64,
    /// Contiguous slots folded into `state` (no-op fillers included) — the
    /// local apply watermark that read-index reads wait on.
    applied_upto: u64,
    /// Fast-path reads awaiting a read index and/or the apply watermark.
    reads: BTreeMap<u64, PendingRead>,
    next_read_token: u64,
}

impl KvReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new(env: &Env, params: ConsensusParams) -> Self {
        KvReplica::new_with_probe(env, params, NoopProbe)
    }

    /// Creates a replica that recovers its log from `storage` and rebuilds
    /// the store by replaying the recovered committed prefix.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
    ) -> Result<Self, StorageError> {
        KvReplica::with_storage_and_probe(env, params, storage, NoopProbe)
    }

    /// Creates a replica with both a WAL and a snapshot store: recovery
    /// starts from the durable snapshot's materialized state (if one
    /// exists) and replays only the WAL tail above its watermark.
    ///
    /// # Errors
    ///
    /// Fails if the log or snapshot store cannot be read, or the boot
    /// record cannot be written. Fails with [`StorageError::Decode`] if a
    /// recovered snapshot does not decode as a [`KvState`].
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn with_storage_and_snapshots(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        snapshots: SnapshotHandle,
    ) -> Result<Self, StorageError> {
        KvReplica::with_storage_snapshots_and_probe(env, params, storage, snapshots, NoopProbe)
    }
}

impl<P: Probe> KvReplica<P> {
    /// Like [`KvReplica::new`], with an observability probe threaded down
    /// through the replicated log into the embedded Ω detector.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new_with_probe(env: &Env, params: ConsensusParams, probe: P) -> Self {
        KvReplica::from_log(ReplicatedLog::new_with_probe(env, params, probe))
    }

    /// Like [`KvReplica::with_storage`], with an observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log cannot be read or the boot record cannot be
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn with_storage_and_probe(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        Ok(KvReplica::from_log(ReplicatedLog::with_storage_and_probe(
            env, params, storage, probe,
        )?))
    }

    /// Like [`KvReplica::with_storage_and_snapshots`], with an
    /// observability probe.
    ///
    /// # Errors
    ///
    /// Fails if the log or snapshot store cannot be read, the boot record
    /// cannot be written, or a recovered snapshot does not decode as a
    /// [`KvState`].
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn with_storage_snapshots_and_probe(
        env: &Env,
        params: ConsensusParams,
        storage: StorageHandle,
        snapshots: SnapshotHandle,
        probe: P,
    ) -> Result<Self, StorageError> {
        let log = ReplicatedLog::with_storage_snapshots_and_probe(
            env, params, storage, snapshots, probe,
        )?;
        // Seed the store from the snapshot *before* replaying the WAL tail
        // above its watermark — the reverse order would clobber the
        // replayed suffix with the (older) snapshot state.
        let mut replica = KvReplica {
            log,
            state: KvState::new(),
            compact_every: 0,
            applied_since_compact: 0,
            applied_upto: 0,
            reads: BTreeMap::new(),
            next_read_token: 0,
        };
        if let Some(snap) = replica.log.recovered_snapshot() {
            replica.state = KvState::from_bytes(&snap.data).map_err(StorageError::Decode)?;
        }
        replica.replay_tail();
        Ok(replica)
    }

    /// Wraps a (possibly recovered) log, rebuilding the store by replaying
    /// the committed prefix above the snapshot watermark (0 when no
    /// snapshot store is attached — the full recovered prefix).
    fn from_log(log: ReplicatedLog<Tagged<KvCmd>, P>) -> Self {
        let mut replica = KvReplica {
            log,
            state: KvState::new(),
            compact_every: 0,
            applied_since_compact: 0,
            applied_upto: 0,
            reads: BTreeMap::new(),
            next_read_token: 0,
        };
        replica.replay_tail();
        replica
    }

    /// Replays every committed command above the log's watermark into the
    /// store — the recovery path's second half, after `state` was seeded
    /// from the snapshot (or left empty).
    fn replay_tail(&mut self) {
        let from = self.log.watermark();
        // The iterator borrows the log; buffer the tail (it is exactly the
        // bounded post-snapshot suffix compaction exists to keep small).
        let tail: Vec<Tagged<KvCmd>> = self.log.committed_commands_from(from).cloned().collect();
        for cmd in &tail {
            self.state.apply(cmd);
        }
        self.applied_upto = self.log.committed_len();
    }

    /// Enables automatic compaction: after every `every` applied commands
    /// the replica snapshots its store at the committed prefix and rewrites
    /// the WAL to live records only. 0 disables (the default). A no-op
    /// unless the replica was built with a snapshot store.
    pub fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every;
    }

    /// Snapshots the store at the current committed prefix and compacts
    /// the WAL behind it. Returns `Ok(false)` when the log declined (no
    /// snapshot store, watermark not advancing, wedged).
    ///
    /// # Errors
    ///
    /// Propagates a WAL rewrite failure; the log is wedged first.
    pub fn compact_now(&mut self) -> Result<bool, StorageError> {
        let watermark = self.log.committed_len();
        let state = self.state.to_bytes();
        self.log.compact(watermark, state)
    }

    /// The materialized store.
    pub fn state(&self) -> &KvState {
        &self.state
    }

    /// The underlying replicated log (for instrumentation).
    pub fn log(&self) -> &ReplicatedLog<Tagged<KvCmd>, P> {
        &self.log
    }

    /// The underlying Ω detector (for leader discovery).
    pub fn omega(&self) -> &CommEffOmega<P> {
        self.log.omega()
    }

    /// Contiguous slots folded into the store (the local apply watermark).
    pub fn applied_upto(&self) -> u64 {
        self.applied_upto
    }

    /// Fast-path reads still waiting on a read index or the apply loop.
    pub fn pending_reads(&self) -> usize {
        self.reads.len()
    }

    /// Answers one read from the materialized store and stamps it on the
    /// probe plane — the single exit point of every fast-path read.
    fn serve_read(
        &self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>,
        client: ClientId,
        seq: u64,
        key: &str,
        mode: ReadMode,
    ) {
        let response = self.state.read(key);
        if P::ENABLED {
            self.log.probe().emit(ProbeEvent::ReadServed {
                node: ctx.id(),
                at: ctx.now(),
                shard: 0,
                mode,
                watermark: self.applied_upto,
            });
        }
        ctx.output(KvEvent::Applied {
            slot: self.applied_upto,
            client,
            seq,
            response,
        });
    }

    /// Serves every parked read whose resolved index the apply watermark
    /// has reached.
    fn serve_ready_reads(&mut self, ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>) {
        let ready: Vec<u64> = self
            .reads
            .iter()
            .filter(|(_, r)| r.index.is_some_and(|i| i <= self.applied_upto))
            .map(|(t, _)| *t)
            .collect();
        for token in ready {
            let read = self.reads.remove(&token).expect("token just listed");
            self.serve_read(ctx, read.client, read.seq, &read.key, ReadMode::ReadIndex);
        }
    }

    /// The fast read path. A leaseholder answers immediately from its local
    /// store; a follower runs a read-index round against the believed
    /// leader; a leader *without* an active lease falls back to replicating
    /// the read through the log (safe, merely slow). Reads served here
    /// never enter the log.
    fn on_read(&mut self, ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>, req: Tagged<KvCmd>) {
        if self.log.lease_read_allowed(ctx.now()) {
            self.serve_read(ctx, req.client, req.seq, req.cmd.key(), ReadMode::Lease);
            return;
        }
        if self.log.is_established_leader() {
            // Leading but the lease has not (re-)activated: the log path is
            // the only linearizable option left.
            self.drive(ctx, |log, ictx| log.on_request(ictx, req));
            return;
        }
        // A retry replaces the client's own parked read: under a stable
        // leader the leader-change purge never fires, so tokens of rounds
        // whose ReadIndex (or its reply) was dropped would otherwise
        // accumulate forever, one per retry.
        self.reads
            .retain(|_, r| r.client != req.client || r.seq != req.seq);
        let token = self.next_read_token;
        self.next_read_token += 1;
        self.reads.insert(
            token,
            PendingRead {
                client: req.client,
                seq: req.seq,
                key: req.cmd.key().to_owned(),
                index: None,
            },
        );
        self.drive(ctx, |log, ictx| log.request_read_index(ictx, token));
    }

    /// Translates the log's committed events into applied KV events.
    fn translate(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>,
        events: Vec<RsmEvent<Tagged<KvCmd>>>,
    ) {
        for ev in events {
            match ev {
                RsmEvent::Leader(l) => {
                    // A forwarded read-index request may have raced the old
                    // leader's fall; the client's retry cadence re-issues.
                    self.reads.retain(|_, r| r.index.is_some());
                    ctx.output(KvEvent::Leader(l));
                }
                RsmEvent::Committed { slot, cmd } => {
                    self.applied_upto = self.applied_upto.max(slot + 1);
                    if let Some(tagged) = cmd {
                        let response = self.state.apply(&tagged);
                        self.applied_since_compact += 1;
                        if P::ENABLED {
                            self.log.probe().emit(ProbeEvent::CmdLifecycle {
                                node: ctx.id(),
                                at: ctx.now(),
                                cmd: lls_obs::CmdId {
                                    client: tagged.client.0,
                                    seq: tagged.seq,
                                },
                                stage: CmdStage::Apply,
                                shard: 0,
                            });
                            if tagged.cmd.is_read() {
                                // A read that went through the log: the
                                // slow baseline the lease path replaces.
                                self.log.probe().emit(ProbeEvent::ReadServed {
                                    node: ctx.id(),
                                    at: ctx.now(),
                                    shard: 0,
                                    mode: ReadMode::Log,
                                    watermark: self.applied_upto,
                                });
                            }
                        }
                        ctx.output(KvEvent::Applied {
                            slot,
                            client: tagged.client,
                            seq: tagged.seq,
                            response,
                        });
                    }
                }
                RsmEvent::SnapshotInstalled { watermark, state } => {
                    // The chunk and total CRCs were verified by the log, so
                    // a decode failure means a sender at an incompatible
                    // version; keeping the old (now unsound) state would
                    // silently diverge, so wedge application instead.
                    self.state = KvState::from_bytes(&state)
                        .expect("installed snapshot must decode as a KvState");
                    self.applied_since_compact = 0;
                    self.applied_upto = self.applied_upto.max(watermark);
                    ctx.output(KvEvent::SnapshotInstalled { watermark });
                }
                RsmEvent::ReadIndexAt { req, index } => {
                    if let Some(read) = self.reads.get_mut(&req) {
                        read.index = Some(index);
                    }
                }
            }
        }
        self.serve_ready_reads(ctx);
        if self.compact_every > 0 && self.applied_since_compact >= self.compact_every {
            self.applied_since_compact = 0;
            // On failure the log wedges itself (and refuses further
            // mutation); nothing for the replica to unwind.
            let _ = self.compact_now();
        }
    }

    /// Runs one step of the inner log and applies its outputs.
    fn drive(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, KvEvent>,
        step: impl FnOnce(
            &mut ReplicatedLog<Tagged<KvCmd>, P>,
            &mut Ctx<'_, <Self as Sm>::Msg, RsmEvent<Tagged<KvCmd>>>,
        ),
    ) {
        let env = Env::new(ctx.id(), ctx.n());
        let mut fx = lls_primitives::Effects::new();
        {
            let mut ictx = Ctx::new(&env, ctx.now(), &mut fx);
            step(&mut self.log, &mut ictx);
        }
        for s in fx.sends {
            ctx.send(s.to, s.msg);
        }
        for cmd in fx.timers {
            match cmd {
                lls_primitives::TimerCmd::Set { timer, after } => ctx.set_timer(timer, after),
                lls_primitives::TimerCmd::Cancel { timer } => ctx.cancel_timer(timer),
            }
        }
        self.translate(ctx, fx.outputs);
    }
}

impl<P: Probe> Sm for KvReplica<P> {
    type Msg = consensus::RsmMsg<Tagged<KvCmd>>;
    type Output = KvEvent;
    type Request = Tagged<KvCmd>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.drive(ctx, |log, ictx| log.on_start(ictx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        self.drive(ctx, |log, ictx| log.on_message(ictx, from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.drive(ctx, |log, ictx| log.on_timer(ictx, timer));
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        if req.cmd.is_read() && self.log.lease_enabled() {
            self.on_read(ctx, req);
            return;
        }
        self.drive(ctx, |log, ictx| log.on_request(ictx, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lls_primitives::{Effects, Instant};

    fn tag(seq: u64, cmd: KvCmd) -> Tagged<KvCmd> {
        Tagged {
            client: ClientId(1),
            seq,
            cmd,
        }
    }

    #[test]
    fn replica_starts_and_emits_initial_leader() {
        let env = Env::new(ProcessId(0), 3);
        let mut r = KvReplica::new(&env, ConsensusParams::default());
        let mut fx: Effects<_, KvEvent> = Effects::new();
        r.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        assert!(fx
            .outputs
            .iter()
            .any(|o| matches!(o, KvEvent::Leader(l) if *l == ProcessId(0))));
        assert!(r.state().is_empty());
    }

    #[test]
    fn committed_commands_apply_in_order_with_dedup() {
        // Drive the leader replica through a full commit locally by feeding
        // it the peer's protocol messages directly.
        let env = Env::new(ProcessId(0), 3);
        let mut r = KvReplica::new(&env, ConsensusParams::default());
        let mut fx: Effects<_, KvEvent> = Effects::new();
        r.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        // Majority promise → leader established.
        r.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            consensus::RsmMsg::Promise {
                b: consensus::Ballot::new(1, ProcessId(0)),
                accepted: vec![],
                low_slot: 0,
            },
        );
        fx.take();
        assert!(r.log().is_established_leader());
        // Submit a command and ack it from p1: commits at slot 0.
        r.on_request(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            tag(1, KvCmd::put("x", "1")),
        );
        fx.take();
        r.on_message(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            ProcessId(1),
            consensus::RsmMsg::Accepted {
                b: consensus::Ballot::new(1, ProcessId(0)),
                slot: 0,
            },
        );
        let out = fx.take();
        assert!(out.outputs.iter().any(|o| matches!(
            o,
            KvEvent::Applied {
                slot: 0,
                seq: 1,
                response: KvResponse::Applied { .. },
                ..
            }
        )));
        assert_eq!(r.state().get("x"), Some("1"));
    }

    #[test]
    fn read_retries_reuse_the_pending_slot() {
        // Regression: under a stable leader, a dropped ReadIndex (or its
        // reply) left the parked read behind forever, and every client
        // retry parked another one — unbounded growth on fair-lossy links.
        use consensus::LeaseParams;
        let env = Env::new(ProcessId(1), 3);
        let params = ConsensusParams {
            lease: LeaseParams::enabled(),
            ..ConsensusParams::default()
        };
        let mut r = KvReplica::new(&env, params);
        let mut fx: Effects<_, KvEvent> = Effects::new();
        r.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        for _ in 0..5 {
            r.on_request(
                &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                tag(1, KvCmd::read("x")),
            );
            fx.take();
        }
        assert_eq!(
            r.pending_reads(),
            1,
            "retries of one read reuse its pending slot"
        );
        r.on_request(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            tag(2, KvCmd::read("x")),
        );
        fx.take();
        assert_eq!(r.pending_reads(), 2, "distinct reads still park separately");
    }

    #[test]
    fn recovery_applies_the_wal_tail_on_top_of_the_snapshot() {
        // Regression: recovery must seed the store from the snapshot and
        // *then* replay the WAL tail above the watermark — the reverse
        // order clobbers the suffix and the store silently reverts to the
        // snapshot (here: losing k4..k6 and the session high-water mark).
        use lls_primitives::{SnapshotHandle, StorageHandle};
        let env = Env::new(ProcessId(2), 3);
        let store = StorageHandle::in_memory();
        let snaps = SnapshotHandle::in_memory();
        {
            let mut r = KvReplica::with_storage_and_snapshots(
                &env,
                ConsensusParams::default(),
                store.clone(),
                snaps.clone(),
            )
            .unwrap();
            let mut fx: Effects<_, KvEvent> = Effects::new();
            for slot in 0..4u64 {
                r.on_message(
                    &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                    ProcessId(0),
                    consensus::RsmMsg::Decide {
                        slot,
                        entry: consensus::Entry::Cmd(tag(
                            slot + 1,
                            KvCmd::put(format!("k{slot}"), "v"),
                        )),
                    },
                );
                fx.take();
            }
            assert!(r.compact_now().unwrap(), "snapshot at watermark 4");
            for slot in 4..7u64 {
                r.on_message(
                    &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                    ProcessId(0),
                    consensus::RsmMsg::Decide {
                        slot,
                        entry: consensus::Entry::Cmd(tag(
                            slot + 1,
                            KvCmd::put(format!("k{slot}"), "v"),
                        )),
                    },
                );
                fx.take();
            }
            assert_eq!(r.state().len(), 7);
        }
        let recovered =
            KvReplica::with_storage_and_snapshots(&env, ConsensusParams::default(), store, snaps)
                .unwrap();
        assert_eq!(recovered.log().watermark(), 4);
        assert_eq!(
            recovered.state().len(),
            7,
            "the WAL tail above the snapshot watermark survives recovery"
        );
        assert_eq!(recovered.state().get("k6"), Some("v"));
        assert_eq!(
            recovered.state().session_seq(ClientId(1)),
            Some(7),
            "session dedup state covers the replayed tail"
        );
    }
}
