//! The sharded key-value store: key-routed client path over S independent
//! replicated logs, one shared Ω per node.
//!
//! This is the `kvstore` half of the shard plane
//! ([`consensus::shard`](consensus::shard)): the consensus layer gives each
//! shard its own slot sequence and multiplexes one Ω across all co-located
//! groups; this module routes *keys* onto those groups:
//!
//! * [`ShardedSubmitQueue`] — the client side. Commands are routed to their
//!   shard by the placement map's stable key hash, each shard gets its own
//!   [`SubmitQueue`] window (per-shard pipelines fill independently), and
//!   replies settle against the shard that owns the key.
//! * [`ShardedKvNode`] — the server side. One
//!   [`ShardedNode`](consensus::ShardedNode) of tagged commands plus one
//!   [`KvState`] **per shard**, so disjoint keys commit and apply in
//!   parallel with no cross-shard ordering (and no cross-shard transactions
//!   — by construction a command touches exactly one key, hence one shard).
//!
//! Exactly-once semantics are preserved per shard: a client's `(client,
//! seq)` tags are deduplicated by the session table of the shard that
//! applies them, and a key always routes to the same shard, so a retry can
//! never double-apply on a different group.

use std::collections::BTreeMap;

use lls_obs::{CmdStage, NoopProbe, Probe, ProbeEvent, ReadMode};
use lls_primitives::wire::Wire;
use lls_primitives::{
    Ctx, Effects, Env, Instant, ProcessId, Sm, SnapshotHandle, StorageError, StorageHandle, TimerId,
};
use serde::{Deserialize, Serialize};

use consensus::shard::{
    PlacementManager, PlacementMap, ShardEvent, ShardId, ShardMsg, ShardRequest, ShardedNode,
};
use consensus::ConsensusParams;
use omega::CommEffOmega;

use crate::command::{ClientId, KvCmd, KvResponse, Tagged};
use crate::state::KvState;
use crate::submit::{Settled, SubmitQueue};

/// Client-side fan-out: one windowed [`SubmitQueue`] per shard, fed by the
/// placement map's key router.
///
/// The caller submits plain tagged commands; the queue decides which shard
/// owns each key, releases up to a per-shard window concurrently (the whole
/// point of sharding: S pipelines fill in parallel), and routes every reply
/// back to the queue of the shard that owns it.
#[derive(Debug, Clone)]
pub struct ShardedSubmitQueue<P: Probe = NoopProbe> {
    map: PlacementMap,
    queues: BTreeMap<ShardId, SubmitQueue<P>>,
    routes: BTreeMap<(ClientId, u64), ShardId>,
}

impl ShardedSubmitQueue {
    /// Creates a queue over `map` with a `window` of in-flight commands
    /// **per shard**.
    pub fn new(map: PlacementMap, window: usize) -> Self {
        ShardedSubmitQueue::with_probe(map, window, ProcessId(0), NoopProbe)
    }
}

impl<P: Probe> ShardedSubmitQueue<P> {
    /// Like [`ShardedSubmitQueue::new`], with a lifecycle probe shared by
    /// every per-shard queue: each submitted command is stamped
    /// `Enqueue` → `ShardRoute` (carrying the owning shard id — the only
    /// place the key→shard decision is visible) and `Reply` on settlement.
    pub fn with_probe(map: PlacementMap, window: usize, node: ProcessId, probe: P) -> Self {
        let queues = map
            .shard_ids()
            .map(|shard| (shard, SubmitQueue::with_probe(window, node, probe.clone())))
            .collect();
        ShardedSubmitQueue {
            map,
            queues,
            routes: BTreeMap::new(),
        }
    }

    /// Sets the timestamp stamped on subsequent lifecycle events, on every
    /// per-shard queue (see [`SubmitQueue::set_now`]).
    pub fn set_now(&mut self, now: Instant) {
        for q in self.queues.values_mut() {
            q.set_now(now);
        }
    }

    /// The shard that owns `cmd`'s key.
    pub fn shard_of(&self, cmd: &Tagged<KvCmd>) -> ShardId {
        self.map.shard_of_key(cmd.cmd.key())
    }

    /// Enqueues a minted command on the queue of the shard owning its key.
    pub fn submit(&mut self, cmd: Tagged<KvCmd>) {
        let shard = self.shard_of(&cmd);
        let (client, seq) = (cmd.client, cmd.seq);
        self.routes.insert((client, seq), shard);
        let q = self
            .queues
            .get_mut(&shard)
            .expect("router is total over the map's shards");
        q.submit(cmd);
        q.note_route(client, seq, shard.0);
    }

    /// Releases queued commands up to each shard's free window and returns
    /// them per shard, for the caller to deliver to that shard's group.
    pub fn drain(&mut self) -> Vec<(ShardId, Vec<Tagged<KvCmd>>)> {
        self.queues
            .iter_mut()
            .filter_map(|(shard, q)| {
                let burst = q.drain();
                (!burst.is_empty()).then_some((*shard, burst))
            })
            .collect()
    }

    /// Routes one applied reply back to the shard that owns the command's
    /// key. Returns the completed pair, or `None` for unknown/duplicate
    /// tags.
    pub fn settle(&mut self, client: ClientId, seq: u64, response: &KvResponse) -> Option<Settled> {
        let shard = self.routes.get(&(client, seq)).copied()?;
        let settled = self.queues.get_mut(&shard)?.settle(client, seq, response);
        if settled.is_some() {
            self.routes.remove(&(client, seq));
        }
        settled
    }

    /// Enables automatic re-submission on every shard queue (see
    /// [`SubmitQueue::set_retry_backoff`]); each shard's jitter stream is
    /// decorrelated by folding the shard id into `seed`, so S queues
    /// recovering from the same leader change don't retry in lockstep.
    pub fn set_retry_backoff(&mut self, base_ticks: u64, seed: u64) {
        for (shard, q) in &mut self.queues {
            q.set_retry_backoff(base_ticks, seed ^ (u64::from(shard.0) << 32));
        }
    }

    /// Notes a leader change on every shard queue (see
    /// [`SubmitQueue::on_leader_change`]): all in-flight commands are
    /// scheduled for re-submission with jittered exponential backoff.
    pub fn on_leader_change(&mut self) {
        for q in self.queues.values_mut() {
            q.on_leader_change();
        }
    }

    /// Advances every shard queue's retry clock by one tick and returns
    /// the commands due for re-delivery, grouped per shard (see
    /// [`SubmitQueue::on_tick`]).
    pub fn on_tick(&mut self) -> Vec<(ShardId, Vec<Tagged<KvCmd>>)> {
        self.queues
            .iter_mut()
            .filter_map(|(shard, q)| {
                let again = q.on_tick();
                (!again.is_empty()).then_some((*shard, again))
            })
            .collect()
    }

    /// Exact copies of every released-but-unsettled command across all
    /// shards, for retry after a timeout or leader change.
    pub fn outstanding(&self) -> Vec<(ShardId, Vec<Tagged<KvCmd>>)> {
        self.queues
            .iter()
            .filter_map(|(shard, q)| {
                let out = q.outstanding();
                (!out.is_empty()).then_some((*shard, out))
            })
            .collect()
    }

    /// Commands waiting locally across all shard queues.
    pub fn queued_len(&self) -> usize {
        self.queues.values().map(SubmitQueue::queued_len).sum()
    }

    /// Commands released to the transport across all shard queues.
    pub fn released_len(&self) -> usize {
        self.queues.values().map(SubmitQueue::released_len).sum()
    }

    /// `true` once every submitted command on every shard has settled.
    pub fn is_idle(&self) -> bool {
        self.queues.values().all(SubmitQueue::is_idle)
    }

    /// The placement map this queue routes with.
    pub fn map(&self) -> &PlacementMap {
        &self.map
    }
}

/// Observable events of a sharded store node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardedKvEvent {
    /// The node's shared Ω detector changed its output (one event per node,
    /// however many shards it hosts).
    Leader(ProcessId),
    /// A command committed in `shard` at `slot` and was applied (or
    /// suppressed as a duplicate) with the given response — or a
    /// fast-path read resolved against that shard.
    Applied {
        /// The shard group that decided the command.
        shard: ShardId,
        /// Log slot within that shard's sequence. For fast-path reads
        /// (lease or read-index), which never enter the log, this is the
        /// shard's apply *watermark* — the slot its next committed write
        /// will occupy — not a unique log position. Correlate
        /// completions by `(client, seq)`, never by `slot` alone.
        slot: u64,
        /// Issuing client.
        client: ClientId,
        /// Client sequence number.
        seq: u64,
        /// The application outcome.
        response: KvResponse,
    },
    /// A peer's snapshot of one shard was installed by state transfer:
    /// that shard's store now materializes every command below
    /// `watermark` without having seen the individual `Applied` events.
    SnapshotInstalled {
        /// The shard whose group installed the snapshot.
        shard: ShardId,
        /// First slot NOT covered by the installed snapshot.
        watermark: u64,
    },
}

/// One node of the sharded key-value store: a
/// [`ShardedNode`](consensus::ShardedNode) of tagged commands plus one
/// materialized [`KvState`] per locally attached shard.
///
/// Requests are plain tagged commands — the node routes each to the shard
/// group owning its key (the *key-routed client path*), so callers need no
/// shard awareness at all.
#[derive(Debug, Clone)]
pub struct ShardedKvNode<P: Probe = NoopProbe> {
    node: ShardedNode<Tagged<KvCmd>, P>,
    states: BTreeMap<ShardId, KvState>,
    compact_every: u64,
    applied_since_compact: BTreeMap<ShardId, u64>,
    /// Per-shard apply watermark (contiguous slots folded into the store,
    /// no-op fillers included) that read-index reads wait on.
    applied_upto: BTreeMap<ShardId, u64>,
    /// Fast-path reads awaiting a read index and/or their shard's apply
    /// watermark, keyed by read token.
    reads: BTreeMap<u64, PendingShardRead>,
    next_read_token: u64,
}

/// A fast-path read parked on one shard group: first for the leaseholder's
/// read-index answer, then for the shard's apply loop to reach it.
#[derive(Debug, Clone)]
struct PendingShardRead {
    shard: ShardId,
    client: ClientId,
    seq: u64,
    key: String,
    index: Option<u64>,
}

impl ShardedKvNode {
    /// Creates a node hosting the shards attached in `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new(env: &Env, params: ConsensusParams, placement: PlacementManager) -> Self {
        ShardedKvNode::new_with_probe(env, params, placement, NoopProbe)
    }

    /// Creates a node whose shard groups each recover from their own WAL
    /// segment, plus a dedicated segment for the shared Ω counter.
    ///
    /// # Errors
    ///
    /// Fails if any WAL cannot be read or a boot record cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid or an attached shard has no
    /// storage handle.
    pub fn with_storage(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        omega_store: StorageHandle,
    ) -> Result<Self, StorageError> {
        let node = ShardedNode::with_storage(env, params, placement, stores, omega_store)?;
        ShardedKvNode::from_node(node)
    }

    /// Like [`ShardedKvNode::with_storage`], additionally attaching a
    /// snapshot store to each shard in `snaps`: those groups recover from
    /// their durable snapshot plus the WAL tail above its watermark, and
    /// may be compacted ([`ShardedKvNode::set_compact_every`],
    /// [`ShardedKvNode::compact_shard_now`]).
    ///
    /// # Errors
    ///
    /// Fails if any WAL or snapshot store cannot be read, a boot record
    /// cannot be written, or a recovered snapshot does not decode as a
    /// [`KvState`].
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters are invalid or an attached shard has no
    /// storage handle.
    pub fn with_storage_and_snapshots(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        stores: &BTreeMap<ShardId, StorageHandle>,
        snaps: &BTreeMap<ShardId, SnapshotHandle>,
        omega_store: StorageHandle,
    ) -> Result<Self, StorageError> {
        let node = ShardedNode::with_storage_and_snapshots(
            env,
            params,
            placement,
            stores,
            snaps,
            omega_store,
        )?;
        ShardedKvNode::from_node(node)
    }
}

impl<P: Probe> ShardedKvNode<P> {
    /// Like [`ShardedKvNode::new`], with an observability probe threaded
    /// down through every shard group into the shared Ω detector.
    ///
    /// # Panics
    ///
    /// Panics if the Ω parameters inside `params` are invalid.
    pub fn new_with_probe(
        env: &Env,
        params: ConsensusParams,
        placement: PlacementManager,
        probe: P,
    ) -> Self {
        let node = ShardedNode::new_with_probe(env, params, placement, probe);
        let states = node
            .placement()
            .attached()
            .map(|s| (s, KvState::new()))
            .collect();
        ShardedKvNode {
            node,
            states,
            compact_every: 0,
            applied_since_compact: BTreeMap::new(),
            applied_upto: BTreeMap::new(),
            reads: BTreeMap::new(),
            next_read_token: 0,
        }
    }

    /// Wraps a recovered sharded node, rebuilding each shard's store from
    /// its group's recovered snapshot (if any) plus a replay of the
    /// committed prefix above the snapshot watermark.
    fn from_node(node: ShardedNode<Tagged<KvCmd>, P>) -> Result<Self, StorageError> {
        let mut states = BTreeMap::new();
        let mut applied_upto = BTreeMap::new();
        for (shard, group) in node.groups() {
            let mut state = match group.recovered_snapshot() {
                Some(snap) => KvState::from_bytes(&snap.data).map_err(StorageError::Decode)?,
                None => KvState::new(),
            };
            for cmd in group.committed_commands_from(group.watermark()) {
                state.apply(cmd);
            }
            states.insert(shard, state);
            applied_upto.insert(shard, group.committed_len());
        }
        Ok(ShardedKvNode {
            node,
            states,
            compact_every: 0,
            applied_since_compact: BTreeMap::new(),
            applied_upto,
            reads: BTreeMap::new(),
            next_read_token: 0,
        })
    }

    /// Enables automatic compaction: a shard that applies `every` commands
    /// since its last snapshot is snapshotted at its committed prefix and
    /// its WAL rewritten to live records only. 0 disables (the default). A
    /// no-op for shards without a snapshot store.
    pub fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every;
    }

    /// Snapshots `shard`'s store at its committed prefix and compacts its
    /// WAL segment. Returns `Ok(false)` when the shard is not attached or
    /// its group declined (no snapshot store, watermark not advancing,
    /// wedged).
    ///
    /// # Errors
    ///
    /// Propagates a WAL rewrite failure; the group is wedged first.
    pub fn compact_shard_now(&mut self, shard: ShardId) -> Result<bool, StorageError> {
        let Some(state) = self.states.get(&shard) else {
            return Ok(false);
        };
        let Some(watermark) = self.node.group(shard).map(|g| g.committed_len()) else {
            return Ok(false);
        };
        let bytes = state.to_bytes();
        self.node.compact_shard(shard, watermark, bytes)
    }

    /// The materialized store of `shard`, if attached.
    pub fn state(&self, shard: ShardId) -> Option<&KvState> {
        self.states.get(&shard)
    }

    /// The underlying sharded consensus node (for instrumentation).
    pub fn node(&self) -> &ShardedNode<Tagged<KvCmd>, P> {
        &self.node
    }

    /// The node's shared Ω detector (for leader discovery).
    pub fn omega(&self) -> &CommEffOmega<P> {
        self.node.omega()
    }

    /// The placement manager (map + local attachments).
    pub fn placement(&self) -> &PlacementManager {
        self.node.placement()
    }

    /// Contiguous slots folded into `shard`'s store (its apply watermark).
    pub fn applied_upto(&self, shard: ShardId) -> u64 {
        self.applied_upto.get(&shard).copied().unwrap_or(0)
    }

    /// Fast-path reads still waiting on a read index or an apply loop,
    /// across all shards.
    pub fn pending_reads(&self) -> usize {
        self.reads.len()
    }

    /// Answers one read from `shard`'s materialized store and stamps it on
    /// the probe plane — the single exit point of every fast-path read.
    fn serve_read(
        &self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, ShardedKvEvent>,
        shard: ShardId,
        client: ClientId,
        seq: u64,
        key: &str,
        mode: ReadMode,
    ) {
        let response = self
            .states
            .get(&shard)
            .map_or(KvResponse::Value { value: None }, |s| s.read(key));
        if P::ENABLED {
            if let Some(group) = self.node.group(shard) {
                group.probe().emit(ProbeEvent::ReadServed {
                    node: ctx.id(),
                    at: ctx.now(),
                    shard: shard.0,
                    mode,
                    watermark: self.applied_upto(shard),
                });
            }
        }
        ctx.output(ShardedKvEvent::Applied {
            shard,
            slot: self.applied_upto(shard),
            client,
            seq,
            response,
        });
    }

    /// Serves every parked read whose resolved index its shard's apply
    /// watermark has reached.
    fn serve_ready_reads(&mut self, ctx: &mut Ctx<'_, <Self as Sm>::Msg, ShardedKvEvent>) {
        let ready: Vec<u64> = self
            .reads
            .iter()
            .filter(|(_, r)| r.index.is_some_and(|i| i <= self.applied_upto(r.shard)))
            .map(|(t, _)| *t)
            .collect();
        for token in ready {
            let read = self.reads.remove(&token).expect("token just listed");
            self.serve_read(
                ctx,
                read.shard,
                read.client,
                read.seq,
                &read.key,
                ReadMode::ReadIndex,
            );
        }
    }

    /// The fast read path, per shard group: the group's leaseholder answers
    /// immediately from the local store; a follower runs a read-index round
    /// against the believed leader; a leader without an active lease falls
    /// back to replicating the read through that group's log.
    fn on_read(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, ShardedKvEvent>,
        shard: ShardId,
        req: Tagged<KvCmd>,
    ) {
        if self.node.lease_read_allowed(shard, ctx.now()) {
            self.serve_read(
                ctx,
                shard,
                req.client,
                req.seq,
                req.cmd.key(),
                ReadMode::Lease,
            );
            return;
        }
        if self
            .node
            .group(shard)
            .is_some_and(|g| g.is_established_leader())
        {
            self.drive(ctx, |node, ictx| {
                node.on_request(ictx, ShardRequest { shard, cmd: req })
            });
            return;
        }
        // A retry replaces the client's own parked read: under a stable
        // leader the leader-change purge never fires, so tokens of rounds
        // whose ReadIndex (or its reply) was dropped would otherwise
        // accumulate forever, one per retry.
        self.reads
            .retain(|_, r| r.client != req.client || r.seq != req.seq);
        let token = self.next_read_token;
        self.next_read_token += 1;
        self.reads.insert(
            token,
            PendingShardRead {
                shard,
                client: req.client,
                seq: req.seq,
                key: req.cmd.key().to_owned(),
                index: None,
            },
        );
        self.drive(ctx, |node, ictx| {
            node.request_read_index(ictx, shard, token)
        });
    }

    /// Translates shard-plane events into applied KV events, feeding each
    /// committed command to the state of the shard that decided it.
    fn translate(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, ShardedKvEvent>,
        events: Vec<ShardEvent<Tagged<KvCmd>>>,
    ) {
        for ev in events {
            match ev {
                ShardEvent::Leader(l) => {
                    // A forwarded read-index request may have raced the old
                    // leader's fall; the client's retry cadence re-issues.
                    self.reads.retain(|_, r| r.index.is_some());
                    ctx.output(ShardedKvEvent::Leader(l));
                }
                ShardEvent::Committed { shard, slot, cmd } => {
                    let upto = self.applied_upto.entry(shard).or_default();
                    *upto = (*upto).max(slot + 1);
                    if let Some(tagged) = cmd {
                        let state = self.states.entry(shard).or_default();
                        let response = state.apply(&tagged);
                        *self.applied_since_compact.entry(shard).or_default() += 1;
                        if P::ENABLED {
                            if let Some(group) = self.node.group(shard) {
                                group.probe().emit(ProbeEvent::CmdLifecycle {
                                    node: ctx.id(),
                                    at: ctx.now(),
                                    cmd: lls_obs::CmdId {
                                        client: tagged.client.0,
                                        seq: tagged.seq,
                                    },
                                    stage: CmdStage::Apply,
                                    shard: shard.0,
                                });
                                if tagged.cmd.is_read() {
                                    // A read that went through the log: the
                                    // slow baseline the lease path replaces.
                                    group.probe().emit(ProbeEvent::ReadServed {
                                        node: ctx.id(),
                                        at: ctx.now(),
                                        shard: shard.0,
                                        mode: ReadMode::Log,
                                        watermark: *upto,
                                    });
                                }
                            }
                        }
                        ctx.output(ShardedKvEvent::Applied {
                            shard,
                            slot,
                            client: tagged.client,
                            seq: tagged.seq,
                            response,
                        });
                    }
                }
                ShardEvent::SnapshotInstalled {
                    shard,
                    watermark,
                    state,
                } => {
                    // CRC-checked upstream; an undecodable snapshot means an
                    // incompatible sender — diverging silently is worse.
                    let decoded = KvState::from_bytes(&state)
                        .expect("installed snapshot must decode as a KvState");
                    self.states.insert(shard, decoded);
                    self.applied_since_compact.insert(shard, 0);
                    let upto = self.applied_upto.entry(shard).or_default();
                    *upto = (*upto).max(watermark);
                    ctx.output(ShardedKvEvent::SnapshotInstalled { shard, watermark });
                }
                ShardEvent::ReadIndexAt { req, index, .. } => {
                    if let Some(read) = self.reads.get_mut(&req) {
                        read.index = Some(index);
                    }
                }
            }
        }
        self.serve_ready_reads(ctx);
        if self.compact_every > 0 {
            let due: Vec<ShardId> = self
                .applied_since_compact
                .iter()
                .filter(|(_, n)| **n >= self.compact_every)
                .map(|(s, _)| *s)
                .collect();
            for shard in due {
                self.applied_since_compact.insert(shard, 0);
                // On failure the group wedges itself; nothing to unwind.
                let _ = self.compact_shard_now(shard);
            }
        }
    }

    /// Runs one step of the inner sharded node and applies its outputs.
    fn drive(
        &mut self,
        ctx: &mut Ctx<'_, <Self as Sm>::Msg, ShardedKvEvent>,
        step: impl FnOnce(
            &mut ShardedNode<Tagged<KvCmd>, P>,
            &mut Ctx<'_, <Self as Sm>::Msg, ShardEvent<Tagged<KvCmd>>>,
        ),
    ) {
        let env = Env::new(ctx.id(), ctx.n());
        let mut fx = Effects::new();
        {
            let mut ictx = Ctx::new(&env, ctx.now(), &mut fx);
            step(&mut self.node, &mut ictx);
        }
        for s in fx.sends {
            ctx.send(s.to, s.msg);
        }
        for cmd in fx.timers {
            match cmd {
                lls_primitives::TimerCmd::Set { timer, after } => ctx.set_timer(timer, after),
                lls_primitives::TimerCmd::Cancel { timer } => ctx.cancel_timer(timer),
            }
        }
        self.translate(ctx, fx.outputs);
    }
}

impl<P: Probe> Sm for ShardedKvNode<P> {
    type Msg = ShardMsg<Tagged<KvCmd>>;
    type Output = ShardedKvEvent;
    /// A plain tagged command: the node routes it to the shard owning its
    /// key, so clients stay shard-oblivious.
    type Request = Tagged<KvCmd>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>) {
        self.drive(ctx, |node, ictx| node.on_start(ictx));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    ) {
        self.drive(ctx, |node, ictx| node.on_message(ictx, from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, timer: TimerId) {
        self.drive(ctx, |node, ictx| node.on_timer(ictx, timer));
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Output>, req: Self::Request) {
        let shard = self.node.placement().map().shard_of_key(req.cmd.key());
        if req.cmd.is_read() && self.node.group(shard).is_some_and(|g| g.lease_enabled()) {
            self.on_read(ctx, shard, req);
            return;
        }
        self.drive(ctx, |node, ictx| {
            node.on_request(ictx, ShardRequest { shard, cmd: req })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus::{Ballot, RsmMsg};
    use lls_primitives::Instant;

    fn tag(seq: u64, cmd: KvCmd) -> Tagged<KvCmd> {
        Tagged {
            client: ClientId(1),
            seq,
            cmd,
        }
    }

    /// A key that the 2-shard uniform map routes to each shard.
    fn key_for(map: &PlacementMap, shard: u32) -> String {
        (0..)
            .map(|i| format!("k{i}"))
            .find(|k| map.shard_of_key(k).0 == shard)
            .unwrap()
    }

    #[test]
    fn submit_queue_fans_out_by_key_and_settles_per_shard() {
        let map = PlacementMap::uniform(2, 3);
        let mut q = ShardedSubmitQueue::new(map.clone(), 1); // window 1 per shard
        let k0 = key_for(&map, 0);
        let k1 = key_for(&map, 1);
        q.submit(tag(1, KvCmd::put(&k0, "a")));
        q.submit(tag(2, KvCmd::put(&k1, "b")));
        q.submit(tag(3, KvCmd::put(&k0, "c"))); // behind seq 1 on shard 0
        let burst = q.drain();
        // Both shards release concurrently despite the 1-wide window.
        assert_eq!(burst.len(), 2);
        assert_eq!(q.released_len(), 2);
        assert_eq!(q.queued_len(), 1);
        for (shard, cmds) in &burst {
            for cmd in cmds {
                assert_eq!(map.shard_of_key(cmd.cmd.key()), *shard);
            }
        }
        // Settling shard 0's command reopens only shard 0's window.
        let done = q
            .settle(ClientId(1), 1, &KvResponse::Applied { previous: None })
            .expect("seq 1 settles");
        assert_eq!(done.cmd.seq, 1);
        let burst = q.drain();
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].0, ShardId(0));
        assert_eq!(burst[0].1[0].seq, 3);
        // Unknown tags settle nothing.
        assert!(q
            .settle(ClientId(9), 1, &KvResponse::Applied { previous: None })
            .is_none());
    }

    #[test]
    fn node_routes_requests_by_key_and_applies_per_shard() {
        let env = Env::new(ProcessId(0), 3);
        let map = PlacementMap::uniform(2, 3);
        let k0 = key_for(&map, 0);
        let k1 = key_for(&map, 1);
        let mut node = ShardedKvNode::new(
            &env,
            ConsensusParams::default(),
            PlacementManager::with_all_attached(map),
        );
        let mut fx: Effects<_, ShardedKvEvent> = Effects::new();
        node.on_start(&mut Ctx::new(&env, Instant::ZERO, &mut fx));
        fx.take();
        // Establish p0's ballot in both groups (one promise = quorum at p0).
        for shard in [0u32, 1] {
            node.on_message(
                &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                ProcessId(1),
                ShardMsg::Rsm {
                    shard: ShardId(shard),
                    msg: RsmMsg::Promise {
                        b: Ballot::new(1, ProcessId(0)),
                        accepted: vec![],
                        low_slot: 0,
                    },
                },
            );
            fx.take();
        }
        // A put on each key: the node must route each to its own shard.
        node.on_request(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            tag(1, KvCmd::put(&k0, "zero")),
        );
        let out = fx.take();
        assert!(
            out.sends.iter().all(|s| matches!(
                &s.msg,
                ShardMsg::Rsm {
                    shard: ShardId(0),
                    msg: RsmMsg::Accept { .. }
                }
            )),
            "key {k0} must route to shard0: {:?}",
            out.sends
        );
        node.on_request(
            &mut Ctx::new(&env, Instant::ZERO, &mut fx),
            tag(2, KvCmd::put(&k1, "one")),
        );
        fx.take();
        // Ack both slots from p1: each shard commits *its own* slot 0.
        for shard in [0u32, 1] {
            node.on_message(
                &mut Ctx::new(&env, Instant::ZERO, &mut fx),
                ProcessId(1),
                ShardMsg::Rsm {
                    shard: ShardId(shard),
                    msg: RsmMsg::Accepted {
                        b: Ballot::new(1, ProcessId(0)),
                        slot: 0,
                    },
                },
            );
            let out = fx.take();
            assert!(
                out.outputs.iter().any(|o| matches!(
                    o,
                    ShardedKvEvent::Applied { shard: s, slot: 0, .. } if s.0 == shard
                )),
                "shard{shard} applies its slot 0: {:?}",
                out.outputs
            );
        }
        assert_eq!(node.state(ShardId(0)).unwrap().get(&k0), Some("zero"));
        assert_eq!(node.state(ShardId(1)).unwrap().get(&k1), Some("one"));
        assert_eq!(
            node.state(ShardId(0)).unwrap().len(),
            1,
            "shard stores are disjoint"
        );
    }
}
