//! A replicated key-value store on the limited-link-synchrony consensus
//! stack — the kind of application the paper's consensus result exists to
//! serve, packaged as a library a downstream user can adopt.
//!
//! Architecture (bottom to top):
//!
//! 1. [`omega`]'s communication-efficient Ω elects and maintains the leader;
//! 2. [`consensus`]'s [`ReplicatedLog`](consensus::ReplicatedLog) orders
//!    [`Tagged`] commands into slots with Multi-Paxos-style steady state;
//! 3. this crate's [`KvState`] applies committed commands deterministically,
//!    with **exactly-once** semantics per client session: every command
//!    carries a `(client, seq)` tag, and a command whose tag was already
//!    applied is skipped (clients retry safely — e.g. after a leader change
//!    — without double-applying).
//!
//! # Example
//!
//! ```
//! use kvstore::{ClientId, KvCmd, KvEvent, KvReplica, Tagged};
//! use consensus::ConsensusParams;
//! use lls_primitives::{Duration, Instant, ProcessId};
//! use netsim::{SimBuilder, Topology};
//!
//! let n = 3;
//! let cmd = |seq, k: &str, v: &str| Tagged {
//!     client: ClientId(1),
//!     seq,
//!     cmd: KvCmd::put(k, v),
//! };
//! let mut sim = SimBuilder::new(n)
//!     .topology(Topology::all_timely(n, Duration::from_ticks(2)))
//!     .request_at(Instant::from_ticks(500), ProcessId(0), cmd(1, "k", "v1"))
//!     .request_at(Instant::from_ticks(600), ProcessId(0), cmd(1, "k", "v1")) // dup!
//!     .request_at(Instant::from_ticks(700), ProcessId(0), cmd(2, "k", "v2"))
//!     .build_with(|env| KvReplica::new(env, ConsensusParams::default()));
//! sim.run_until(Instant::from_ticks(10_000));
//!
//! // All replicas hold the same state; the duplicate was applied once.
//! for p in 0..n as u32 {
//!     let replica = sim.node(ProcessId(p));
//!     assert_eq!(replica.state().get("k"), Some("v2"));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod client;
mod command;
mod replica;
mod sharded;
mod state;
mod submit;

pub use client::KvClient;
pub use command::{ClientId, KvCmd, KvResponse, Tagged};
pub use replica::{KvEvent, KvReplica};
pub use sharded::{ShardedKvEvent, ShardedKvNode, ShardedSubmitQueue};
pub use state::KvState;
pub use submit::{Settled, SubmitQueue};
