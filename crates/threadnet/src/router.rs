//! The router thread: a fair-lossy mesh over wall-clock time.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use lls_primitives::{Fate, FaultInjector, ProcessId};
use parking_lot::Mutex;

/// A message in transit.
pub(crate) struct Envelope<M> {
    pub from: ProcessId,
    pub to: ProcessId,
    pub msg: M,
    /// Sender's Lamport clock at send time (0 when the cluster runs
    /// without trace clocks). Carried through the router untouched; the
    /// receiving node merges it before its handler runs.
    pub stamp: u64,
}

/// Shared, thread-safe traffic statistics.
#[derive(Debug)]
pub(crate) struct TrafficStats {
    pub sent: Vec<u64>,
    pub dropped: Vec<u64>,
    pub last_send: Vec<Option<StdDuration>>,
    pub started_at: StdInstant,
}

impl TrafficStats {
    pub fn new(n: usize) -> Self {
        TrafficStats {
            sent: vec![0; n],
            dropped: vec![0; n],
            last_send: vec![None; n],
            started_at: StdInstant::now(),
        }
    }
}

struct Delayed<M> {
    due: StdInstant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

pub(crate) struct RouterConfig {
    pub loss: f64,
    pub min_delay: StdDuration,
    pub max_delay: StdDuration,
    pub seed: u64,
}

/// Runs until the ingress channel disconnects: applies loss, holds messages
/// for their sampled delay, then forwards to the destination inbox. Delivery
/// failures (crashed/stopped destination) are silently dropped — exactly a
/// lossy link.
pub(crate) fn run_router<M: Send + 'static>(
    ingress: Receiver<Envelope<M>>,
    inboxes: Vec<Sender<Envelope<M>>>,
    config: RouterConfig,
    stats: Arc<Mutex<TrafficStats>>,
) {
    let mut faults = FaultInjector::new(
        config.loss.clamp(0.0, 1.0),
        config.min_delay,
        config.max_delay,
        config.seed,
    );
    let mut heap: BinaryHeap<Delayed<M>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Flush everything that is due.
        let now = StdInstant::now();
        while heap.peek().is_some_and(|d| d.due <= now) {
            let d = heap.pop().expect("peeked");
            let _ = inboxes[d.env.to.as_usize()].send(d.env);
        }
        let timeout = heap
            .peek()
            .map(|d| d.due.saturating_duration_since(StdInstant::now()))
            .unwrap_or(StdDuration::from_millis(50));
        match ingress.recv_timeout(timeout) {
            Ok(env) => {
                let fate = faults.fate();
                {
                    let mut s = stats.lock();
                    let i = env.from.as_usize();
                    s.sent[i] += 1;
                    s.last_send[i] = Some(s.started_at.elapsed());
                    if fate == Fate::Drop {
                        s.dropped[i] += 1;
                        continue;
                    }
                }
                let Fate::DeliverAfter(delay) = fate else {
                    continue; // Drop already handled above.
                };
                let due = StdInstant::now() + delay;
                seq += 1;
                heap.push(Delayed { due, seq, env });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Ingress closed: flush what is still in flight (waiting out each
    // remaining delay, bounded by max_delay) so a shutdown does not silently
    // swallow messages the loss model already admitted.
    while let Some(d) = heap.pop() {
        let now = StdInstant::now();
        if d.due > now {
            std::thread::sleep(d.due - now);
        }
        let _ = inboxes[d.env.to.as_usize()].send(d.env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn delayed_heap_pops_earliest_due_first() {
        let base = StdInstant::now();
        let mk = |offset_ms: u64, seq: u64| Delayed {
            due: base + StdDuration::from_millis(offset_ms),
            seq,
            env: Envelope {
                from: ProcessId(0),
                to: ProcessId(1),
                msg: offset_ms,
                stamp: 0,
            },
        };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(mk(30, 0));
        heap.push(mk(10, 1));
        heap.push(mk(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop())
            .map(|d| d.env.msg)
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn delayed_heap_breaks_ties_by_sequence() {
        let due = StdInstant::now() + StdDuration::from_millis(5);
        let mk = |seq: u64| Delayed {
            due,
            seq,
            env: Envelope {
                from: ProcessId(0),
                to: ProcessId(1),
                msg: seq,
                stamp: 0,
            },
        };
        let mut heap = std::collections::BinaryHeap::new();
        for seq in [5u64, 1, 3] {
            heap.push(mk(seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|d| d.seq).collect();
        assert_eq!(order, vec![1, 3, 5], "equal deadlines must pop FIFO");
    }

    #[test]
    fn router_counts_and_drops_deterministically() {
        let (tx, rx) = unbounded::<Envelope<u8>>();
        let (out_tx, out_rx) = unbounded::<Envelope<u8>>();
        let stats = Arc::new(Mutex::new(TrafficStats::new(2)));
        let handle = {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                run_router(
                    rx,
                    vec![out_tx.clone(), out_tx],
                    RouterConfig {
                        loss: 0.5,
                        min_delay: StdDuration::ZERO,
                        max_delay: StdDuration::from_micros(100),
                        seed: 1,
                    },
                    stats,
                )
            })
        };
        for i in 0..200u8 {
            tx.send(Envelope {
                from: ProcessId(0),
                to: ProcessId(1),
                msg: i,
                stamp: 0,
            })
            .unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        let delivered = out_rx.try_iter().count();
        let s = stats.lock();
        assert_eq!(s.sent[0], 200);
        let dropped = s.dropped[0] as usize;
        assert_eq!(delivered + dropped, 200, "conservation");
        assert!(dropped > 50 && dropped < 150, "~50% loss, got {dropped}");
        assert!(s.last_send[0].is_some());
        assert!(s.last_send[1].is_none());
    }

    #[test]
    fn router_with_zero_loss_delivers_everything() {
        let (tx, rx) = unbounded::<Envelope<u8>>();
        let (out_tx, out_rx) = unbounded::<Envelope<u8>>();
        let stats = Arc::new(Mutex::new(TrafficStats::new(2)));
        let handle = {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                run_router(
                    rx,
                    vec![out_tx.clone(), out_tx],
                    RouterConfig {
                        loss: 0.0,
                        min_delay: StdDuration::ZERO,
                        max_delay: StdDuration::ZERO,
                        seed: 2,
                    },
                    stats,
                )
            })
        };
        for i in 0..50u8 {
            tx.send(Envelope {
                from: ProcessId(1),
                to: ProcessId(0),
                msg: i,
                stamp: 0,
            })
            .unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        let got: Vec<u8> = out_rx.try_iter().map(|e| e.msg).collect();
        assert_eq!(got.len(), 50);
        assert_eq!(stats.lock().dropped[1], 0);
    }
}
