//! Cluster lifecycle: spawn, drive, crash, stop, report.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use lls_primitives::{Ctx, Effects, Env, Instant, LamportClock, ProcessId, Sm, TimerCmd, TimerId};
use parking_lot::Mutex;

use crate::router::{run_router, Envelope, RouterConfig, TrafficStats};

/// Configuration of a thread cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Number of processes (threads).
    pub n: usize,
    /// Per-message loss probability in `[0, 1)`.
    pub loss: f64,
    /// Minimum network delay.
    pub min_delay: StdDuration,
    /// Maximum network delay.
    pub max_delay: StdDuration,
    /// Wall-clock length of one virtual tick (scales η and timeouts).
    pub tick: StdDuration,
    /// RNG seed for loss/delay sampling.
    pub seed: u64,
}

impl Default for NetConfig {
    /// 3 processes, 10 % loss, 0.2–1 ms delay, 200 µs ticks.
    fn default() -> Self {
        NetConfig {
            n: 3,
            loss: 0.1,
            min_delay: StdDuration::from_micros(200),
            max_delay: StdDuration::from_millis(1),
            tick: StdDuration::from_micros(200),
            seed: 0,
        }
    }
}

enum Control<S: Sm> {
    Deliver(Envelope<S::Msg>),
    Request(S::Request),
    Crash,
    /// Bring a crashed process back with a fresh state machine (typically
    /// recovered from the durable storage its predecessor wrote).
    Restart(S),
    Stop,
}

/// One timestamped protocol output from the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOutput<O> {
    /// Wall-clock offset from cluster start.
    pub at: StdDuration,
    /// The process that emitted the output.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct Report<O> {
    /// All outputs, roughly in emission order.
    pub outputs: Vec<TimedOutput<O>>,
    /// Messages sent per process (counted at the router ingress).
    pub sent: Vec<u64>,
    /// Messages dropped by the lossy mesh, per sender.
    pub dropped: Vec<u64>,
    /// Wall-clock offset of each process's last send.
    pub last_send: Vec<Option<StdDuration>>,
}

impl<O> Report<O> {
    /// The last output `p` emitted, if any.
    pub fn final_output_of(&self, p: ProcessId) -> Option<&O> {
        self.outputs
            .iter()
            .rev()
            .find(|t| t.process == p)
            .map(|t| &t.output)
    }

    /// Processes whose last send happened at or after `since` (from cluster
    /// start) — the communication-efficiency oracle, as in `netsim`.
    pub fn senders_since(&self, since: StdDuration) -> Vec<ProcessId> {
        self.last_send
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some_and(|t| t >= since))
            .map(|(i, _)| ProcessId(i as u32))
            .collect()
    }

    /// Exports the run's traffic accounting into an observability
    /// [`Registry`](lls_obs::Registry): per-process
    /// `threadnet_sent_total_p{i}` plus an aggregate drop counter.
    ///
    /// Counters are monotone: export once per run (or into a fresh
    /// registry).
    pub fn export(&self, registry: &lls_obs::Registry) {
        for (i, sent) in self.sent.iter().enumerate() {
            registry
                .counter(&format!("threadnet_sent_total_p{i}"))
                .add(*sent);
        }
        registry
            .counter("threadnet_dropped_total")
            .add(self.dropped.iter().sum());
    }
}

/// A running cluster of `n` state-machine threads joined by a lossy mesh.
///
/// See the [crate example](crate).
pub struct Cluster<S: Sm> {
    n: usize,
    controls: Vec<Sender<Control<S>>>,
    handles: Vec<JoinHandle<()>>,
    router_handle: Option<JoinHandle<()>>,
    outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>>,
    traffic: Arc<Mutex<TrafficStats>>,
    start: StdInstant,
    tick: StdDuration,
}

impl<S: Sm> std::fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<S: Sm + Send + 'static> Cluster<S> {
    /// Spawns `config.n` threads, each running a state machine produced by
    /// `make`, plus the router thread.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2`, `config.tick` is zero, or
    /// `config.min_delay > config.max_delay`.
    pub fn spawn(config: NetConfig, make: impl FnMut(&Env) -> S) -> Self {
        let clocks = (0..config.n).map(|i| LamportClock::new(i as u64)).collect();
        Self::spawn_traced(config, clocks, make)
    }

    /// Like [`Cluster::spawn`], but with caller-supplied Lamport clocks —
    /// one per process, typically the handles from
    /// [`lls_obs::NodeRecorders::clocks`] so that recorded probe events and
    /// message stamps share one causal timeline. Each send ticks the
    /// sender's clock (even when the lossy mesh then drops the message —
    /// clocks count events, not deliveries) and each delivery merges the
    /// carried stamp into the receiver's clock *before* the handler runs.
    ///
    /// # Panics
    ///
    /// Panics like [`Cluster::spawn`], and additionally if
    /// `clocks.len() != config.n`.
    pub fn spawn_traced(
        config: NetConfig,
        clocks: Vec<LamportClock>,
        mut make: impl FnMut(&Env) -> S,
    ) -> Self {
        assert!(config.n >= 2, "the model requires n > 1 processes");
        assert_eq!(clocks.len(), config.n, "one clock per process");
        assert!(!config.tick.is_zero(), "tick must be positive");
        assert!(
            config.min_delay <= config.max_delay,
            "min_delay must not exceed max_delay"
        );
        let n = config.n;
        let start = StdInstant::now();
        let outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>> = Arc::new(Mutex::new(Vec::new()));
        let traffic = Arc::new(Mutex::new(TrafficStats::new(n)));
        traffic.lock().started_at = start;

        let (router_tx, router_rx) = unbounded::<Envelope<S::Msg>>();
        let mut controls = Vec::with_capacity(n);
        let mut control_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Control<S>>(4096);
            controls.push(tx);
            control_rxs.push(rx);
        }
        // The router forwards into the control inboxes.
        let inbox_txs: Vec<Sender<Envelope<S::Msg>>> = {
            // Adapter channels: envelope → control.
            let mut adapters = Vec::with_capacity(n);
            for tx in &controls {
                let (atx, arx) = unbounded::<Envelope<S::Msg>>();
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for env in arx {
                        if tx.send(Control::Deliver(env)).is_err() {
                            // Destination stopped: keep draining (lossy link).
                        }
                    }
                });
                adapters.push(atx);
            }
            adapters
        };
        let router_cfg = RouterConfig {
            loss: config.loss,
            min_delay: config.min_delay,
            max_delay: config.max_delay,
            seed: config.seed,
        };
        let traffic_for_router = Arc::clone(&traffic);
        let router_handle = std::thread::spawn(move || {
            run_router(router_rx, inbox_txs, router_cfg, traffic_for_router);
        });

        let mut handles = Vec::with_capacity(n);
        for (i, (control_rx, clock)) in control_rxs.into_iter().zip(clocks).enumerate() {
            let env = Env::new(ProcessId(i as u32), n);
            let sm = make(&env);
            let outputs = Arc::clone(&outputs);
            let router_tx = router_tx.clone();
            let tick = config.tick;
            handles.push(std::thread::spawn(move || {
                node_loop(env, sm, control_rx, router_tx, outputs, tick, start, clock);
            }));
        }
        Cluster {
            n,
            controls,
            handles,
            router_handle: Some(router_handle),
            outputs,
            traffic,
            start,
            tick: config.tick,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The wall-clock instant every node's virtual clock counts ticks from.
    /// An external client (e.g. a latency harness's submit queue) maps its
    /// own timestamps into the same tick domain with
    /// `(now - epoch) / tick`, so client- and replica-side probe events
    /// share one timeline.
    pub fn epoch(&self) -> StdInstant {
        self.start
    }

    /// The configured tick length — the granularity of every node's
    /// virtual clock.
    pub fn tick(&self) -> StdDuration {
        self.tick
    }

    /// Crashes `p` (crash-stop): its thread exits and all further traffic to
    /// it is dropped.
    pub fn crash(&self, p: ProcessId) {
        let _ = self.controls[p.as_usize()].send(Control::Crash);
    }

    /// Kills `p` as a crash–*restart* fault: the process stops reacting (all
    /// timers disarmed, all traffic to it discarded) but can later come back
    /// via [`Cluster::restart`]. From the network's point of view this is
    /// indistinguishable from [`Cluster::crash`].
    pub fn kill(&self, p: ProcessId) {
        let _ = self.controls[p.as_usize()].send(Control::Crash);
    }

    /// Restarts a killed `p` with a fresh state machine `sm` — typically one
    /// recovered from the same durable storage the pre-crash incarnation
    /// wrote (e.g. `Consensus::with_storage`). The machine's `on_start` runs
    /// on the node thread; if `p` was never killed, the restart request is
    /// ignored.
    pub fn restart(&self, p: ProcessId, sm: S) {
        let _ = self.controls[p.as_usize()].send(Control::Restart(sm));
    }

    /// Delivers an external request to `p`.
    pub fn request(&self, p: ProcessId, req: S::Request) {
        let _ = self.controls[p.as_usize()].send(Control::Request(req));
    }

    /// A live snapshot of `(sent, last_send)` per process.
    pub fn traffic_snapshot(&self) -> (Vec<u64>, Vec<Option<StdDuration>>) {
        let t = self.traffic.lock();
        (t.sent.clone(), t.last_send.clone())
    }

    /// A clone of every output emitted so far, in rough emission order.
    /// Unlike [`Cluster::latest_outputs`] this lets callers await an event
    /// that may be followed by later outputs (e.g. a commit followed by a
    /// leader-change notification).
    pub fn outputs_so_far(&self) -> Vec<TimedOutput<S::Output>> {
        self.outputs.lock().clone()
    }

    /// Each process's most recent output so far, if any (mirrors
    /// `wirenet::WireCluster::latest_outputs`).
    pub fn latest_outputs(&self) -> Vec<Option<S::Output>> {
        let outputs = self.outputs.lock();
        (0..self.n as u32)
            .map(|p| {
                outputs
                    .iter()
                    .rev()
                    .find(|t| t.process == ProcessId(p))
                    .map(|t| t.output.clone())
            })
            .collect()
    }

    /// Stops every thread, joins them, and returns the run report.
    pub fn stop(mut self) -> Report<S::Output> {
        for tx in &self.controls {
            let _ = tx.send(Control::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Dropping the controls disconnects the router ingress (each node
        // held a clone of router_tx which died with its thread; ours remains
        // inside `self` only via the nodes — the router exits when all
        // senders are gone).
        drop(self.controls.split_off(0));
        if let Some(h) = self.router_handle.take() {
            let _ = h.join();
        }
        let outputs = self.outputs.lock().clone();
        let t = self.traffic.lock();
        Report {
            outputs,
            sent: t.sent.clone(),
            dropped: t.dropped.clone(),
            last_send: t.last_send.clone(),
        }
    }
}

/// The per-process event loop: timers with reset semantics, inbox delivery,
/// wall-clock → tick mapping, Lamport stamping on each send/receive.
#[allow(clippy::too_many_arguments)]
fn node_loop<S: Sm>(
    env: Env,
    mut sm: S,
    inbox: Receiver<Control<S>>,
    router: Sender<Envelope<S::Msg>>,
    outputs: Arc<Mutex<Vec<TimedOutput<S::Output>>>>,
    tick: StdDuration,
    start: StdInstant,
    clock: LamportClock,
) {
    let me = env.id();
    let now_ticks = |at: StdInstant| -> Instant {
        Instant::from_ticks(
            (at.saturating_duration_since(start).as_nanos() / tick.as_nanos().max(1)) as u64,
        )
    };
    let mut fx: Effects<S::Msg, S::Output> = Effects::new();
    let mut deadlines: HashMap<TimerId, StdInstant> = HashMap::new();

    let apply = |fx: &mut Effects<S::Msg, S::Output>,
                 deadlines: &mut HashMap<TimerId, StdInstant>,
                 at: StdInstant| {
        let taken = fx.take();
        for s in taken.sends {
            // Tick per send attempt: clocks count events, not deliveries,
            // so a message the mesh later drops still advances the clock.
            let stamp = clock.tick();
            let _ = router.send(Envelope {
                from: me,
                to: s.to,
                msg: s.msg,
                stamp,
            });
        }
        for cmd in taken.timers {
            match cmd {
                TimerCmd::Set { timer, after } => {
                    let wall = tick
                        .checked_mul(after.ticks().min(u32::MAX as u64) as u32)
                        .unwrap_or(StdDuration::from_secs(3600));
                    deadlines.insert(timer, at + wall);
                }
                TimerCmd::Cancel { timer } => {
                    deadlines.remove(&timer);
                }
            }
        }
        if !taken.outputs.is_empty() {
            let mut out = outputs.lock();
            for o in taken.outputs {
                out.push(TimedOutput {
                    at: at.saturating_duration_since(start),
                    process: me,
                    output: o,
                });
            }
        }
    };

    let at = StdInstant::now();
    sm.on_start(&mut Ctx::new(&env, now_ticks(at), &mut fx));
    apply(&mut fx, &mut deadlines, at);

    // While dead (killed, awaiting restart) the thread stays parked on the
    // inbox: timers are disarmed and all traffic is discarded, so from the
    // outside the process is crashed — but it can still be revived.
    let mut dead = false;
    loop {
        if !dead {
            // Fire all due timers first.
            let now = StdInstant::now();
            let due: Vec<TimerId> = deadlines
                .iter()
                .filter(|(_, d)| **d <= now)
                .map(|(t, _)| *t)
                .collect();
            for t in due {
                deadlines.remove(&t);
                sm.on_timer(&mut Ctx::new(&env, now_ticks(now), &mut fx), t);
                apply(&mut fx, &mut deadlines, now);
            }
        }
        let wait = if dead {
            StdDuration::from_millis(20)
        } else {
            deadlines
                .values()
                .min()
                .map(|d| d.saturating_duration_since(StdInstant::now()))
                .unwrap_or(StdDuration::from_millis(20))
        };
        match inbox.recv_timeout(wait) {
            Ok(Control::Deliver(envp)) if !dead => {
                let at = StdInstant::now();
                // Merge before the handler so probe events the handler emits
                // are causally after the send.
                clock.observe(envp.stamp);
                sm.on_message(
                    &mut Ctx::new(&env, now_ticks(at), &mut fx),
                    envp.from,
                    envp.msg,
                );
                apply(&mut fx, &mut deadlines, at);
            }
            Ok(Control::Request(req)) if !dead => {
                let at = StdInstant::now();
                sm.on_request(&mut Ctx::new(&env, now_ticks(at), &mut fx), req);
                apply(&mut fx, &mut deadlines, at);
            }
            Ok(Control::Deliver(_)) | Ok(Control::Request(_)) => {
                // Dead: discard, like the network dropping to a crashed node.
            }
            Ok(Control::Crash) => {
                dead = true;
                deadlines.clear();
            }
            Ok(Control::Restart(new_sm)) if dead => {
                sm = new_sm;
                dead = false;
                deadlines.clear();
                let at = StdInstant::now();
                sm.on_start(&mut Ctx::new(&env, now_ticks(at), &mut fx));
                apply(&mut fx, &mut deadlines, at);
            }
            Ok(Control::Restart(_)) => {
                // Restarting a live process is ignored.
            }
            Ok(Control::Stop) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
