//! A real-time, thread-per-process runtime for the same [`Sm`](lls_primitives::Sm)
//! state machines that run on the `netsim` simulator.
//!
//! Each process is an OS thread with a crossbeam inbox; links are modelled by
//! a router thread that applies per-message loss and uniformly distributed
//! delay before forwarding — a fair-lossy mesh over real wall-clock time.
//! Virtual ticks are mapped to wall time (`tick`), so protocol parameters
//! like η keep their meaning.
//!
//! The runtime exists to show the algorithms are not simulator-bound
//! (experiment E10 reruns the communication-efficiency measurement here) and
//! to serve as a deployment-shaped integration harness. It is intentionally
//! *not* deterministic — determinism lives in `netsim`.
//!
//! # Example
//!
//! ```
//! use std::time::Duration as StdDuration;
//! use lls_primitives::ProcessId;
//! use omega::{CommEffOmega, OmegaParams};
//! use threadnet::{Cluster, NetConfig};
//!
//! let config = NetConfig {
//!     n: 3,
//!     loss: 0.05,
//!     tick: StdDuration::from_micros(200),
//!     ..NetConfig::default()
//! };
//! let cluster = Cluster::spawn(config, |env| CommEffOmega::new(env, OmegaParams::default()));
//! std::thread::sleep(StdDuration::from_millis(300));
//! let report = cluster.stop();
//! // All three processes ended up trusting the same leader.
//! let finals: Vec<ProcessId> = (0..3)
//!     .map(|p| report.final_output_of(ProcessId(p)).copied().expect("leader output"))
//!     .collect();
//! assert!(finals.iter().all(|&l| l == finals[0]), "disagreement: {finals:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod router;

pub use cluster::{Cluster, NetConfig, Report, TimedOutput};
