//! Thread-runtime integration: the same Ω state machine elects a leader over
//! real threads, real clocks, and an injected-loss mesh.

use std::time::{Duration as StdDuration, Instant as StdInstant};

use lls_primitives::ProcessId;
use omega::{CommEffOmega, OmegaParams};
use threadnet::{Cluster, NetConfig};

fn config(n: usize, loss: f64) -> NetConfig {
    NetConfig {
        n,
        loss,
        min_delay: StdDuration::from_micros(100),
        max_delay: StdDuration::from_micros(800),
        tick: StdDuration::from_micros(200),
        seed: 7,
    }
}

fn final_leaders(report: &threadnet::Report<ProcessId>, n: usize) -> Vec<Option<ProcessId>> {
    (0..n as u32)
        .map(|p| report.final_output_of(ProcessId(p)).copied())
        .collect()
}

/// Polls until every process's latest output has been the *same* leader for
/// `stable_for` continuously — a fixed sleep is not enough, because
/// scheduler jitter under a loaded test machine can leave a momentary
/// disagreement at whatever instant the cluster happens to be stopped.
fn await_agreement(
    cluster: &Cluster<CommEffOmega>,
    timeout: StdDuration,
    stable_for: StdDuration,
) -> Option<ProcessId> {
    let deadline = StdInstant::now() + timeout;
    let mut agreed: Option<(ProcessId, StdInstant)> = None;
    loop {
        let latest = cluster.latest_outputs();
        let unanimous = latest
            .first()
            .and_then(|o| *o)
            .filter(|first| latest.iter().all(|o| *o == Some(*first)));
        match (unanimous, agreed) {
            (Some(l), Some((held, since))) if l == held => {
                if since.elapsed() >= stable_for {
                    return Some(l);
                }
            }
            (Some(l), _) => agreed = Some((l, StdInstant::now())),
            (None, _) => agreed = None,
        }
        if StdInstant::now() > deadline {
            return None;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

#[test]
fn cluster_elects_a_single_leader_under_loss() {
    let n = 5;
    let cluster = Cluster::spawn(config(n, 0.15), |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    let leader = await_agreement(
        &cluster,
        StdDuration::from_secs(10),
        StdDuration::from_millis(400),
    )
    .expect("no stable agreement under loss");
    let report = cluster.stop();
    let finals = final_leaders(&report, n);
    for (i, l) in finals.iter().enumerate() {
        assert_eq!(l.as_ref(), Some(&leader), "p{i} disagrees: {finals:?}");
    }
}

#[test]
fn cluster_becomes_communication_efficient() {
    let n = 4;
    // Stabilization is wall-clock dependent: this binary runs several
    // clusters of OS threads concurrently, and scheduler jitter can push the
    // collapse of the sender set past any fixed deadline. The property itself
    // is eventual, so only the timing tolerance is loosened: allow a few
    // attempts with a generous horizon, and require one clean tail window.
    let mut last_diag = String::new();
    for attempt in 0..3 {
        let cluster = Cluster::spawn(config(n, 0.05), |env| {
            CommEffOmega::new(env, OmegaParams::default())
        });
        std::thread::sleep(StdDuration::from_millis(1_800));
        let report = cluster.stop();
        // In the last 300 ms, only the leader should have sent anything.
        let senders = report.senders_since(StdDuration::from_millis(1_500));
        if senders.len() <= 1 {
            return;
        }
        last_diag = format!(
            "attempt {attempt}: tail senders {senders:?} (last_send={:?})",
            report.last_send
        );
    }
    panic!("sender set never collapsed: {last_diag}");
}

#[test]
fn crashed_leader_is_replaced_on_real_threads() {
    let n = 4;
    // Lossless, low-latency mesh: every process is effectively a source, so
    // re-election is guaranteed even after the leader dies.
    let cluster = Cluster::spawn(config(n, 0.0), |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    std::thread::sleep(StdDuration::from_millis(400));
    let (_, _) = cluster.traffic_snapshot();
    cluster.crash(ProcessId(0));
    std::thread::sleep(StdDuration::from_millis(1_200));
    let report = cluster.stop();
    for p in 1..n as u32 {
        let leader = report
            .final_output_of(ProcessId(p))
            .copied()
            .expect("survivor must output");
        assert_ne!(leader, ProcessId(0), "p{p} still trusts the dead leader");
    }
}

#[test]
fn traffic_snapshot_counts_progress() {
    let cluster = Cluster::spawn(config(3, 0.0), |env| {
        CommEffOmega::new(env, OmegaParams::default())
    });
    std::thread::sleep(StdDuration::from_millis(300));
    let (sent, _) = cluster.traffic_snapshot();
    let report = cluster.stop();
    assert!(sent.iter().sum::<u64>() > 0, "no traffic at all");
    assert!(report.sent.iter().sum::<u64>() >= sent.iter().sum::<u64>());
    // Loss 0: nothing dropped.
    assert_eq!(report.dropped.iter().sum::<u64>(), 0);
}
